"""Experiment harness: regenerate every table and figure of Section V."""

from repro.experiments.fig8 import fig8_series, render_fig8
from repro.experiments.fig9 import fig9_series, render_fig9
from repro.experiments.reporting import format_grouped_bars, format_table
from repro.experiments.robustness import (
    SeedStudy,
    render_seed_study,
    run_seed_study,
)
from repro.experiments.runner import (
    BenchmarkComparison,
    run_all,
    run_benchmark,
)
from repro.experiments.table1 import render_table1, table1_rows

__all__ = [
    "BenchmarkComparison",
    "SeedStudy",
    "fig8_series",
    "fig9_series",
    "format_grouped_bars",
    "format_table",
    "render_fig8",
    "render_fig9",
    "render_seed_study",
    "render_table1",
    "run_all",
    "run_benchmark",
    "run_seed_study",
    "table1_rows",
]

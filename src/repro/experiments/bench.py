"""``python -m repro.experiments bench`` — engine perf comparison.

Two tiers, selected by ``--scale``:

* ``--scale table1`` (default) times every requested benchmark through
  the full pipeline once per *placement* engine (reference vs
  incremental) and writes the ``BENCH_pr3.json`` artifact.
* ``--scale large`` times the scale tier (Scale50/100/200 synthetic
  assays, where routing dominates) once per *routing* engine
  (reference vs the fast engine — ``flat2`` by default, ``flat`` via
  ``--fast-route-engine``) and writes the ``BENCH_pr7.json`` artifact;
  the comparison carries path digests, so a routing-parity break fails
  the run.

A third tier, ``--portfolio N``, replaces the engine comparison with
the solver comparison: a successive-halving race of ``N``
heterogeneous SA arms versus classic ``restarts = N/2`` multi-start at
the same total candidate budget (see ``docs/PERFORMANCE.md``).  It
writes the ``BENCH_pr8.json`` artifact and exits non-zero unless the
race is strictly better on energy-per-CPU-second, bit-identical
across ``--jobs`` levels, and clean under the strict checker.

Both tiers also record the per-search A* latency distribution
(``astar.search_seconds`` — count/mean/p50/p90/p99/max from the
in-memory histogram, see ``docs/OBSERVABILITY.md``) in each run's
payload; the route table prints the fast engine's p99.  ``--throughput
BATCH`` additionally measures raw SA placement throughput (legal
candidate moves evaluated per second, every placement engine, batch at
BATCH candidates per step) and attaches the section to the artifact.
The committed ``BENCH_pr6.json`` artifact is the route tier rerun with
``--output BENCH_pr6.json`` after latency histograms landed;
``BENCH_pr7.json`` is the same tier after the flat2 routing engine and
the numpy batch SA kernel landed, with the throughput section.

Options::

    --scale TIER         table1 (placement engines) or large (routing
                         engines over the scale tier)
    --quick              smallest-benchmark subset, fewer repeats (CI)
    --benchmarks A B     explicit benchmark subset
    --seed N             annealer seed shared by both engines
    --repeat N           timed repetitions per engine; the median is
                         reported with the min/max spread alongside
                         (--repeats is accepted as an alias)
    --jobs N             worker processes for the per-benchmark fan-out
                         (0 = one per CPU); results are identical for
                         every value
    --scaling JOBS...    also wall-clock the suite at these job levels
                         (e.g. --scaling 1 2 4) and record the rows
    --multistart N       also record best-of-N-restarts placement
                         energy vs the single run per benchmark
    --check MODE         design-rule audit of every timed run: off,
                         report (default; violation counts land in the
                         table and artifact), or strict (fail on any
                         violation)
    --fast-route-engine  fast side of the --scale large comparison:
                         flat2 (default) or flat
    --throughput BATCH   also measure raw SA placement throughput
                         (moves/sec per engine; batch at BATCH
                         candidates per step) and record the section
    --portfolio N        run the portfolio tier: N racing arms vs
                         equal-budget multi-start on Scale100/200
                         (--rungs sets the halving rungs)
    --output PATH        JSON artifact path (default: BENCH_pr3.json,
                         or BENCH_pr7.json with --scale large)
    --require-speedup B  exit non-zero if the optimised engine is
                         slower than the reference on benchmark B
                         (placement phase on the table1 tier, routing
                         phase on the large tier)

Exit codes: 0 on success; 1 when a ``--require-speedup`` gate fails,
the paired engines disagree on any best energy / path digest (which
the parity guarantees forbid), a multi-start energy degrades below
the single run (which the seed-derivation scheme forbids), or the
batch placement engine's energy lands above the serial engines' on a
``--throughput`` row (which the never-worse guarantee forbids).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.benchmarks.registry import SCALE_ORDER, TABLE1_ORDER, benchmark_names
from repro.check.report import CHECK_MODES
from repro.perf.harness import (
    measure_jobs_scaling,
    measure_multistart,
    measure_placement_throughput,
    measure_portfolio,
    run_route_suite,
    run_suite,
)
from repro.perf.report import (
    comparisons_to_payload,
    portfolio_rows_to_payload,
    render_bench_table,
    render_multistart_table,
    render_portfolio_table,
    render_route_table,
    render_scaling_table,
    render_throughput_table,
    route_comparisons_to_payload,
    write_bench_json,
)

__all__ = ["build_parser", "run", "main"]

#: Subset exercised by ``--quick``: the smallest benchmark (the CI
#: gate's subject), a mid-size one, and one large enough to show the
#: incremental engine's asymptotic win.
QUICK_BENCHMARKS = ("PCR", "IVD", "CPA")

#: ``--quick`` subset of the scale tier: large enough for the routing
#: phase to dominate, small enough for a CI job.
QUICK_SCALE_BENCHMARKS = ("Scale50", "Scale100")

#: Default artifact name; the trailing tag names the PR that introduced
#: the numbers, so successive optimisation PRs each leave their own
#: trajectory point in-tree.
DEFAULT_OUTPUT = "BENCH_pr3.json"

#: Default artifact for the routing-engine tier (``--scale large``).
DEFAULT_ROUTE_OUTPUT = "BENCH_pr7.json"

#: Benchmarks the ``--multistart`` section covers by default (two
#: Table I rows, per the multi-start acceptance check).
MULTISTART_BENCHMARKS = ("PCR", "IVD")

#: Benchmark the ``--throughput`` section covers by default: the
#: largest scale-tier assay, where the batch kernel's vectorization win
#: is most visible.
THROUGHPUT_BENCHMARKS = ("Scale200",)

#: Benchmarks the ``--portfolio`` tier gates on: the two largest scale
#: assays, where CPU efficiency is what matters.
PORTFOLIO_BENCHMARKS = ("Scale100", "Scale200")

#: ``--quick`` subset of the portfolio tier (CI smoke).
QUICK_PORTFOLIO_BENCHMARKS = ("Scale50",)

#: Default artifact for the portfolio tier (``--portfolio``).
DEFAULT_PORTFOLIO_OUTPUT = "BENCH_pr8.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments bench",
        description=(
            "Time the SA placement engines (reference vs incremental) "
            "across benchmarks and write the BENCH JSON artifact."
        ),
    )
    parser.add_argument(
        "--scale",
        choices=("table1", "large"),
        default="table1",
        help="benchmark tier: table1 compares the placement engines on "
             "the paper's rows, large compares the routing engines "
             "(reference vs the fast engine) on the Scale50/100/200 "
             "synthetic assays (default: table1)",
    )
    parser.add_argument(
        "--fast-route-engine",
        choices=("flat", "flat2"),
        default="flat2",
        help="fast side of the --scale large routing comparison "
             "(default: flat2, the vectorized-cost engine)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"run only {', '.join(QUICK_BENCHMARKS)} with 2 repeats "
             f"({', '.join(QUICK_SCALE_BENCHMARKS)} with --scale large)",
    )
    parser.add_argument(
        "--benchmarks", nargs="+", metavar="NAME", default=None,
        choices=benchmark_names(),
        help="explicit benchmark subset (default: all Table I rows)",
    )
    parser.add_argument("--seed", type=int, default=1,
                        help="annealer seed for both engines (default: 1)")
    parser.add_argument("--repeat", "--repeats", dest="repeat", type=int,
                        default=None,
                        help="timed repetitions per engine; the median is "
                             "kept and the min/max spread recorded "
                             "(default: 3, or 2 with --quick)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the benchmark fan-out; "
                             "results are identical for every value "
                             "(default: 1, 0 = one per CPU)")
    parser.add_argument("--scaling", nargs="+", type=int, metavar="JOBS",
                        default=None,
                        help="also wall-clock the suite at these job "
                             "levels (e.g. --scaling 1 2 4) and record "
                             "the rows in the artifact")
    parser.add_argument("--multistart", type=int, metavar="N", default=None,
                        help="also record best-of-N-restarts placement "
                             "energy vs the single run")
    parser.add_argument("--multistart-benchmarks", nargs="+", metavar="NAME",
                        default=None, choices=benchmark_names(),
                        help="benchmarks for the --multistart section "
                             f"(default: {', '.join(MULTISTART_BENCHMARKS)})")
    parser.add_argument("--throughput", type=int, metavar="BATCH",
                        default=None,
                        help="also measure raw SA placement throughput "
                             "(moves/sec) for every placement engine, "
                             "with the batch engine at BATCH candidates "
                             "per step, and record the section")
    parser.add_argument("--throughput-benchmarks", nargs="+", metavar="NAME",
                        default=None, choices=benchmark_names(),
                        help="benchmarks for the --throughput section "
                             f"(default: {', '.join(THROUGHPUT_BENCHMARKS)})")
    parser.add_argument("--serve", action="store_true",
                        help="run the service tier instead: boot a "
                             "synthesis server, measure cold submission "
                             "latency then concurrent cache-hit latency/"
                             "throughput, and gate on the cache-hit "
                             "speedup (artifact: BENCH_pr9.json; see "
                             "docs/SERVICE.md)")
    parser.add_argument("--shards", type=int, metavar="N", default=None,
                        choices=(1, 2, 4),
                        help="with --serve: benchmark the sharded tier "
                             "instead — boot shard counts up to N behind "
                             "the digest-routing front, verify byte/digest "
                             "identity across serving paths, and measure "
                             "loaded throughput per shard count "
                             "(artifact: BENCH_pr10.json; see "
                             "docs/SERVICE.md \"Scaling out\")")
    parser.add_argument("--portfolio", type=int, metavar="N", default=None,
                        help="run the portfolio tier instead: race N "
                             "successive-halving arms against equal-budget "
                             "multi-start (restarts = N/2) on "
                             f"{', '.join(PORTFOLIO_BENCHMARKS)}, gate on "
                             "strictly better energy-per-CPU-second, "
                             "jobs-determinism, and the strict checker")
    parser.add_argument("--rungs", type=int, default=3,
                        help="successive-halving rungs for --portfolio "
                             "(default: 3)")
    parser.add_argument("--check",
                        choices=CHECK_MODES,
                        default="report",
                        help="audit every timed run with the independent "
                             "design-rule checker and record the violation "
                             "counts in the table and artifact "
                             "(default: report)")
    parser.add_argument("--output", type=Path, default=None,
                        help=f"JSON artifact path (default: {DEFAULT_OUTPUT}, "
                             f"or {DEFAULT_ROUTE_OUTPUT} with --scale large)")
    parser.add_argument(
        "--require-speedup", metavar="NAME", default=None,
        choices=benchmark_names(),
        help="exit non-zero when the optimised engine is slower than "
             "the reference on this benchmark (CI gate); gates the "
             "placement phase on the table1 tier and the routing phase "
             "on the large tier",
    )
    return parser


def run(argv: list[str]) -> int:
    args = build_parser().parse_args(argv)
    if args.serve:
        if args.shards is not None:
            from repro.serve.loadgen import run_shard_bench

            return run_shard_bench(
                max_shards=args.shards, quick=args.quick,
                output=args.output,
            )
        from repro.serve.loadgen import run_serve_bench

        return run_serve_bench(quick=args.quick, output=args.output)
    if args.shards is not None:
        build_parser().error("--shards requires --serve")
    if args.portfolio is not None:
        return _run_portfolio_tier(args)
    if args.benchmarks is not None:
        names = tuple(args.benchmarks)
    elif args.scale == "large":
        names = QUICK_SCALE_BENCHMARKS if args.quick else SCALE_ORDER
    elif args.quick:
        names = QUICK_BENCHMARKS
    else:
        names = TABLE1_ORDER
    repeats = args.repeat if args.repeat is not None else (2 if args.quick else 3)
    if args.require_speedup is not None and args.require_speedup not in names:
        names = names + (args.require_speedup,)
    if args.output is None:
        args.output = Path(
            DEFAULT_ROUTE_OUTPUT if args.scale == "large" else DEFAULT_OUTPUT
        )

    if args.scale == "large":
        return _run_route_tier(args, names, repeats)

    comparisons = run_suite(
        names, seed=args.seed, repeats=repeats, jobs=args.jobs,
        check=args.check,
    )
    print(render_bench_table(comparisons))

    scaling = None
    if args.scaling is not None:
        scaling = measure_jobs_scaling(
            names, jobs_levels=tuple(args.scaling), seed=args.seed,
            repeats=min(repeats, 2),
        )
        print()
        print(render_scaling_table(scaling))

    multistart = None
    if args.multistart is not None:
        multistart_names = tuple(
            args.multistart_benchmarks or MULTISTART_BENCHMARKS
        )
        multistart = measure_multistart(
            multistart_names, restarts=args.multistart, seed=args.seed,
            jobs=args.jobs,
        )
        print()
        print(render_multistart_table(multistart))

    throughput = _measure_throughput(args)

    payload = comparisons_to_payload(
        comparisons,
        label=args.output.stem,
        quick=args.quick,
        jobs=args.jobs,
        jobs_scaling=scaling,
        multistart=multistart,
        placement_throughput=throughput,
    )
    write_bench_json(args.output, payload)
    print(f"\nwrote {args.output}")

    status = 0
    mismatched = [c.benchmark for c in comparisons if not c.energies_match]
    if mismatched:
        print(
            "error: engines disagree on best energy for: "
            + ", ".join(mismatched),
            file=sys.stderr,
        )
        status = 1
    if multistart is not None:
        degraded = [r["benchmark"] for r in multistart if not r["non_degraded"]]
        if degraded:
            print(
                "error: multi-start energy degraded below the single run "
                "for: " + ", ".join(degraded),
                file=sys.stderr,
            )
            status = 1
    if args.require_speedup is not None:
        gate = next(
            c for c in comparisons if c.benchmark == args.require_speedup
        )
        if gate.place_speedup < 1.0:
            print(
                f"error: incremental engine slower than reference on "
                f"{gate.benchmark} "
                f"({gate.incremental.place_time:.3f}s vs "
                f"{gate.reference.place_time:.3f}s)",
                file=sys.stderr,
            )
            status = 1
        else:
            print(
                f"speedup gate OK: {gate.benchmark} placement "
                f"{gate.place_speedup:.2f}x"
            )
    status = max(status, _check_throughput(throughput))
    return status


def _measure_throughput(args) -> list[dict] | None:
    """The optional ``--throughput`` section, shared by both tiers."""
    if args.throughput is None:
        return None
    throughput_names = tuple(
        args.throughput_benchmarks or THROUGHPUT_BENCHMARKS
    )
    rows = measure_placement_throughput(
        throughput_names, seed=args.seed, batch_size=args.throughput
    )
    print()
    print(render_throughput_table(rows))
    return rows


def _check_throughput(rows: list[dict] | None) -> int:
    """Never-worse gate over the ``--throughput`` rows (0 ok, 1 fail)."""
    if rows is None:
        return 0
    worse = [row["benchmark"] for row in rows if not row["batch_never_worse"]]
    if worse:
        print(
            "error: batch engine energy degraded below the serial "
            "engines on: " + ", ".join(worse),
            file=sys.stderr,
        )
        return 1
    return 0


def _run_portfolio_tier(args) -> int:
    """The ``--portfolio N`` branch: racing vs equal-budget multi-start.

    Exit 1 when any row fails a gate: the race must be strictly more
    energy-per-CPU-second efficient than ``restarts = N/2`` classic
    multi-start at the same candidate budget, bit-identical across
    worker counts, and clean under the strict design-rule checker.
    """
    if args.benchmarks is not None:
        names = tuple(args.benchmarks)
    elif args.quick:
        names = QUICK_PORTFOLIO_BENCHMARKS
    else:
        names = PORTFOLIO_BENCHMARKS
    output = args.output or Path(DEFAULT_PORTFOLIO_OUTPUT)

    rows = measure_portfolio(
        names,
        arms=args.portfolio,
        rungs=args.rungs,
        seed=args.seed,
        check=args.check != "off",
    )
    print(render_portfolio_table(rows))

    payload = portfolio_rows_to_payload(
        rows, label=output.stem, quick=args.quick
    )
    write_bench_json(output, payload)
    print(f"\nwrote {output}")

    status = 0
    slower = [r["benchmark"] for r in rows if not r["portfolio_better"]]
    if slower:
        print(
            "error: portfolio race less CPU-efficient than equal-budget "
            "multi-start on: " + ", ".join(slower),
            file=sys.stderr,
        )
        status = 1
    drifting = [
        r["benchmark"] for r in rows if not r["deterministic_across_jobs"]
    ]
    if drifting:
        print(
            "error: portfolio result varies across --jobs on: "
            + ", ".join(drifting),
            file=sys.stderr,
        )
        status = 1
    dirty = [r["benchmark"] for r in rows if r["checker_clean"] is False]
    if dirty:
        print(
            "error: portfolio pipeline failed the strict checker on: "
            + ", ".join(dirty),
            file=sys.stderr,
        )
        status = 1
    if status == 0:
        print(
            f"portfolio gate OK: {len(rows)} benchmark(s), "
            "better e/cpu-s, jobs-deterministic"
            + ("" if args.check == "off" else ", checker-clean")
        )
    return status


def _run_route_tier(args, names: tuple[str, ...], repeats: int) -> int:
    """The ``--scale large`` branch: reference vs fast routing engine."""
    comparisons = run_route_suite(
        names, seed=args.seed, repeats=repeats, jobs=args.jobs,
        check=args.check, fast_engine=args.fast_route_engine,
    )
    print(render_route_table(comparisons))

    throughput = _measure_throughput(args)

    payload = route_comparisons_to_payload(
        comparisons,
        label=args.output.stem,
        quick=args.quick,
        jobs=args.jobs,
        placement_throughput=throughput,
    )
    write_bench_json(args.output, payload)
    print(f"\nwrote {args.output}")

    status = 0
    mismatched = [c.benchmark for c in comparisons if not c.paths_match]
    if mismatched:
        print(
            "error: routing engines disagree on paths for: "
            + ", ".join(mismatched),
            file=sys.stderr,
        )
        status = 1
    if args.require_speedup is not None:
        gate = next(
            c for c in comparisons if c.benchmark == args.require_speedup
        )
        if gate.route_speedup < 1.0:
            print(
                f"error: {args.fast_route_engine} engine slower than "
                f"reference on {gate.benchmark} "
                f"({gate.flat.route_time:.3f}s vs "
                f"{gate.reference.route_time:.3f}s)",
                file=sys.stderr,
            )
            status = 1
        else:
            print(
                f"speedup gate OK: {gate.benchmark} routing "
                f"{gate.route_speedup:.2f}x"
            )
    status = max(status, _check_throughput(throughput))
    return status


def main(argv: list[str] | None = None) -> None:  # pragma: no cover
    raise SystemExit(run(sys.argv[1:] if argv is None else argv))


if __name__ == "__main__":  # pragma: no cover
    main()

"""``python -m repro.experiments`` — run the full evaluation harness."""

from repro.experiments.runner import main

if __name__ == "__main__":
    main()

"""``python -m repro.experiments`` — evaluation and benchmarking CLIs.

Without a subcommand (or with the explicit ``run_all`` alias) this runs
the full paper evaluation (Table I, Fig. 8, Fig. 9); add ``--jobs N``
to fan the benchmarks out over a process pool and ``--check
report|strict`` to audit every result with the independent design-rule
checker (:mod:`repro.check`).  ``python -m repro.experiments bench``
runs the placement-engine perf comparison instead (see
:mod:`repro.experiments.bench`), with ``--jobs``/``--repeat``/
``--scaling``/``--multistart`` for the parallel-layer measurements.
"""

import sys


def main() -> None:
    argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        from repro.experiments.bench import main as bench_main

        bench_main(argv[1:])
    else:
        if argv and argv[0] == "run_all":
            argv = argv[1:]
        from repro.experiments.runner import main as runner_main

        runner_main(argv)


if __name__ == "__main__":
    main()

"""Shared experiment runner: one benchmark, both algorithms.

:func:`run_benchmark` synthesises a benchmark with the proposed flow and
the baseline under identical parameters and returns a
:class:`BenchmarkComparison` holding both results; :func:`run_all` does
so for every Table I row, optionally fanning the per-benchmark
syntheses out over a process pool (``jobs``).  Each pooled child runs
with its own :class:`~repro.obs.Instrumentation` and ships its phase
timers and counters back to the parent, which merges them in benchmark
order — so the ``--profile`` report carries the same span/counter keys
for any job count.  ``python -m repro.experiments.runner`` prints every
table and figure of the evaluation section in one go; add ``--jobs N``
to parallelise, ``--profile`` for the cross-benchmark phase/counter
breakdown, or ``--trace PATH.jsonl`` for the full event stream (serial
runs only stream per-move events; pooled children contribute
aggregates).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.benchmarks.registry import TABLE1_ORDER, get_benchmark
from repro.check.report import CHECK_MODES
from repro.core.baseline import synthesize_problem_baseline
from repro.core.metrics import improvement
from repro.core.problem import SynthesisParameters, SynthesisProblem
from repro.core.solution import SynthesisResult
from repro.core.synthesizer import synthesize_problem
from repro.errors import CheckError
from repro.obs.instrument import Instrumentation, InstrumentationSnapshot
from repro.parallel.pool import run_tasks

__all__ = ["BenchmarkComparison", "run_benchmark", "run_all"]


@dataclass(frozen=True)
class BenchmarkComparison:
    """Results of both algorithms on one benchmark."""

    name: str
    ours: SynthesisResult
    baseline: SynthesisResult

    @property
    def execution_improvement(self) -> float:
        """Table I ``Imp (%)`` for execution time."""
        return improvement(
            self.ours.metrics.execution_time,
            self.baseline.metrics.execution_time,
        )

    @property
    def utilisation_improvement(self) -> float:
        """Table I ``Imp (%)`` for resource utilisation (increase)."""
        ours = self.ours.metrics.resource_utilisation
        base = self.baseline.metrics.resource_utilisation
        if base == 0:
            return 0.0
        return (ours - base) / base * 100.0

    @property
    def length_improvement(self) -> float:
        """Table I ``Imp (%)`` for total channel length."""
        return improvement(
            self.ours.metrics.total_channel_length_mm,
            self.baseline.metrics.total_channel_length_mm,
        )


def run_benchmark(
    name: str,
    parameters: SynthesisParameters | None = None,
    instrumentation: Instrumentation | None = None,
) -> BenchmarkComparison:
    """Synthesise *name* with both algorithms under one parameter set.

    With *instrumentation* the two runs are wrapped in
    ``bench.<name> > ours / baseline`` spans, so a shared trace (or the
    ``--profile`` report) attributes every phase and counter to its
    benchmark and algorithm.
    """
    params = parameters or SynthesisParameters(seed=1)
    case = get_benchmark(name)
    problem = SynthesisProblem(
        assay=case.assay, allocation=case.allocation, parameters=params
    )
    instr = instrumentation if instrumentation is not None else Instrumentation()
    with instr.span(f"bench.{name}"):
        with instr.span("ours"):
            ours = synthesize_problem(problem, instrumentation=instr)
        with instr.span("baseline"):
            baseline = synthesize_problem_baseline(problem, instrumentation=instr)
    return BenchmarkComparison(name=name, ours=ours, baseline=baseline)


def _benchmark_worker(
    payload: tuple[str, SynthesisParameters | None],
) -> tuple[BenchmarkComparison, "InstrumentationSnapshot"]:
    """Pool entry point: one benchmark with private instrumentation."""
    name, parameters = payload
    instr = Instrumentation()
    comparison = run_benchmark(name, parameters, instrumentation=instr)
    return comparison, instr.snapshot()


def run_all(
    names: Iterable[str] = TABLE1_ORDER,
    parameters: SynthesisParameters | None = None,
    instrumentation: Instrumentation | None = None,
    jobs: int = 1,
) -> list[BenchmarkComparison]:
    """Run every requested benchmark (Table I rows by default).

    ``jobs > 1`` dispatches the per-benchmark syntheses to a process
    pool (:mod:`repro.parallel`).  Results and merged telemetry are
    identical for every job count: comparisons come back in benchmark
    order and each child's instrumentation snapshot is absorbed into
    *instrumentation* in that same order.
    """
    names = list(names)
    if jobs == 1:
        return [
            run_benchmark(name, parameters, instrumentation=instrumentation)
            for name in names
        ]
    outcomes = run_tasks(
        _benchmark_worker,
        [(name, parameters) for name in names],
        jobs=jobs,
    )
    comparisons = []
    for comparison, snapshot in outcomes:
        if instrumentation is not None:
            instrumentation.absorb(snapshot)
        comparisons.append(comparison)
    return comparisons


def main(argv: list[str] | None = None) -> None:  # pragma: no cover - CLI
    """Print Table I, Fig. 8, and Fig. 9 from one set of runs."""
    from repro.experiments.fig8 import render_fig8
    from repro.experiments.fig9 import render_fig9
    from repro.experiments.table1 import render_table1
    from repro.obs.report import render_report
    from repro.obs.sinks import JsonlSink, NullSink

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Run every Table I benchmark with both algorithms.",
    )
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the per-benchmark "
                             "fan-out; results are identical for every "
                             "value (default: 1, 0 = one per CPU)")
    parser.add_argument("--profile", action="store_true",
                        help="print the phase/counter breakdown after the tables")
    parser.add_argument("--trace", type=Path, default=None, metavar="PATH.jsonl",
                        help="stream instrumentation events to this JSONL file")
    parser.add_argument("--check",
                        choices=CHECK_MODES,
                        default="report",
                        help="audit every result with the independent "
                             "design-rule checker; 'report' adds violation "
                             "counts to Table I, 'strict' fails the run on "
                             "any violation (default: report)")
    args = parser.parse_args(argv)

    try:
        sink = JsonlSink(args.trace) if args.trace is not None else NullSink()
    except OSError as error:
        parser.exit(3, f"error: cannot open trace file: {error}\n")
    instrumentation = Instrumentation(sink)
    parameters = SynthesisParameters(seed=1, check=args.check)
    try:
        comparisons = run_all(
            parameters=parameters,
            instrumentation=instrumentation,
            jobs=args.jobs,
        )
    except CheckError as error:
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(3)
    finally:
        sink.close()
    print(render_table1(comparisons))
    print()
    print(render_fig8(comparisons))
    print()
    print(render_fig9(comparisons))
    if args.profile:
        print()
        print(render_report(instrumentation))
    if args.trace is not None:
        print(f"\nwrote trace to {args.trace}")


if __name__ == "__main__":  # pragma: no cover
    main()

"""Experiment E2: regenerate Fig. 8 — total cache time in flow channels.

The figure compares, per benchmark, the sum of all fluid cache times in
distributed channel storage for the proposed algorithm and BA.  Run
with ``python -m repro.experiments.fig8`` or ``repro-fig8``.
"""

from __future__ import annotations

from repro.experiments.reporting import format_grouped_bars
from repro.experiments.runner import BenchmarkComparison, run_all

__all__ = ["fig8_series", "render_fig8", "main"]


def fig8_series(
    comparisons: list[BenchmarkComparison],
) -> tuple[list[str], dict[str, list[float]]]:
    """Labels and the two data series of the figure."""
    labels = [c.name for c in comparisons]
    series = {
        "Ours": [c.ours.metrics.total_cache_time for c in comparisons],
        "BA": [c.baseline.metrics.total_cache_time for c in comparisons],
    }
    return labels, series


def render_fig8(comparisons: list[BenchmarkComparison]) -> str:
    """The figure as a grouped text bar chart."""
    labels, series = fig8_series(comparisons)
    return format_grouped_bars(
        "Fig. 8: total cache time in flow channels", labels, series, unit="s"
    )


def main() -> None:  # pragma: no cover - exercised via CLI
    print(render_fig8(run_all()))


if __name__ == "__main__":  # pragma: no cover
    main()

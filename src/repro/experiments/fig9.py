"""Experiment E3: regenerate Fig. 9 — total wash time of flow channels.

The figure compares, per benchmark, the total wash time charged on flow
channels (residue flushes between different fluids sharing a channel,
plus final cleanup) for the proposed algorithm and BA.  Run with
``python -m repro.experiments.fig9`` or ``repro-fig9``.
"""

from __future__ import annotations

from repro.experiments.reporting import format_grouped_bars
from repro.experiments.runner import BenchmarkComparison, run_all

__all__ = ["fig9_series", "render_fig9", "main"]


def fig9_series(
    comparisons: list[BenchmarkComparison],
) -> tuple[list[str], dict[str, list[float]]]:
    """Labels and the two data series of the figure."""
    labels = [c.name for c in comparisons]
    series = {
        "Ours": [c.ours.metrics.total_channel_wash_time for c in comparisons],
        "BA": [c.baseline.metrics.total_channel_wash_time for c in comparisons],
    }
    return labels, series


def render_fig9(comparisons: list[BenchmarkComparison]) -> str:
    """The figure as a grouped text bar chart."""
    labels, series = fig9_series(comparisons)
    return format_grouped_bars(
        "Fig. 9: total wash time of flow channels", labels, series, unit="s"
    )


def main() -> None:  # pragma: no cover - exercised via CLI
    print(render_fig9(run_all()))


if __name__ == "__main__":  # pragma: no cover
    main()

"""Seed-robustness study: do the Table I conclusions survive SA noise?

The simulated-annealing placer is the only stochastic stage of the
flow.  This experiment re-synthesises each benchmark across several
annealer seeds and summarises the distribution of every headline
metric, confirming that the Ours-vs-BA comparisons of Table I are not
artifacts of one lucky seed.  (BA is fully deterministic, so its
numbers are constants.)

Run with ``python -m repro.experiments.robustness``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.benchmarks.registry import TABLE1_ORDER, get_benchmark
from repro.core.baseline import synthesize_problem_baseline
from repro.core.problem import SynthesisParameters, SynthesisProblem
from repro.core.synthesizer import synthesize_problem
from repro.experiments.reporting import format_table

__all__ = ["SeedStudy", "run_seed_study", "render_seed_study", "main"]

DEFAULT_SEEDS = (1, 2, 3, 4, 5)


@dataclass(frozen=True)
class SeedStudy:
    """Per-benchmark distribution of ours' metrics across seeds."""

    name: str
    seeds: tuple[int, ...]
    execution_times: tuple[float, ...]
    channel_lengths: tuple[float, ...]
    utilisations: tuple[float, ...]
    baseline_execution_time: float
    baseline_channel_length: float
    baseline_utilisation: float

    @staticmethod
    def _mean(values: tuple[float, ...]) -> float:
        return sum(values) / len(values)

    @staticmethod
    def _std(values: tuple[float, ...]) -> float:
        mean = sum(values) / len(values)
        return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))

    @property
    def mean_execution_time(self) -> float:
        return self._mean(self.execution_times)

    @property
    def std_execution_time(self) -> float:
        return self._std(self.execution_times)

    @property
    def mean_channel_length(self) -> float:
        return self._mean(self.channel_lengths)

    @property
    def std_channel_length(self) -> float:
        return self._std(self.channel_lengths)

    @property
    def mean_utilisation(self) -> float:
        return self._mean(self.utilisations)

    def always_beats_baseline_execution(self) -> bool:
        """Whether ours wins (or ties) on execution time for EVERY seed."""
        return all(
            t <= self.baseline_execution_time + 1e-9
            for t in self.execution_times
        )


def run_seed_study(
    name: str, seeds: tuple[int, ...] = DEFAULT_SEEDS
) -> SeedStudy:
    """Synthesise *name* once per seed plus the (deterministic) baseline."""
    case = get_benchmark(name)
    executions: list[float] = []
    lengths: list[float] = []
    utilisations: list[float] = []
    for seed in seeds:
        problem = SynthesisProblem(
            assay=case.assay,
            allocation=case.allocation,
            parameters=SynthesisParameters(seed=seed),
        )
        metrics = synthesize_problem(problem).metrics
        executions.append(metrics.execution_time)
        lengths.append(metrics.total_channel_length_mm)
        utilisations.append(metrics.resource_utilisation)
    baseline_problem = SynthesisProblem(
        assay=case.assay,
        allocation=case.allocation,
        parameters=SynthesisParameters(seed=seeds[0]),
    )
    baseline = synthesize_problem_baseline(baseline_problem).metrics
    return SeedStudy(
        name=name,
        seeds=tuple(seeds),
        execution_times=tuple(executions),
        channel_lengths=tuple(lengths),
        utilisations=tuple(utilisations),
        baseline_execution_time=baseline.execution_time,
        baseline_channel_length=baseline.total_channel_length_mm,
        baseline_utilisation=baseline.resource_utilisation,
    )


def render_seed_study(studies: list[SeedStudy]) -> str:
    """A Table I-style summary with mean ± std over seeds."""
    headers = [
        "Benchmark",
        "Exec ours (s)",
        "Exec BA (s)",
        "Len ours (mm)",
        "Len BA (mm)",
        "Util ours (%)",
        "Util BA (%)",
        "Wins all seeds",
    ]
    rows = []
    for study in studies:
        rows.append(
            [
                study.name,
                f"{study.mean_execution_time:.1f}±{study.std_execution_time:.1f}",
                f"{study.baseline_execution_time:.1f}",
                f"{study.mean_channel_length:.0f}±{study.std_channel_length:.0f}",
                f"{study.baseline_channel_length:.0f}",
                f"{study.mean_utilisation * 100:.1f}",
                f"{study.baseline_utilisation * 100:.1f}",
                "yes" if study.always_beats_baseline_execution() else "NO",
            ]
        )
    return (
        "Seed-robustness of the Table I comparison "
        f"(seeds {studies[0].seeds if studies else ()})\n"
        + format_table(headers, rows)
    )


def main() -> None:  # pragma: no cover - exercised via CLI
    studies = [run_seed_study(name) for name in TABLE1_ORDER]
    print(render_seed_study(studies))


if __name__ == "__main__":  # pragma: no cover
    main()

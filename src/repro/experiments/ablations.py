"""Programmatic ablation studies (the A-series of DESIGN.md).

Each function runs one ablation and returns structured rows;
``python -m repro.experiments.ablations`` prints them all.  The
pytest-benchmark harnesses under ``benchmarks/`` assert the claims and
time the stages; this module is the user-facing way to regenerate the
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmarks.registry import TABLE1_ORDER, get_benchmark
from repro.core.metrics import channel_wash_time
from repro.experiments.reporting import format_table
from repro.place.annealing import AnnealingParameters, anneal_placement
from repro.place.energy import build_connection_priorities
from repro.core.problem import SynthesisProblem
from repro.route.router import route_tasks
from repro.schedule.baseline_scheduler import schedule_assay_baseline
from repro.schedule.dedicated import schedule_assay_dedicated
from repro.schedule.list_scheduler import schedule_assay
from repro.units import Seconds

__all__ = [
    "TransportTimeRow",
    "transport_time_ablation",
    "DedicatedStorageRow",
    "dedicated_storage_ablation",
    "CellWeightRow",
    "cell_weight_ablation",
    "main",
]

#: Moderate SA effort for sweeps (paper effort is unnecessary here).
_SWEEP_SA = AnnealingParameters(
    initial_temperature=1000.0,
    min_temperature=1.0,
    cooling_rate=0.85,
    iterations_per_temperature=60,
)


@dataclass(frozen=True)
class TransportTimeRow:
    """A3: one benchmark at one ``t_c``."""

    benchmark: str
    transport_time: Seconds
    ours_makespan: Seconds
    baseline_makespan: Seconds

    @property
    def gap(self) -> Seconds:
        return self.baseline_makespan - self.ours_makespan


def transport_time_ablation(
    values: tuple[Seconds, ...] = (1.0, 2.0, 4.0),
    names: tuple[str, ...] = TABLE1_ORDER,
) -> list[TransportTimeRow]:
    """Schedule every benchmark at each ``t_c``."""
    rows = []
    for name in names:
        case = get_benchmark(name)
        for t_c in values:
            rows.append(
                TransportTimeRow(
                    benchmark=name,
                    transport_time=t_c,
                    ours_makespan=schedule_assay(
                        case.assay, case.allocation, transport_time=t_c
                    ).makespan,
                    baseline_makespan=schedule_assay_baseline(
                        case.assay, case.allocation, transport_time=t_c
                    ).makespan,
                )
            )
    return rows


@dataclass(frozen=True)
class DedicatedStorageRow:
    """A4: DCSA vs the conventional dedicated-storage architecture."""

    benchmark: str
    dcsa_makespan: Seconds
    dedicated_makespan: Seconds

    @property
    def slowdown(self) -> float:
        if self.dcsa_makespan == 0:
            return 0.0
        return self.dedicated_makespan / self.dcsa_makespan


def dedicated_storage_ablation(
    names: tuple[str, ...] = TABLE1_ORDER,
) -> list[DedicatedStorageRow]:
    """Quantify the storage-port bottleneck per benchmark."""
    rows = []
    for name in names:
        case = get_benchmark(name)
        rows.append(
            DedicatedStorageRow(
                benchmark=name,
                dcsa_makespan=schedule_assay(case.assay, case.allocation).makespan,
                dedicated_makespan=schedule_assay_dedicated(
                    case.assay, case.allocation
                ).makespan,
            )
        )
    return rows


@dataclass(frozen=True)
class CellWeightRow:
    """A6: router behaviour at one initial cell weight."""

    initial_weight: float
    channel_length_cells: int
    channel_wash_time: Seconds
    postponement: Seconds


def cell_weight_ablation(
    name: str = "CPA",
    weights: tuple[float, ...] = (0.0, 2.0, 10.0, 50.0),
    seed: int = 1,
) -> list[CellWeightRow]:
    """Sweep ``w_e`` on one benchmark's routing stage."""
    case = get_benchmark(name)
    problem = SynthesisProblem(assay=case.assay, allocation=case.allocation)
    schedule = schedule_assay(case.assay, case.allocation)
    priorities = build_connection_priorities(schedule)
    annealed = anneal_placement(
        problem.resolved_grid(), problem.footprints(), priorities,
        _SWEEP_SA, seed=seed,
    )
    rows = []
    for w_e in weights:
        routing = route_tasks(
            annealed.placement, schedule.transport_tasks(), initial_weight=w_e
        )
        rows.append(
            CellWeightRow(
                initial_weight=w_e,
                channel_length_cells=routing.total_length_cells,
                channel_wash_time=channel_wash_time(routing),
                postponement=routing.total_postponement,
            )
        )
    return rows


def main() -> None:  # pragma: no cover - exercised via CLI
    print("== A3: t_c sensitivity (makespans, ours/BA) ==")
    rows3 = transport_time_ablation()
    print(
        format_table(
            ["Benchmark", "t_c", "Ours (s)", "BA (s)", "Gap (s)"],
            [
                [
                    r.benchmark,
                    f"{r.transport_time:g}",
                    f"{r.ours_makespan:.1f}",
                    f"{r.baseline_makespan:.1f}",
                    f"{r.gap:.1f}",
                ]
                for r in rows3
            ],
        )
    )
    print()
    print("== A4: DCSA vs dedicated storage ==")
    rows4 = dedicated_storage_ablation()
    print(
        format_table(
            ["Benchmark", "DCSA (s)", "Dedicated (s)", "Slowdown"],
            [
                [
                    r.benchmark,
                    f"{r.dcsa_makespan:.1f}",
                    f"{r.dedicated_makespan:.1f}",
                    f"{r.slowdown:.2f}x",
                ]
                for r in rows4
            ],
        )
    )
    print()
    print("== A6: initial cell weight w_e (CPA) ==")
    rows6 = cell_weight_ablation()
    print(
        format_table(
            ["w_e", "Length (cells)", "Channel wash (s)", "Postponement (s)"],
            [
                [
                    f"{r.initial_weight:g}",
                    str(r.channel_length_cells),
                    f"{r.channel_wash_time:.1f}",
                    f"{r.postponement:.1f}",
                ]
                for r in rows6
            ],
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()

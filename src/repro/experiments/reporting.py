"""Plain-text table and bar-chart rendering for experiment reports.

The harness prints its results in the same structure the paper uses:
a comparison table (Table I) and per-benchmark grouped bars (Figs 8/9).
Everything is dependency-free text so reports drop straight into
EXPERIMENTS.md and terminal logs.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_grouped_bars"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned monospace table with a header separator."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row!r}"
            )
    widths = [
        max(len(str(headers[c])), *(len(str(row[c])) for row in rows))
        if rows
        else len(str(headers[c]))
        for c in range(columns)
    ]
    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(str(cell).rjust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * width for width in widths)
    return "\n".join([fmt(headers), separator] + [fmt(row) for row in rows])


def format_grouped_bars(
    title: str,
    labels: Sequence[str],
    series: dict[str, Sequence[float]],
    unit: str = "s",
    width: int = 50,
) -> str:
    """Render grouped horizontal bars (one group per label).

    Mirrors the paper's Fig. 8 / Fig. 9 bar charts in plain text::

        == title ==
        PCR
          Ours |#####            12.0 s
          BA   |########         20.5 s
    """
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(labels)} labels"
            )
    peak = max(
        (value for values in series.values() for value in values), default=0.0
    )
    scale = (width / peak) if peak > 0 else 0.0
    name_width = max(len(name) for name in series) if series else 0
    lines = [f"== {title} =="]
    for index, label in enumerate(labels):
        lines.append(str(label))
        for name, values in series.items():
            value = values[index]
            bar = "#" * max(0, round(value * scale))
            lines.append(
                f"  {name.ljust(name_width)} |{bar.ljust(width)} "
                f"{value:8.1f} {unit}"
            )
    return "\n".join(lines)

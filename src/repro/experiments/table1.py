"""Experiment E1: regenerate Table I.

Columns mirror the paper: benchmark, #operations, allocated components,
execution time (Ours / BA / Imp%), resource utilisation (Ours / BA /
Imp%), total channel length (Ours / BA / Imp%), and CPU time (Ours /
BA).  Run with ``python -m repro.experiments.table1`` or the
``repro-table1`` console script.
"""

from __future__ import annotations

from repro.benchmarks.registry import get_benchmark
from repro.experiments.reporting import format_table
from repro.experiments.runner import BenchmarkComparison, run_all

__all__ = ["render_table1", "table1_rows", "main"]

_HEADERS = [
    "Benchmark",
    "Ops",
    "Components",
    "Exec ours (s)",
    "Exec BA (s)",
    "Imp (%)",
    "Util ours (%)",
    "Util BA (%)",
    "Imp (%)",
    "Len ours (mm)",
    "Len BA (mm)",
    "Imp (%)",
    "CPU ours (s)",
    "CPU BA (s)",
]

#: Extra columns shown when the runs carried the design-rule checker.
_CHECK_HEADERS = ["Viol ours", "Viol BA"]


def _checked(comparisons: list[BenchmarkComparison]) -> bool:
    return any(
        c.ours.check_report is not None or c.baseline.check_report is not None
        for c in comparisons
    )


def _violation_count(result) -> str:
    if result.check_report is None:
        return "-"
    return str(result.check_report.error_count)


def table1_rows(comparisons: list[BenchmarkComparison]) -> list[list[str]]:
    """One formatted row per benchmark, plus the averages row.

    When any run carried a checker audit (``--check report``/``strict``)
    two violation-count columns are appended, matching
    :data:`_CHECK_HEADERS`.
    """
    with_check = _checked(comparisons)
    rows = []
    imps = {"exec": [], "util": [], "len": []}
    for comparison in comparisons:
        ours = comparison.ours.metrics
        base = comparison.baseline.metrics
        case = get_benchmark(comparison.name)
        imps["exec"].append(comparison.execution_improvement)
        imps["util"].append(comparison.utilisation_improvement)
        imps["len"].append(comparison.length_improvement)
        rows.append(
            [
                comparison.name,
                str(case.operation_count),
                str(case.allocation),
                f"{ours.execution_time:.1f}",
                f"{base.execution_time:.1f}",
                f"{comparison.execution_improvement:.1f}",
                f"{ours.resource_utilisation * 100:.1f}",
                f"{base.resource_utilisation * 100:.1f}",
                f"{comparison.utilisation_improvement:.1f}",
                f"{ours.total_channel_length_mm:.0f}",
                f"{base.total_channel_length_mm:.0f}",
                f"{comparison.length_improvement:.1f}",
                f"{ours.cpu_time:.2f}",
                f"{base.cpu_time:.2f}",
            ]
            + (
                [
                    _violation_count(comparison.ours),
                    _violation_count(comparison.baseline),
                ]
                if with_check
                else []
            )
        )
    if comparisons:
        count = len(comparisons)
        rows.append(
            [
                "Average",
                "-",
                "-",
                "-",
                "-",
                f"{sum(imps['exec']) / count:.1f}",
                "-",
                "-",
                f"{sum(imps['util']) / count:.1f}",
                "-",
                "-",
                f"{sum(imps['len']) / count:.1f}",
                "-",
                "-",
            ]
            + (["-", "-"] if with_check else [])
        )
    return rows


def render_table1(comparisons: list[BenchmarkComparison]) -> str:
    """The full Table I as aligned text."""
    headers = _HEADERS + (_CHECK_HEADERS if _checked(comparisons) else [])
    return (
        "Table I: execution time, resource utilisation, total channel "
        "length, and CPU time\n" + format_table(headers, table1_rows(comparisons))
    )


def main() -> None:  # pragma: no cover - exercised via CLI
    print(render_table1(run_all()))


if __name__ == "__main__":  # pragma: no cover
    main()

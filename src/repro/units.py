"""Units and numeric helpers shared across the package.

The library works in a small set of physical units, chosen to match the
numbers quoted in the paper:

* **time** — seconds (operation durations, transport time ``t_c``, wash
  times, schedule timestamps).
* **length** — millimetres (channel lengths; Table I reports mm).
* **diffusion coefficient** — cm²/s (the paper quotes 10⁻⁵ cm²/s for small
  molecules and 5×10⁻⁸ cm²/s for large cells).

Timestamps are floats; comparisons therefore go through a small epsilon to
avoid spurious conflicts from floating-point noise.
"""

from __future__ import annotations

import math

__all__ = [
    "EPSILON",
    "Seconds",
    "Millimetres",
    "Cm2PerSecond",
    "approx_le",
    "approx_ge",
    "approx_eq",
    "clamp",
]

#: Tolerance used for all floating-point time comparisons in the package.
EPSILON: float = 1e-9

# Type aliases documenting intent; all are plain floats at runtime.
Seconds = float
Millimetres = float
Cm2PerSecond = float


def approx_le(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return ``True`` when ``a <= b`` up to the shared epsilon."""
    return a <= b + eps


def approx_ge(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return ``True`` when ``a >= b`` up to the shared epsilon."""
    return a >= b - eps


def approx_eq(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return ``True`` when ``a == b`` up to the shared epsilon."""
    return math.isclose(a, b, rel_tol=0.0, abs_tol=eps)


def clamp(value: float, lower: float, upper: float) -> float:
    """Clamp *value* into the inclusive interval ``[lower, upper]``.

    Raises :class:`ValueError` when the interval is empty.
    """
    if lower > upper:
        raise ValueError(f"empty clamp interval: [{lower}, {upper}]")
    return max(lower, min(upper, value))

"""Time-slot sets for routing-grid cells.

Each routing cell carries a set of occupation intervals
``T_i = {(st, et)}`` (Section IV-B.2): cell ``ce_i`` is held by some
transportation task from ``st`` to ``et`` (transport + distributed-
channel cache + wash of the residue).  Eq. 5 admits a cell for a new
task only when the new slot intersects none of the existing ones.

Intervals are half-open ``[start, end)`` so back-to-back slots (one task
entering exactly when the previous wash finishes) do not conflict —
matching the ``∩ = ∅`` condition of the paper with instantaneous
hand-over.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.units import EPSILON, Seconds

__all__ = ["TimeSlot", "TimeSlotSet"]


@dataclass(frozen=True, order=True)
class TimeSlot:
    """A half-open occupation interval ``[start, end)``."""

    start: Seconds
    end: Seconds

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValidationError(
                f"time slot ends before it starts: [{self.start}, {self.end})"
            )

    def overlaps(self, other: "TimeSlot") -> bool:
        """Interval intersection test (with epsilon slack at the joints).

        Empty (zero-length) intervals overlap nothing — they occur as
        degenerate probes (e.g. a zero transport time) and must never
        register conflicts.
        """
        if self.duration <= EPSILON or other.duration <= EPSILON:
            return False
        return (
            self.start < other.end - EPSILON
            and other.start < self.end - EPSILON
        )

    @property
    def duration(self) -> Seconds:
        return self.end - self.start


class TimeSlotSet:
    """A set of pairwise-disjoint occupation slots, sorted by start.

    Insertion is ``O(n)`` (bisect + list insert) and overlap queries are
    ``O(log n + k)``; cells see at most a handful of slots in practice,
    so this comfortably beats an interval tree on constant factors.
    """

    def __init__(self) -> None:
        self._starts: list[Seconds] = []
        self._slots: list[TimeSlot] = []

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self):
        return iter(self._slots)

    def slots(self) -> list[TimeSlot]:
        return list(self._slots)

    def conflicts_with(self, candidate: TimeSlot) -> bool:
        """Whether *candidate* overlaps any stored slot."""
        if not self._slots:
            return False
        index = bisect.bisect_left(self._starts, candidate.start)
        # The only possible overlaps are the predecessor (which may span
        # across candidate.start) and successors starting before the
        # candidate ends.
        if index > 0 and self._slots[index - 1].overlaps(candidate):
            return True
        while index < len(self._slots):
            slot = self._slots[index]
            if slot.start >= candidate.end - EPSILON:
                break
            if slot.overlaps(candidate):
                return True
            index += 1
        return False

    @classmethod
    def _from_disjoint_sorted(cls, slots: list[TimeSlot]) -> "TimeSlotSet":
        """Bulk constructor for already-validated, start-sorted slots.

        Replay helper for :meth:`RoutingGrid._replay_log`: the slots of
        a committed routing are pairwise disjoint by the routing
        invariant, so per-slot overlap checks and bisect insertion can
        be skipped.  The caller must present the exact order repeated
        :meth:`add` calls would have produced (ascending start; later
        insertions first among equal starts, matching ``bisect_left``).
        """
        built = cls()
        built._starts = [slot.start for slot in slots]
        built._slots = list(slots)
        return built

    def add(self, slot: TimeSlot) -> None:
        """Insert *slot*; raises :class:`ValidationError` on overlap.

        The no-overlap precondition is the routing invariant itself, so a
        violation is a router bug and must not pass silently.
        """
        if self.conflicts_with(slot):
            raise ValidationError(
                f"slot [{slot.start}, {slot.end}) overlaps an existing "
                "occupation"
            )
        index = bisect.bisect_left(self._starts, slot.start)
        self._starts.insert(index, slot.start)
        self._slots.insert(index, slot)

    def next_free_time(self, candidate: TimeSlot) -> Seconds:
        """Earliest start ≥ ``candidate.start`` at which a slot of the
        candidate's duration fits.

        Used by the construction-by-correction router to compute
        postponements: slide the candidate right past every conflicting
        slot until it fits.
        """
        duration = candidate.duration
        start = candidate.start
        probe = TimeSlot(start, start + duration)
        # One left-to-right sweep suffices: slots are sorted by start
        # and pairwise disjoint, so once the probe has slid past a
        # conflicting slot no earlier slot can reach it, and every
        # later conflict is met in order.  (The equivalence with the
        # restart-from-the-top formulation is pinned by a unit test on
        # a crowded cell.)
        for slot in self._slots:
            if slot.overlaps(probe):
                start = slot.end
                probe = TimeSlot(start, start + duration)
        return start

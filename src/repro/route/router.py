"""Transportation-conflict-aware routing (Algorithm 2, lines 9–18).

Tasks are routed in non-decreasing start-time order.  For each task the
improved A* of :mod:`repro.route.astar` searches a path whose *transit*
occupation fits every traversed cell; the path is then given a **slot
plan** assigning each cell the occupation matching its role:

* cells up to the cache cell — ``[depart, arrive + wash)``: the fluid
  passes on its way in, and the wash flow follows;
* the **cache cell** — the path cell closest to the destination that can
  host the plug — ``[depart, consume + wash)``: transport, distributed-
  channel cache, and wash;
* cells past the cache cell — ``[consume − t_c, consume + wash)``: they
  are only traversed when the plug finally moves into the destination.

Committed paths update cell weights to their residue's wash time,
steering later tasks onto channels that are cheap to reuse (increasing
path sharing, exactly as the paper argues).

A defensive postponement fallback exists for saturated layouts: when no
admissible plan exists, the task slides forward in 1-second steps until
one does.  With adequately sized grids the fallback rarely fires for the
conflict-aware router; it is the *primary* correction mechanism of the
baseline router in :mod:`repro.route.baseline_router`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RoutingError
from repro.obs.instrument import Instrumentation
from repro.place.grid import Cell
from repro.place.placement import Placement
from repro.route.astar import find_path
from repro.route.grid_graph import DEFAULT_INITIAL_WEIGHT, RoutingGrid
from repro.route.paths import RoutedPath
from repro.route.timeslots import TimeSlot
from repro.schedule.tasks import TransportTask
from repro.units import Millimetres, Seconds

__all__ = [
    "ROUTE_ENGINES",
    "DEFAULT_ROUTE_ENGINE",
    "RoutingResult",
    "route_tasks",
    "plan_path_slots",
]

#: Step and budget for the defensive postponement fallback.
_POSTPONE_STEP: Seconds = 1.0
_POSTPONE_LIMIT: int = 1000
#: Consult the flat2 postponement fast-forward only every this many
#: crawl steps — deep crawls amortise its cost, shallow ones skip it.
_ADVANCE_STRIDE: int = 32
#: Compact the flat2 interval buffers only every this many tasks.
_RETIRE_STRIDE: int = 8

#: Routing engines: ``"flat"`` (integer-indexed arrays, see
#: :mod:`repro.route.flat`), ``"flat2"`` (the vectorized kernels of
#: :mod:`repro.route.flat2` — numpy admissibility masks, search arena,
#: postponement fast-forward), and ``"reference"`` (the Cell/dict
#: oracle).  All produce byte-identical paths, slot plans, and metrics;
#: the choice only affects runtime.
ROUTE_ENGINES = ("flat", "flat2", "reference")
DEFAULT_ROUTE_ENGINE = "flat"


def _make_engine(placement: Placement, initial_weight: float, engine: str):
    """Build the (grid, path finder) pair for *engine*.

    The flat engines are imported lazily so reference-engine runs never
    pay for them (and the optional numpy import they may perform).
    """
    if engine == "flat":
        from repro.route.flat import FlatRoutingState, find_path_flat

        return FlatRoutingState(placement, initial_weight), find_path_flat
    if engine == "flat2":
        from repro.route.flat2 import Flat2RoutingState, find_path_flat2

        return Flat2RoutingState(placement, initial_weight), find_path_flat2
    if engine == "reference":
        return RoutingGrid(placement, initial_weight), find_path
    raise RoutingError(
        f"unknown route engine {engine!r}; expected one of {ROUTE_ENGINES}"
    )


def _finalise_grid(result: RoutingResult, grid) -> None:
    """Install the final grid on *result*, converting flat state.

    The flat engine's routing-time state is replayed into a genuine
    :class:`RoutingGrid` so every downstream consumer sees exactly the
    object a reference-engine run would have produced.
    """
    result.grid = (
        grid.to_routing_grid() if hasattr(grid, "to_routing_grid") else grid
    )


@dataclass
class RoutingResult:
    """All routed paths plus the final routing-grid state."""

    placement: Placement
    paths: list[RoutedPath] = field(default_factory=list)
    grid: RoutingGrid | None = None

    def path_for(self, task_id: str) -> RoutedPath:
        for path in self.paths:
            if path.task.task_id == task_id:
                return path
        raise RoutingError(f"no routed path for task {task_id!r}", task_id=task_id)

    @property
    def total_length_cells(self) -> int:
        """Distinct channel cells used by any task — the physical channel
        network's footprint.  Shared segments count once, which is what
        makes path sharing profitable (Table I's channel-length metric)."""
        assert self.grid is not None
        return len(self.grid.used_cells())

    def total_length_mm(self) -> Millimetres:
        assert self.grid is not None
        return self.grid.grid.length_mm(self.total_length_cells)

    def postponements(self) -> dict[tuple[str, str], Seconds]:
        """Per-edge extra delays (empty for a conflict-free routing)."""
        return {
            (p.task.producer, p.task.consumer): p.postponement
            for p in self.paths
            if p.postponement > 0
        }

    @property
    def total_postponement(self) -> Seconds:
        return sum(p.postponement for p in self.paths)


def _transit_slot(task: TransportTask, delay: Seconds) -> TimeSlot:
    """Transit occupation of *task*, shifted by *delay*."""
    start, end = task.transit_occupation
    return TimeSlot(start + delay, end + delay)


def _cache_slot(task: TransportTask, delay: Seconds) -> TimeSlot:
    """Full (cache-cell) occupation of *task*, shifted by *delay*."""
    start, end = task.occupation
    return TimeSlot(start + delay, end + delay)


def plan_path_slots(
    grid: RoutingGrid,
    cells: tuple[Cell, ...],
    task: TransportTask,
    delay: Seconds,
    avoid_for_cache: set[Cell] | None = None,
) -> list[TimeSlot] | None:
    """Assign each path cell its occupation slot (see module docstring).

    The cache cell is chosen as late (destination-most) as possible, but
    cells in *avoid_for_cache* — typically the component port cells,
    which later tasks must cross — are only used as a last resort: a
    plug parked on a port would block every subsequent arrival at that
    component for its whole cache duration.  Returns ``None`` when no
    cell of the path can host the cache plug or some cell is otherwise
    occupied.
    """
    transit = _transit_slot(task, delay)
    cache = _cache_slot(task, delay)
    travel = task.arrive - task.depart
    tail = TimeSlot(
        max(task.depart + delay, task.consume + delay - travel),
        cache.end,
    )
    avoid = avoid_for_cache or set()
    candidate_order = [
        index
        for index in range(len(cells) - 1, -1, -1)
        if cells[index] not in avoid
    ] + [
        index
        for index in range(len(cells) - 1, -1, -1)
        if cells[index] in avoid
    ]
    for index in candidate_order:
        if not grid.is_free(cells[index], cache):
            continue
        slots: list[TimeSlot] = []
        feasible = True
        for position, cell in enumerate(cells):
            if position < index:
                slot = transit
            elif position == index:
                slot = cache
            else:
                slot = tail
            if position != index and not grid.is_free(cell, slot):
                feasible = False
                break
            slots.append(slot)
        if feasible:
            return slots
    return None


def _route_self_loop(
    grid: RoutingGrid, ports: list[Cell], slot: TimeSlot
) -> tuple[Cell, ...] | None:
    """Path for a task whose source and destination coincide (an evicted
    fluid cached beside, and returning to, its own component): occupy one
    nearby channel cell for the cache duration.

    Port cells themselves are used only as a last resort — a plug parked
    on a port blocks every later arrival at the component — so free
    non-port neighbours of the ports are preferred.
    """
    port_set = set(ports)
    neighbourhood: list[Cell] = []
    seen: set[Cell] = set()
    for port in ports:
        for cell in port.neighbours():
            if cell not in seen and cell not in port_set and grid.is_routable(cell):
                seen.add(cell)
                neighbourhood.append(cell)
    for candidates in (neighbourhood, ports):
        free = [cell for cell in candidates if grid.is_free(cell, slot)]
        if free:
            best = min(free, key=lambda c: (grid.weight(c), c.x, c.y))
            return (best,)
    return None


def route_tasks(
    placement: Placement,
    tasks: list[TransportTask],
    initial_weight: float = DEFAULT_INITIAL_WEIGHT,
    instrumentation: Instrumentation | None = None,
    engine: str = DEFAULT_ROUTE_ENGINE,
) -> RoutingResult:
    """Route *tasks* (Algorithm 2, lines 9–18).

    Tasks are processed in non-decreasing start time (the caller's list
    order is re-sorted defensively).  Raises :class:`RoutingError` when
    even the postponement fallback cannot realise a task.

    *engine* picks the routing core (``"flat"`` or ``"reference"``,
    see :data:`ROUTE_ENGINES`); the returned result is byte-identical
    either way.

    *instrumentation* receives per-task ``route.task`` events plus the
    ``route.tasks_routed`` / ``route.self_loops`` /
    ``route.conflict_retries`` / ``route.postponements`` counters (and
    the A* search statistics via the engine's path finder).
    """
    grid, finder = _make_engine(placement, initial_weight, engine)
    # Engines exposing advance_delay (flat2) can prove a span of
    # postponement retries futile — the occupancy flags the failing
    # attempt evaluated are unchanged across it — and let the crawl
    # jump.  The retry counter is bumped by the skipped step count, so
    # counter totals match the plain crawl exactly.
    advance = getattr(grid, "advance_delay", None)
    result = RoutingResult(placement=placement, grid=None)
    ordered = sorted(tasks, key=lambda t: (t.depart, t.task_id))
    # Engines exposing retire_intervals (flat2) can drop committed
    # intervals that end before every conflict window any remaining
    # task can ever query — the suffix-minimum of the transit starts
    # bounds those windows from below (delays only push them later).
    # Masks, and therefore paths, are identical with or without this.
    retire = getattr(grid, "retire_intervals", None)
    retire_bounds: list[float] = []
    if retire is not None:
        low = float("inf")
        for task in reversed(ordered):
            low = min(low, task.transit_occupation[0])
            retire_bounds.append(low)
        retire_bounds.reverse()
    # Ports are pure geometry; compute them once per component instead
    # of once per task endpoint.
    port_cache = {
        cid: placement.ports(cid) for cid in placement.components()
    }
    all_ports = {cell for ports in port_cache.values() for cell in ports}
    for task_index, task in enumerate(ordered):
        if retire is not None and task_index % _RETIRE_STRIDE == 0:
            # Any valid bound keeps masks identical; compacting every
            # few tasks captures nearly all of the win at a fraction of
            # the compaction cost.
            retire(retire_bounds[task_index])
        sources = port_cache[task.src_component]
        targets = port_cache[task.dst_component]
        delay = 0.0
        cells: tuple[Cell, ...] | None = None
        slots: list[TimeSlot] | None = None
        step_index = 0
        while step_index < _POSTPONE_LIMIT:
            delay = step_index * _POSTPONE_STEP
            if task.src_component == task.dst_component:
                cells = _route_self_loop(grid, sources, _cache_slot(task, delay))
                slots = [_cache_slot(task, delay)] if cells else None
            else:
                cells = finder(
                    grid,
                    sources,
                    targets,
                    _transit_slot(task, delay),
                    instrumentation=instrumentation,
                )
                slots = (
                    plan_path_slots(
                        grid, cells, task, delay, avoid_for_cache=all_ports
                    )
                    if cells is not None
                    else None
                )
            if slots is not None:
                break
            skip = 1
            if (
                advance is not None
                and step_index
                and step_index % _ADVANCE_STRIDE == 0
            ):
                # Consult the fast-forward only once the crawl is deep:
                # on dense occupancies some flag flips almost every step
                # (the hint is 1) and shallow crawls would pay its cost
                # for nothing, while a crawl heading for the postponement
                # budget gets rescued every stride.
                hint = advance(
                    task, delay, horizon=_POSTPONE_LIMIT - step_index,
                    instrumentation=instrumentation,
                )
                if hint is not None and hint > 1:
                    skip = min(hint, _POSTPONE_LIMIT - step_index)
            step_index += skip
            if instrumentation is not None:
                instrumentation.count("route.conflict_retries", skip)
        if cells is None or slots is None:
            raise RoutingError(
                f"task {task.task_id} ({task.src_component} -> "
                f"{task.dst_component}) could not be routed within the "
                f"postponement budget",
                task_id=task.task_id,
            )
        grid.commit_path(cells, task.task_id, task.fluid, slots, task.wash_time)
        result.paths.append(
            RoutedPath(
                task=task,
                cells=cells,
                slot=_cache_slot(task, delay),
                postponement=delay,
            )
        )
        if instrumentation is not None:
            instrumentation.count("route.tasks_routed")
            if task.src_component == task.dst_component:
                instrumentation.count("route.self_loops")
            if delay > 0:
                # The 1-second-step fallback fired: record it with the
                # slide distance so perf artifacts can show when the
                # fallback — not A* — is eating routing time.
                instrumentation.count("route.postponements")
                instrumentation.event(
                    "route.postponement", task_id=task.task_id, slide=delay
                )
            instrumentation.event(
                "route.task",
                task_id=task.task_id,
                cells=len(cells),
                postponement=delay,
            )
    _finalise_grid(result, grid)
    return result

"""Vectorized flat routing engine (the ``flat2`` route engine).

Third-generation kernel behind the route-engine seam: the same Eq. 5
conflict-aware A* as :mod:`repro.route.flat` — identical paths, slot
plans, and postponements by construction — with the dominant costs
pushed into numpy:

* **Admissibility masks** — instead of a per-neighbour interval-index
  probe, each search builds one byte mask of inadmissible cells
  (blocked ∪ slot-conflicting): two vectorized comparisons over
  preallocated interval buffers (appended on commit, compacted by
  :meth:`Flat2RoutingState.retire_intervals` once an interval can
  never conflict again) flag the conflicting intervals, a scatter maps
  them onto cells, and the expansion loop is then a single byte load
  per neighbour.  The mask evaluates exactly the
  :meth:`~repro.route.flat.FlatOccupancy.conflicts` conditions
  (interval length, start, end against ``EPSILON``), element-wise.
* **Unreachability fast-reject** — the big one.  On saturated grids
  most conflict-aware searches *fail* (the postponement crawl probes
  the same congested region again and again), and a failing A* must
  exhaust its entire reachable region before giving up.  But failure is
  decidable without the heap or the cost arithmetic: A* can only
  traverse admissible cells, so the search provably returns ``None``
  unless an admissible target is 4-connected to an admissible source.
  Port-level checks (no admissible source, or no admissible target)
  answer most rejects for free; the rest run an early-exit depth-first
  sweep over the mask, which stops at the first admissible target
  reached and, when there is none, only visits the sources'
  congestion-boxed free component.  Only searches that *can* succeed
  pay for the exact A* — which then returns the byte-identical path.
  Fast-rejected searches report ``expanded=0`` in the A* statistics;
  every other observable (paths, slots, postponements) is untouched.
* **Search arena** — the closed/cost/parent arrays are preallocated
  once per state and reset by slice assignment, instead of being
  rebuilt per search — and only once a search has survived the
  fast-reject.  Port index tuples and their target byte masks are
  memoized per port list (the routers reuse one list per component).
* **Cached distance-transform heuristic** — via
  :meth:`FlatRoutingState.distance_map`, shared with the flat engine:
  computed once per (grid, target-set) and reused across searches, with
  hits surfaced on the ``astar.heuristic_cache_hits`` counter.
* **Postponement fast-forward** — on sparse occupancies the routers'
  1-second postponement crawl re-attempts a failing task against an
  *unchanged* occupancy, sliding only the task's own fixed-shape
  windows.  Each stored interval's conflict flag conjoins two float
  comparisons, each a monotone step function of the delay (the window
  start/end grow monotonically with the delay, IEEE float addition of
  a fixed addend preserves order, so each comparison flips at most
  once), and "some comparison differs from its state at the current
  delay" is therefore a monotone predicate —
  :meth:`Flat2RoutingState.advance_delay` binary-searches the first
  integer step at which that comparison signature changes and tells
  the router to skip straight to it.  Delays in between provably
  produce the identical flag state, hence the identical search and
  slot-plan outcome, so path identity (and the
  ``route.conflict_retries`` totals, which the router bumps by the
  skipped step count) is preserved exactly.  On dense occupancies some
  flag flips almost every step; a one-probe early exit keeps the
  mechanism near-free there.

Without numpy the module still works: the finder delegates to
:func:`~repro.route.flat.find_path_flat` and ``advance_delay`` returns
``None`` (the routers fall back to the plain 1-second crawl), so paths
are identical with or without numpy — only the speed changes.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Iterable

try:  # the vectorized kernels want numpy; the engine degrades without it
    import numpy as _np
except ImportError:  # pragma: no cover - the test image ships numpy
    _np = None

from repro.assay.fluids import Fluid
from repro.obs.instrument import Instrumentation
from repro.place.grid import Cell
from repro.place.placement import Placement
from repro.route.astar import _flush_search_stats
from repro.route.flat import FlatRoutingState, find_path_flat
from repro.route.grid_graph import DEFAULT_INITIAL_WEIGHT
from repro.route.timeslots import TimeSlot
from repro.schedule.tasks import TransportTask
from repro.units import EPSILON, Seconds

__all__ = ["Flat2RoutingState", "find_path_flat2"]

#: Default fast-forward horizon, matching the routers' postponement
#: budget (:data:`repro.route.router._POSTPONE_LIMIT`).
_DEFAULT_HORIZON = 1000


def _task_windows(
    task: TransportTask, delay: Seconds
) -> tuple[tuple[float, float], ...]:
    """The three occupation windows an attempt at *delay* checks.

    Mirrors :func:`repro.route.router._transit_slot`,
    :func:`~repro.route.router._cache_slot`, and the tail slot built in
    :func:`~repro.route.router.plan_path_slots` — float for float, so
    the fast-forward's flag evaluation sees exactly the windows the
    real attempt would.
    """
    ts, te = task.transit_occupation
    os_, oe = task.occupation
    travel = task.arrive - task.depart
    tail_start = max(task.depart + delay, task.consume + delay - travel)
    return (
        (ts + delay, te + delay),
        (os_ + delay, oe + delay),
        (tail_start, oe + delay),
    )


class Flat2RoutingState(FlatRoutingState):
    """Routing state of the ``flat2`` engine.

    Extends :class:`~repro.route.flat.FlatRoutingState` with a flat
    interval log (numpy mirrors of every committed occupation slot), a
    preallocated search arena, and the postponement fast-forward.  The
    Cell-based query/commit surface — and therefore the slot planning,
    self-loop routing, and :meth:`to_routing_grid` replay — is inherited
    unchanged, which is what keeps the engine path-identical.
    """

    def __init__(
        self,
        placement: Placement,
        initial_weight: float = DEFAULT_INITIAL_WEIGHT,
    ) -> None:
        super().__init__(placement, initial_weight)
        n = self.width * self.height
        #: Flat log of every committed occupation interval, appended in
        #: commit order; the numpy mirrors below are rebuilt lazily per
        #: epoch (one epoch per commit).
        self._int_cells: list[int] = []
        self._int_starts: list[float] = []
        self._int_ends: list[float] = []
        self._epoch = 0
        self._arrays_epoch = -1
        self._arrays: tuple | None = None
        #: Immutable obstacle mask as bytes — the admissibility mask of
        #: every slot-free search, and the base layer of every other.
        self._blocked_bytes = bytes(self.blocked)
        if _np is not None:
            self._np_blocked = _np.frombuffer(
                self._blocked_bytes, dtype=_np.uint8
            )
            self._blocked_bool = self._np_blocked != 0
        # Interval buffers for the vectorized mask build (see
        # _admissible_status): preallocated, grown by doubling, appended
        # by commit_path.  Zero-length slots are dropped at append time
        # (they conflict with nothing), and ends are stored with the
        # EPSILON already subtracted — the mask build is then three
        # elementwise ops over warm buffers with no per-query
        # list-to-array conversion.
        self._buf_count = 0  # stays 0 without numpy: retire is a no-op
        if _np is not None:
            self._buf_capacity = 1024
            self._buf_cells = _np.empty(self._buf_capacity, dtype=_np.intp)
            self._buf_starts = _np.empty(self._buf_capacity, dtype=_np.float64)
            self._buf_ends_eps = _np.empty(
                self._buf_capacity, dtype=_np.float64
            )
            self._flags_a = _np.empty(self._buf_capacity, dtype=bool)
            self._flags_b = _np.empty(self._buf_capacity, dtype=bool)
            self._conflict_scratch = _np.empty(n, dtype=bool)
            self._mask_scratch = _np.empty(n, dtype=bool)
        self._mask_memo: tuple[float, float, int, bytes] | None = None
        #: Bounds- and obstacle-filtered port indices, keyed by the
        #: identity of the port list the router passes in.  The routers
        #: compute each component's ports once and reuse the same list
        #: for every task touching the component, so identity is a
        #: stable key for the duration of a routing run; the cached
        #: entry keeps a reference to the list so the id cannot be
        #: recycled while the cache lives.
        self._port_filter_cache: dict[int, tuple[object, tuple[int, ...]]] = {}
        #: Byte masks with 1 at each port index, keyed by the filtered
        #: index tuple — the reachability fast-reject's target test and
        #: the A* goal test both read them (read-only, so sharing one
        #: bytearray per port set is safe).
        self._port_bits_cache: dict[tuple[int, ...], bytearray] = {}
        # Search arena: reset by slice assignment per search instead of
        # reallocating.  The templates hold the reset values.
        inf = float("inf")
        self._inf = inf
        self._inf_list: list[float] = [inf] * n
        self._neg1_list: list[int] = [-1] * n
        self._zero_weights: list[float] = [0.0] * n
        self._acc: list[float] = [inf] * n
        self._parent: list[int] = [-1] * n
        self._status = bytearray(n)

    # ------------------------------------------------------------------
    # Interval log
    # ------------------------------------------------------------------
    def commit_path(
        self,
        cells: tuple[Cell, ...],
        task_id: str,
        fluid: Fluid,
        slots: list[TimeSlot],
        wash_time: Seconds,
    ) -> None:
        super().commit_path(cells, task_id, fluid, slots, wash_time)
        width = self.width
        int_cells = self._int_cells
        int_starts = self._int_starts
        int_ends = self._int_ends
        buffered = _np is not None
        for cell, slot in zip(cells, slots):
            index = cell.y * width + cell.x
            start = slot.start
            end = slot.end
            int_cells.append(index)
            int_starts.append(start)
            int_ends.append(end)
            if not buffered or end - start <= EPSILON:
                continue  # zero-length slots conflict with nothing
            count = self._buf_count
            if count == self._buf_capacity:
                self._buf_capacity *= 2
                for name in (
                    "_buf_cells", "_buf_starts", "_buf_ends_eps",
                    "_flags_a", "_flags_b",
                ):
                    grown = _np.empty(
                        self._buf_capacity, dtype=getattr(self, name).dtype
                    )
                    grown[:count] = getattr(self, name)
                    setattr(self, name, grown)
            self._buf_cells[count] = index
            self._buf_starts[count] = start
            self._buf_ends_eps[count] = end - EPSILON
            self._buf_count = count + 1
        self._epoch += 1

    def retire_intervals(self, bound: Seconds) -> None:
        """Drop buffered intervals that can never conflict again.

        *bound* must be a lower bound on the start of every future
        conflict window this state will be asked about.  The routers
        process tasks in depart order and query only transit windows,
        whose starts never fall below the suffix-minimum of the
        remaining tasks' transit starts — so an interval whose
        (epsilon-adjusted) end is at or before *bound* fails the
        ``end > window_start`` conflict condition of every future query
        and can be dropped from the mask buffers outright.  Masks are
        bit-identical with or without retirement; only the number of
        intervals each vectorized pass touches shrinks (~3x on
        Scale200, where most of the log is history by mid-run).

        The full interval log (``_int_cells`` et al.) is untouched —
        :meth:`advance_delay` keeps evaluating exact flags over
        everything ever committed.
        """
        count = self._buf_count
        if _np is None or not count:
            return
        keep = self._buf_ends_eps[:count] > bound
        kept = int(keep.sum())
        if kept == count:
            return
        self._buf_cells[:kept] = self._buf_cells[:count][keep]
        self._buf_starts[:kept] = self._buf_starts[:count][keep]
        self._buf_ends_eps[:kept] = self._buf_ends_eps[:count][keep]
        self._buf_count = kept

    def _interval_arrays(self):
        """Numpy mirrors of the interval log for the current epoch.

        Returns ``(cells, starts, ends_eps, len_ok, false_flags)`` where
        ``ends_eps`` is ``ends - EPSILON`` (the float every scalar
        conflict check subtracts) and ``len_ok`` masks intervals longer
        than ``EPSILON`` — zero-length slots conflict with nothing.
        """
        if self._arrays_epoch != self._epoch:
            cells = _np.array(self._int_cells, dtype=_np.int64)
            starts = _np.array(self._int_starts, dtype=_np.float64)
            ends = _np.array(self._int_ends, dtype=_np.float64)
            self._arrays = (
                cells,
                starts,
                ends - EPSILON,
                (ends - starts) > EPSILON,
                _np.zeros(len(cells), dtype=bool),
            )
            self._arrays_epoch = self._epoch
        return self._arrays

    # ------------------------------------------------------------------
    # Vectorized admissibility
    # ------------------------------------------------------------------
    def _admissible_status(self, cs: float, ce: float, check_slot: bool) -> bytes:
        """Bytes where nonzero = inadmissible (blocked or conflicting).

        Element-wise identical to ``blocked[i] or occupancy.conflicts(i,
        cs, ce)``: an interval conflicts with ``[cs, ce)`` iff it is
        longer than ``EPSILON``, starts before ``ce - EPSILON``, and
        ends after ``cs + EPSILON`` — the exact float comparisons of
        :meth:`~repro.route.flat.FlatOccupancy.conflicts`.

        Every query is one vectorized full pass over the preallocated
        interval buffers (appended by :meth:`commit_path`): two
        elementwise comparisons produce the conflicting-interval flags,
        a fancy-index assignment scatters them onto the cells, and an
        ``or`` with the obstacle mask yields the admissibility bytes.
        On realistic logs (a few thousand intervals) this costs single-
        digit microseconds — flatly, with no window-locality assumption
        for a crawl to break.  A one-entry memo keyed by
        ``(window, epoch)`` catches back-to-back identical queries.
        """
        count = self._buf_count
        if not check_slot or not count:
            return self._blocked_bytes
        memo = self._mask_memo
        if (
            memo is not None
            and memo[0] == cs and memo[1] == ce and memo[2] == self._epoch
        ):
            return memo[3]
        flags = self._flags_a[:count]
        other = self._flags_b[:count]
        _np.less(self._buf_starts[:count], ce - EPSILON, out=flags)
        _np.greater(self._buf_ends_eps[:count], cs, out=other)
        _np.logical_and(flags, other, out=flags)
        conflict = self._conflict_scratch
        conflict[:] = False
        conflict[self._buf_cells[:count][flags]] = True
        mask = _np.logical_or(conflict, self._blocked_bool, out=self._mask_scratch)
        result = mask.tobytes()
        self._mask_memo = (cs, ce, self._epoch, result)
        return result

    # ------------------------------------------------------------------
    # Postponement fast-forward
    # ------------------------------------------------------------------
    def _window_flags(self, task: TransportTask, delay: Seconds) -> list:
        """Per-interval conflict flags of every window at *delay*."""
        return [
            opened & closing
            for opened, closing in self._window_signature(task, delay)
        ]

    def _window_signature(self, task: TransportTask, delay: Seconds) -> list:
        """Per-window ``(opened, closing)`` comparison vectors at *delay*.

        ``opened[i]`` is the interval-starts-before-window-end
        comparison (monotone False→True in the delay) and ``closing[i]``
        the interval-ends-after-window-start one (monotone True→False);
        a conflict flag is their conjunction.  The signature determines
        the flag state, and — unlike the flags themselves, which can go
        off→on→off as a window slides past an interval — every
        component flips at most once, which is what makes "the
        signature differs from its base state" binary-searchable.
        """
        cells, starts, ends_eps, len_ok, false_flags = self._interval_arrays()
        signature = []
        for ws, we in _task_windows(task, delay):
            if we - ws <= EPSILON:
                # A window's length is delay-invariant, so a degenerate
                # window conflicts with nothing at every delay.
                signature.append((false_flags, false_flags))
            else:
                signature.append((
                    len_ok & (starts < we - EPSILON),
                    len_ok & (ends_eps > ws),
                ))
        return signature

    def advance_delay(
        self,
        task: TransportTask,
        delay: Seconds,
        horizon: int = _DEFAULT_HORIZON,
        instrumentation: Instrumentation | None = None,
    ) -> int | None:
        """Steps (of 1 s) until the occupancy state seen by *task* can
        change, given that the attempt at *delay* just failed.

        Every retry of the postponement crawl evaluates the same
        committed intervals against the task's windows slid by the
        delay; an attempt's outcome is a pure function of the
        per-interval conflict flags.  A flag itself is *not* monotone
        (a window sliding past an interval takes it off→on→off), but
        each of the two float comparisons it conjoins flips at most
        once — so the binary search runs over that comparison
        *signature* (see :meth:`_window_signature`), with exact
        (vectorized) evaluation at each probe.  Signature-identical
        delays have identical flags, so skipped delays provably
        reproduce the failing attempt and the caller may jump straight
        to the returned step count (at worst a conservative stop where
        a comparison flipped without changing any flag).

        Returns a value in ``[1, horizon]`` — *horizon* itself when no
        flag changes within the budget (the remaining retries are all
        provably futile) — or ``None`` when numpy is unavailable or the
        horizon is too small to skip anything.
        """
        if _np is None or horizon <= 1:
            return None
        if not self._int_cells:
            # Empty occupancy: the failure cannot involve slot
            # conflicts, so no delay can fix it.
            return horizon
        started = perf_counter()
        array_equal = _np.array_equal
        base = self._window_signature(task, delay)

        def differs(k: int) -> bool:
            probe = self._window_signature(task, delay + k * 1.0)
            return any(
                not (array_equal(a[0], b[0]) and array_equal(a[1], b[1]))
                for a, b in zip(base, probe)
            )

        if differs(1):
            # Dense-occupancy common case: some interval boundary is
            # crossed on the very next step.  One probe, no search.
            steps = 1
        elif not differs(horizon):
            steps = horizon
        else:
            lo, hi = 2, horizon
            while lo < hi:
                mid = (lo + hi) // 2
                if differs(mid):
                    hi = mid
                else:
                    lo = mid + 1
            steps = lo
        if instrumentation is not None:
            instrumentation.observe(
                "route.advance_seconds", perf_counter() - started
            )
        return steps


def _port_indices(
    grid: Flat2RoutingState,
    ports: Iterable[Cell],
    width: int,
    height: int,
    blocked,
) -> tuple[int, ...]:
    """Bounds- and obstacle-filtered flat indices of a port set.

    Pure geometry (the slot mask is applied by the caller), so the
    result is memoized per port-list identity — the routers pass the
    same per-component list for every task, and the cache entry pins
    the list alive, keeping the id stable.  Non-list iterables are
    filtered directly (they may be single-shot generators).
    """
    if not isinstance(ports, (list, tuple)):
        return tuple(
            y * width + x
            for x, y in ports
            if 0 <= x < width and 0 <= y < height
            and not blocked[y * width + x]
        )
    cache = grid._port_filter_cache
    entry = cache.get(id(ports))
    if entry is None or entry[0] is not ports:
        indices = tuple(
            y * width + x
            for x, y in ports
            if 0 <= x < width and 0 <= y < height
            and not blocked[y * width + x]
        )
        cache[id(ports)] = (ports, indices)
        return indices
    return entry[1]


def find_path_flat2(
    grid: Flat2RoutingState,
    sources: Iterable[Cell],
    targets: Iterable[Cell],
    slot: TimeSlot,
    goal_slot: TimeSlot | None = None,
    instrumentation: Instrumentation | None = None,
    *,
    use_weights: bool = True,
    use_slots: bool = True,
) -> tuple[Cell, ...] | None:
    """Vectorized twin of :func:`~repro.route.flat.find_path_flat`.

    Same search, same cost arithmetic, same heap order, same counters —
    the admissibility test is precomputed as one byte mask and the
    per-search arrays come from the state's arena.  Falls back to the
    flat finder when numpy is unavailable.
    """
    if _np is None:
        return find_path_flat(
            grid, sources, targets, slot, goal_slot, instrumentation,
            use_weights=use_weights, use_slots=use_slots,
        )
    started = perf_counter()
    if goal_slot is None:
        goal_slot = slot
    width = grid.width
    height = grid.height
    blocked = grid.blocked
    conflicts = grid.occupancy.conflicts
    cs = slot.start
    ce = slot.end
    check_slot = use_slots and (ce - cs) > EPSILON
    gs = goal_slot.start
    ge = goal_slot.end
    check_goal = use_slots and (ge - gs) > EPSILON

    mask = grid._admissible_status(cs, ce, check_slot)

    target_indices = _port_indices(grid, targets, width, height, blocked)
    source_indices = [i for i in _port_indices(
        grid, sources, width, height, blocked
    ) if not mask[i]]
    free_target = any(not mask[i] for i in target_indices)
    # A* seeds only admissible sources and a goal is accepted only when
    # popped open, so no admissible source — or no admissible target at
    # all — is an immediate provable failure (the second test is what
    # saves the reachability sweep on the saturated-ports common case).
    if not target_indices or not source_indices or not free_target:
        _flush_search_stats(
            instrumentation, expanded=0, reopened=0, found=False,
            elapsed=perf_counter() - started,
        )
        return None

    target_mask = grid._port_bits_cache.get(target_indices)
    if target_mask is None:
        target_mask = bytearray(width * height)
        for index in target_indices:
            target_mask[index] = 1
        grid._port_bits_cache[target_indices] = target_mask

    neighbour_table = grid.neighbours
    if check_slot:
        # Unreachability fast-reject — the big saving on saturated
        # grids.  A* can only traverse admissible cells, so the search
        # provably fails unless an admissible target is 4-connected to
        # an admissible source.  An early-exit depth-first sweep over
        # the mask answers that: successful searches stop at the first
        # admissible target reached, and failing ones only visit the
        # sources' (congestion-boxed, hence small) free component —
        # which is why this beats a full connected-component labelling.
        # Sound in one direction only — reachable searches still run
        # the exact A* below (the goal-slot gate can fail them) — so
        # the returned paths are unchanged.
        visited = bytearray(mask)
        reached = False
        stack: list[int] = []
        for index in source_indices:
            if target_mask[index]:
                reached = True
                break
            visited[index] = 1
            stack.append(index)
        while stack and not reached:
            index = stack.pop()
            for ni in neighbour_table[index]:
                if not visited[ni]:
                    if target_mask[ni]:
                        reached = True
                        break
                    visited[ni] = 1
                    stack.append(ni)
        if not reached:
            _flush_search_stats(
                instrumentation, expanded=0, reopened=0, found=False,
                elapsed=perf_counter() - started,
            )
            return None

    status = grid._status
    status[:] = mask
    dist = grid.distance_map(target_indices, instrumentation)
    weights = grid.weights if use_weights else grid._zero_weights
    ties = grid.ties

    inf = grid._inf
    accumulated = grid._acc
    accumulated[:] = grid._inf_list
    parent = grid._parent
    parent[:] = grid._neg1_list
    open_heap: list[tuple[float, int, int]] = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    expanded = 0
    reopened = 0
    for index in source_indices:
        cost = 1.0 + weights[index]
        if cost < accumulated[index]:
            accumulated[index] = cost
            parent[index] = -1
            heappush(open_heap, (cost + dist[index], ties[index], index))

    path: tuple[Cell, ...] | None = None
    while open_heap:
        _f, _tie, index = heappop(open_heap)
        if status[index]:
            continue
        status[index] = 1  # close
        expanded += 1
        if target_mask[index] and not (
            check_goal and conflicts(index, gs, ge)
        ):
            chain = [index]
            previous = parent[index]
            while previous != -1:
                chain.append(previous)
                previous = parent[previous]
            chain.reverse()
            path = tuple(Cell(i % width, i // width) for i in chain)
            break
        base = accumulated[index] + 1.0
        for ni in neighbour_table[index]:
            # status folds blocked, slot conflicts, and closure into a
            # single byte; a consistent heuristic means a closed
            # neighbour can never improve.
            if status[ni]:
                continue
            cost = base + weights[ni]
            old = accumulated[ni]
            if cost < old:
                if old != inf:
                    reopened += 1
                accumulated[ni] = cost
                parent[ni] = index
                heappush(open_heap, (cost + dist[ni], ties[ni], ni))
    _flush_search_stats(
        instrumentation, expanded=expanded, reopened=reopened,
        found=path is not None, elapsed=perf_counter() - started,
    )
    return path

"""The routing plane: per-cell weights, occupation slots, and residues.

Algorithm 2 (lines 9–10) initialises every grid cell with a constant
weight ``w_e`` and an empty time-slot set.  As tasks are routed, each
cell along a path has its weight replaced by the wash time of the
residue the task leaves (line 16) and the task's occupation slot
inserted (line 17).  The weight steers later A* searches towards cells
that are cheap to reuse; the slots enforce conflict freedom.

:class:`RoutingGrid` also records the full *usage history* per cell,
which the metrics stage replays to compute the total channel wash time
of Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.assay.fluids import Fluid
from repro.errors import RoutingError
from repro.place.grid import Cell, ChipGrid
from repro.place.placement import Placement
from repro.route.timeslots import TimeSlot, TimeSlotSet
from repro.units import Seconds

__all__ = ["CellUsage", "RoutingGrid", "DEFAULT_INITIAL_WEIGHT"]

#: Paper default for the initial cell weight ``w_e``.
DEFAULT_INITIAL_WEIGHT: float = 10.0


@dataclass(frozen=True)
class CellUsage:
    """One task's use of one cell (for wash accounting)."""

    task_id: str
    fluid: Fluid
    slot: TimeSlot


class RoutingGrid:
    """Mutable routing state over a placed chip."""

    def __init__(
        self,
        placement: Placement,
        initial_weight: float = DEFAULT_INITIAL_WEIGHT,
    ) -> None:
        if initial_weight < 0:
            raise RoutingError(f"initial weight must be >= 0, got {initial_weight}")
        self.placement = placement
        self.grid: ChipGrid = placement.grid
        self.initial_weight = initial_weight
        self._obstacles: set[Cell] = placement.occupied_cells()
        self._weights: dict[Cell, float] = {}
        self._slots: dict[Cell, TimeSlotSet] = {}
        self._usage: dict[Cell, list[CellUsage]] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_routable(self, cell: Cell) -> bool:
        """On-grid and not covered by a component block."""
        return self.grid.contains(cell) and cell not in self._obstacles

    def weight(self, cell: Cell) -> float:
        """Current ``w(i)`` of the cell (Eq. 5's additive term)."""
        return self._weights.get(cell, self.initial_weight)

    def slots(self, cell: Cell) -> TimeSlotSet:
        slot_set = self._slots.get(cell)
        if slot_set is None:
            slot_set = TimeSlotSet()
            self._slots[cell] = slot_set
        return slot_set

    def is_free(self, cell: Cell, slot: TimeSlot) -> bool:
        """Eq. 5 admissibility: routable and no slot overlap."""
        if not self.is_routable(cell):
            return False
        existing = self._slots.get(cell)
        return existing is None or not existing.conflicts_with(slot)

    def used_cells(self) -> set[Cell]:
        """Cells that carry at least one routed task (channel footprint)."""
        return set(self._usage)

    def usage_history(self) -> dict[Cell, list[CellUsage]]:
        """Per-cell usage events, each list in insertion (time) order."""
        return {cell: list(events) for cell, events in self._usage.items()}

    # ------------------------------------------------------------------
    # Mutation (Algorithm 2, lines 15–17)
    # ------------------------------------------------------------------
    def commit_path(
        self,
        cells: tuple[Cell, ...],
        task_id: str,
        fluid: Fluid,
        slots: list[TimeSlot],
        wash_time: Seconds,
    ) -> None:
        """Claim *cells* for a routed task, one occupation slot per cell.

        The per-cell slots come from the router's slot plan (transit /
        cache / tail, see :func:`repro.route.router.plan_path_slots`).
        Every cell's weight becomes the residue's wash time (Algorithm 2,
        line 16).  Raises when any cell is not actually free: the
        admissibility must have been checked during planning, so a
        failure here is a router bug.
        """
        if len(slots) != len(cells):
            raise RoutingError(
                f"task {task_id}: {len(slots)} slots for {len(cells)} cells",
                task_id=task_id,
            )
        for cell, slot in zip(cells, slots):
            if not self.is_free(cell, slot):
                raise RoutingError(
                    f"task {task_id}: cell {cell} is not free for slot "
                    f"[{slot.start}, {slot.end})",
                    task_id=task_id,
                )
        for cell, slot in zip(cells, slots):
            self.slots(cell).add(slot)
            self._weights[cell] = wash_time
            self._usage.setdefault(cell, []).append(
                CellUsage(task_id=task_id, fluid=fluid, slot=slot)
            )

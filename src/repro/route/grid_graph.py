"""The routing plane: per-cell weights, occupation slots, and residues.

Algorithm 2 (lines 9–10) initialises every grid cell with a constant
weight ``w_e`` and an empty time-slot set.  As tasks are routed, each
cell along a path has its weight replaced by the wash time of the
residue the task leaves (line 16) and the task's occupation slot
inserted (line 17).  The weight steers later A* searches towards cells
that are cheap to reuse; the slots enforce conflict freedom.

:class:`RoutingGrid` also records the full *usage history* per cell,
which the metrics stage replays to compute the total channel wash time
of Fig. 9.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.assay.fluids import Fluid
from repro.errors import RoutingError
from repro.place.grid import Cell, ChipGrid
from repro.place.placement import Placement
from repro.route.timeslots import TimeSlot, TimeSlotSet
from repro.units import Seconds

__all__ = ["CellUsage", "RoutingGrid", "DEFAULT_INITIAL_WEIGHT"]

#: Paper default for the initial cell weight ``w_e``.
DEFAULT_INITIAL_WEIGHT: float = 10.0


class CellUsage(NamedTuple):
    """One task's use of one cell (for wash accounting).

    A named tuple rather than a frozen dataclass: usage events are
    created in bulk (one per path cell on every commit and again on
    every flat-engine replay) and tuple construction skips the
    ``object.__setattr__`` per field that frozen dataclasses pay.
    """

    task_id: str
    fluid: Fluid
    slot: TimeSlot


class RoutingGrid:
    """Mutable routing state over a placed chip."""

    def __init__(
        self,
        placement: Placement,
        initial_weight: float = DEFAULT_INITIAL_WEIGHT,
    ) -> None:
        if initial_weight < 0:
            raise RoutingError(f"initial weight must be >= 0, got {initial_weight}")
        self.placement = placement
        self.grid: ChipGrid = placement.grid
        self.initial_weight = initial_weight
        self._obstacles: set[Cell] = placement.occupied_cells()
        self._weights: dict[Cell, float] = {}
        self._slots: dict[Cell, TimeSlotSet] = {}
        self._usage: dict[Cell, list[CellUsage]] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_routable(self, cell: Cell) -> bool:
        """On-grid and not covered by a component block."""
        return self.grid.contains(cell) and cell not in self._obstacles

    def weight(self, cell: Cell) -> float:
        """Current ``w(i)`` of the cell (Eq. 5's additive term)."""
        return self._weights.get(cell, self.initial_weight)

    def slots(self, cell: Cell) -> TimeSlotSet:
        slot_set = self._slots.get(cell)
        if slot_set is None:
            slot_set = TimeSlotSet()
            self._slots[cell] = slot_set
        return slot_set

    def is_free(self, cell: Cell, slot: TimeSlot) -> bool:
        """Eq. 5 admissibility: routable and no slot overlap."""
        if not self.is_routable(cell):
            return False
        existing = self._slots.get(cell)
        return existing is None or not existing.conflicts_with(slot)

    def used_cells(self) -> set[Cell]:
        """Cells that carry at least one routed task (channel footprint)."""
        return set(self._usage)

    def usage_history(self) -> dict[Cell, list[CellUsage]]:
        """Per-cell usage events, each list in insertion (time) order."""
        return {cell: list(events) for cell, events in self._usage.items()}

    # ------------------------------------------------------------------
    # Mutation (Algorithm 2, lines 15–17)
    # ------------------------------------------------------------------
    def commit_path(
        self,
        cells: tuple[Cell, ...],
        task_id: str,
        fluid: Fluid,
        slots: list[TimeSlot],
        wash_time: Seconds,
    ) -> None:
        """Claim *cells* for a routed task, one occupation slot per cell.

        The per-cell slots come from the router's slot plan (transit /
        cache / tail, see :func:`repro.route.router.plan_path_slots`).
        Every cell's weight becomes the residue's wash time (Algorithm 2,
        line 16).  Raises when any cell is not actually free: the
        admissibility must have been checked during planning, so a
        failure here is a router bug.
        """
        if len(slots) != len(cells):
            raise RoutingError(
                f"task {task_id}: {len(slots)} slots for {len(cells)} cells",
                task_id=task_id,
            )
        for cell, slot in zip(cells, slots):
            if not self.is_free(cell, slot):
                raise RoutingError(
                    f"task {task_id}: cell {cell} is not free for slot "
                    f"[{slot.start}, {slot.end})",
                    task_id=task_id,
                )
        for cell, slot in zip(cells, slots):
            self.slots(cell).add(slot)
            self._weights[cell] = wash_time
            self._usage.setdefault(cell, []).append(
                CellUsage(task_id=task_id, fluid=fluid, slot=slot)
            )

    def _replay_log(self, log) -> None:
        """Bulk-apply a flat engine's commit log (already validated).

        Produces the *identical* state repeated :meth:`commit_path`
        calls over *log* would — same weights, same usage lists, same
        slot sets, and the same dict/list orders (every structure is
        first-touched in log order, and per-cell slots are sorted the
        way repeated ``bisect_left`` insertions would have left them:
        ascending start, later insertions first among equal starts) —
        while skipping the per-slot ``is_free`` validation and bisect
        insertion the live commits already performed.  Equivalence with
        the naive replay is pinned by a unit test.
        """
        pending: dict[Cell, list[tuple[Seconds, int, TimeSlot]]] = {}
        sequence = 0
        for cells, task_id, fluid, slots, wash_time in log:
            for cell, slot in zip(cells, slots):
                pending.setdefault(cell, []).append(
                    (slot.start, -sequence, slot)
                )
                sequence += 1
                self._weights[cell] = wash_time
                self._usage.setdefault(cell, []).append(
                    CellUsage(task_id=task_id, fluid=fluid, slot=slot)
                )
        for cell, entries in pending.items():
            entries.sort(key=lambda entry: (entry[0], entry[1]))
            self._slots[cell] = TimeSlotSet._from_disjoint_sorted(
                [entry[2] for entry in entries]
            )

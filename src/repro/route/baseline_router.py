"""Construction-by-correction routing — the baseline's router.

Section V describes BA's physical stage as "generating an initial
solution and then correct[ing] those unsatisfactory component
positions/routing paths sequentially".  The router here mirrors that:

1. **Construction** — every task gets a plain shortest path (uniform
   cell cost, no wash-weight guidance, occupation slots ignored).
2. **Correction** — tasks are revisited in start order; when a task's
   occupation slots overlap already-committed slots on shared cells,
   the path is re-routed around the conflict (still with uniform cost —
   BA never uses the wash-time weights that let the proposed router
   share cheap channels), and when no conflict-free detour exists the
   task is *postponed* until its slots fit.

The postponements are exactly the delays the paper attributes to BA in
Section II-C.2 (e.g. the shared segment in Fig. 4(a) forcing the
``o4→o6`` transport to wait for a 10 s wash).  They are returned per
edge so :func:`repro.schedule.retiming.retime_with_delays` can propagate
them into the baseline's final execution time.
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.obs.instrument import Instrumentation
from repro.place.grid import Cell
from repro.place.placement import Placement
from repro.route.astar import find_path
from repro.route.grid_graph import RoutingGrid
from repro.route.paths import RoutedPath
from repro.route.router import (
    DEFAULT_ROUTE_ENGINE,
    ROUTE_ENGINES,
    RoutingResult,
    _ADVANCE_STRIDE,
    _RETIRE_STRIDE,
    _cache_slot,
    _finalise_grid,
    _transit_slot,
    plan_path_slots,
)
from repro.route.timeslots import TimeSlot
from repro.schedule.tasks import TransportTask

__all__ = ["route_tasks_baseline"]

#: Zero-length slot for geometry-only searches (conflicts with nothing).
_GEOMETRY_PROBE = TimeSlot(0.0, 0.0)


def _shortest_path(
    grid: RoutingGrid,
    sources: list[Cell],
    targets: list[Cell],
    instrumentation: Instrumentation | None = None,
) -> tuple[Cell, ...] | None:
    """Uniform-cost shortest path ignoring slots and weights.

    Implemented by running the shared A* on a throwaway zero-weight grid
    view with an always-empty slot: geometry only.
    """
    probe = TimeSlot(0.0, 0.0)  # zero-length slot conflicts with nothing
    return find_path(
        _ZeroWeightView(grid), sources, targets, probe,
        instrumentation=instrumentation,
    )


class _ZeroWeightView:
    """Read-only adapter hiding weights and slots from the A* search."""

    def __init__(self, grid: RoutingGrid):
        self._grid = grid

    def is_routable(self, cell: Cell) -> bool:
        return self._grid.is_routable(cell)

    def is_free(self, cell: Cell, _slot: TimeSlot) -> bool:
        return self._grid.is_routable(cell)

    def weight(self, _cell: Cell) -> float:
        return 0.0


class _UniformCostView:
    """Adapter keeping occupation checks but hiding wash-time weights.

    Used by BA's correction detours: conflict-aware, but with none of
    the weight guidance that makes the proposed router share
    cheap-to-wash channels."""

    def __init__(self, grid: RoutingGrid):
        self._grid = grid

    def is_routable(self, cell: Cell) -> bool:
        return self._grid.is_routable(cell)

    def is_free(self, cell: Cell, slot: TimeSlot) -> bool:
        return self._grid.is_free(cell, slot)

    def weight(self, _cell: Cell) -> float:
        return 0.0


def route_tasks_baseline(
    placement: Placement,
    tasks: list[TransportTask],
    instrumentation: Instrumentation | None = None,
    engine: str = DEFAULT_ROUTE_ENGINE,
) -> RoutingResult:
    """Route *tasks* with the construction-by-correction strategy.

    *engine* picks the routing core (``"flat"`` or ``"reference"``,
    see :data:`~repro.route.router.ROUTE_ENGINES`); results are
    byte-identical either way.

    *instrumentation* receives ``route.tasks_routed``,
    ``route.conflict_retries`` (postponement steps),
    ``route.postponements`` (tasks the fallback actually delayed, with
    the slide distance), and ``route.reroutes`` (accepted correction
    detours), plus the A* statistics of every search.
    """
    if engine in ("flat", "flat2"):
        if engine == "flat":
            from repro.route.flat import FlatRoutingState, find_path_flat

            grid = FlatRoutingState(placement, initial_weight=0.0)
            flat_finder = find_path_flat
        else:
            from repro.route.flat2 import Flat2RoutingState, find_path_flat2

            grid = Flat2RoutingState(placement, initial_weight=0.0)
            flat_finder = find_path_flat2

        def shortest(sources, targets):
            # Geometry only: weights and occupation slots both hidden,
            # like the reference _ZeroWeightView.
            return flat_finder(
                grid, sources, targets, _GEOMETRY_PROBE,
                instrumentation=instrumentation,
                use_weights=False, use_slots=False,
            )

        def detour(sources, targets, slot):
            # Occupation-aware but uniform-cost, like _UniformCostView.
            return flat_finder(
                grid, sources, targets, slot,
                instrumentation=instrumentation,
                use_weights=False, use_slots=True,
            )

    elif engine == "reference":
        grid = RoutingGrid(placement, initial_weight=0.0)

        def shortest(sources, targets):
            return _shortest_path(grid, sources, targets, instrumentation)

        def detour(sources, targets, slot):
            return find_path(
                _UniformCostView(grid), sources, targets, slot,
                instrumentation=instrumentation,
            )

    else:
        raise RoutingError(
            f"unknown route engine {engine!r}; expected one of {ROUTE_ENGINES}"
        )
    # flat2's postponement fast-forward (see repro.route.flat2): skip
    # retry delays whose occupancy flags provably match the failing
    # attempt's, bumping the retry counter by the skipped step count.
    advance = getattr(grid, "advance_delay", None)
    # Interval retirement (flat2): drop committed intervals that end
    # before every conflict window the remaining tasks can query — see
    # route_tasks; correction detours probe transit windows only, so
    # the same suffix-minimum bound applies.
    retire = getattr(grid, "retire_intervals", None)
    result = RoutingResult(placement=placement, grid=None)
    ordered = sorted(tasks, key=lambda t: (t.depart, t.task_id))
    retire_bounds: list[float] = []
    if retire is not None:
        low = float("inf")
        for task in reversed(ordered):
            low = min(low, task.transit_occupation[0])
            retire_bounds.append(low)
        retire_bounds.reverse()
    # Ports are pure geometry; compute them once per component instead
    # of once per task endpoint.
    port_cache = {
        cid: placement.ports(cid) for cid in placement.components()
    }
    all_ports = {cell for ports in port_cache.values() for cell in ports}
    for task_index, task in enumerate(ordered):
        if retire is not None and task_index % _RETIRE_STRIDE == 0:
            retire(retire_bounds[task_index])
        sources = port_cache[task.src_component]
        targets = port_cache[task.dst_component]
        if task.src_component == task.dst_component:
            # Self-loop: take the first port regardless of occupation,
            # then correct below like any other path.
            cells: tuple[Cell, ...] | None = (sources[0],)
        else:
            cells = shortest(sources, targets)
        if cells is None:
            raise RoutingError(
                f"task {task.task_id} ({task.src_component} -> "
                f"{task.dst_component}) has no geometric path",
                task_id=task.task_id,
            )
        # Correction: when the constructed path conflicts, first try a
        # detour (uniform cost, occupation-aware), then postpone in
        # 1-second steps until a feasible plan exists.
        delay = 0.0
        crawl_steps = 0
        slots = plan_path_slots(
            grid, cells, task, delay, avoid_for_cache=all_ports
        )
        while slots is None:
            if task.src_component != task.dst_component:
                rerouted = detour(sources, targets, _transit_slot(task, delay))
                if rerouted is not None:
                    candidate = plan_path_slots(
                        grid, rerouted, task, delay, avoid_for_cache=all_ports
                    )
                    if candidate is not None:
                        cells = rerouted
                        slots = candidate
                        if instrumentation is not None:
                            instrumentation.count("route.reroutes")
                        break
            skip = 1
            if (
                advance is not None
                and crawl_steps
                and crawl_steps % _ADVANCE_STRIDE == 0
            ):
                # Deep crawls only — see route_tasks: on dense
                # occupancies the hint is almost always 1 and paying for
                # it every step costs more than the crawl itself.
                hint = advance(task, delay, instrumentation=instrumentation)
                if hint is not None and hint > 1:
                    skip = hint
            crawl_steps += skip
            delay += skip * 1.0
            if instrumentation is not None:
                instrumentation.count("route.conflict_retries", skip)
            slots = plan_path_slots(
                grid, cells, task, delay, avoid_for_cache=all_ports
            )
        grid.commit_path(cells, task.task_id, task.fluid, slots, task.wash_time)
        result.paths.append(
            RoutedPath(
                task=task,
                cells=cells,
                slot=_cache_slot(task, delay),
                postponement=delay,
            )
        )
        if instrumentation is not None:
            instrumentation.count("route.tasks_routed")
            if delay > 0:
                instrumentation.count("route.postponements")
                instrumentation.event(
                    "route.postponement", task_id=task.task_id, slide=delay
                )
            instrumentation.event(
                "route.task",
                task_id=task.task_id,
                cells=len(cells),
                postponement=delay,
            )
    _finalise_grid(result, grid)
    return result

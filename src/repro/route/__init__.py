"""Routing stage (Algorithm 2, lines 9–18) and the baseline router."""

from repro.route.astar import find_path
from repro.route.baseline_router import route_tasks_baseline
from repro.route.grid_graph import (
    DEFAULT_INITIAL_WEIGHT,
    CellUsage,
    RoutingGrid,
)
from repro.route.paths import RoutedPath
from repro.route.router import RoutingResult, route_tasks
from repro.route.timeslots import TimeSlot, TimeSlotSet

__all__ = [
    "CellUsage",
    "DEFAULT_INITIAL_WEIGHT",
    "RoutedPath",
    "RoutingGrid",
    "RoutingResult",
    "TimeSlot",
    "TimeSlotSet",
    "find_path",
    "route_tasks",
    "route_tasks_baseline",
]

"""Routing stage (Algorithm 2, lines 9–18) and the baseline router."""

from repro.route.astar import find_path
from repro.route.baseline_router import route_tasks_baseline
from repro.route.grid_graph import (
    DEFAULT_INITIAL_WEIGHT,
    CellUsage,
    RoutingGrid,
)
from repro.route.flat import FlatOccupancy, FlatRoutingState, find_path_flat
from repro.route.flat2 import Flat2RoutingState, find_path_flat2
from repro.route.paths import RoutedPath
from repro.route.router import (
    DEFAULT_ROUTE_ENGINE,
    ROUTE_ENGINES,
    RoutingResult,
    route_tasks,
)
from repro.route.timeslots import TimeSlot, TimeSlotSet

__all__ = [
    "CellUsage",
    "DEFAULT_INITIAL_WEIGHT",
    "DEFAULT_ROUTE_ENGINE",
    "Flat2RoutingState",
    "FlatOccupancy",
    "FlatRoutingState",
    "ROUTE_ENGINES",
    "RoutedPath",
    "RoutingGrid",
    "RoutingResult",
    "TimeSlot",
    "TimeSlotSet",
    "find_path",
    "find_path_flat",
    "find_path_flat2",
    "route_tasks",
    "route_tasks_baseline",
]

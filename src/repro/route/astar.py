"""Improved A* path finding (Section IV-B.2, Eq. 5).

The search runs from the set of *port cells* of the source component to
any port cell of the destination component.  The cost of expanding cell
``ce_k`` is::

    Cost(k) = h(k) + g(k) + w(k)     if the task's slot fits on ce_k,
              +inf                   otherwise,

where (keeping the paper's notation) ``h`` is the realised path length
from the source, ``g`` the Manhattan lower bound to the nearest target,
and ``w`` the cell's current weight.  Cells whose slot sets conflict
with the task's occupation interval are pruned outright, which
eliminates the three transportation-conflict types of Section II-C.2 by
construction.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Iterable, Sequence

from repro.obs.instrument import Instrumentation
from repro.place.grid import Cell
from repro.route.grid_graph import RoutingGrid
from repro.route.timeslots import TimeSlot

__all__ = ["find_path"]


def _heuristic(cell: Cell, targets: Sequence[Cell]) -> int:
    """Manhattan distance to the nearest target (admissible)."""
    return min(cell.manhattan(target) for target in targets)


def find_path(
    grid: RoutingGrid,
    sources: Iterable[Cell],
    targets: Iterable[Cell],
    slot: TimeSlot,
    goal_slot: TimeSlot | None = None,
    instrumentation: Instrumentation | None = None,
) -> tuple[Cell, ...] | None:
    """A* from any source port to any target port under Eq. 5.

    *slot* is the transit occupation checked on every traversed cell;
    *goal_slot* (defaulting to *slot*) is the — typically longer —
    occupation the path's final cell must accommodate, covering the
    distributed-channel cache beside the destination.  A target cell
    whose goal slot is blocked may still be crossed in transit.

    *instrumentation* receives the search statistics once per call:
    ``astar.searches``, ``astar.nodes_expanded`` (closed-set additions),
    ``astar.nodes_reopened`` (cost improvements of an already-discovered
    cell), and ``astar.failures`` for exhausted searches.

    Returns the cell path (source and target inclusive) or ``None`` when
    no admissible path exists.  Deterministic: ties in cost are broken
    by cell coordinates.
    """
    started = perf_counter()
    if goal_slot is None:
        goal_slot = slot
    target_list = [t for t in targets if grid.is_routable(t)]
    source_list = [s for s in sources if grid.is_free(s, slot)]
    if not target_list or not source_list:
        _flush_search_stats(
            instrumentation, expanded=0, reopened=0, found=False,
            elapsed=perf_counter() - started,
        )
        return None
    target_set = set(target_list)

    # Priority queue entries: (f, tie, cell); g/w accumulated separately.
    # Search statistics are tallied in locals and flushed once per call,
    # keeping instrumentation off the per-expansion path.  The heuristic
    # is memoised per cell for the duration of the search (targets never
    # change mid-search), and the hot grid methods are bound to locals.
    expanded = 0
    reopened = 0
    open_heap: list[tuple[float, tuple[int, int], Cell]] = []
    accumulated: dict[Cell, float] = {}
    parent: dict[Cell, Cell | None] = {}
    h_cache: dict[Cell, int] = {}
    h_get = h_cache.get
    acc_get = accumulated.get
    is_free = grid.is_free
    weight = grid.weight
    heappush = heapq.heappush
    heappop = heapq.heappop
    inf = float("inf")
    for source in source_list:
        cost = 1.0 + weight(source)  # the source cell itself is used
        if cost < acc_get(source, inf):
            accumulated[source] = cost
            parent[source] = None
            h = _heuristic(source, target_list)
            h_cache[source] = h
            heappush(open_heap, (cost + h, (source.x, source.y), source))

    path: tuple[Cell, ...] | None = None
    closed: set[Cell] = set()
    while open_heap:
        _f, _tie, cell = heappop(open_heap)
        if cell in closed:
            continue
        closed.add(cell)
        expanded += 1
        if cell in target_set and is_free(cell, goal_slot):
            path = _reconstruct(parent, cell)
            break
        base = accumulated[cell] + 1.0
        for neighbour in cell.neighbours():
            # A consistent heuristic settles a cell's cost when it is
            # closed, so a closed neighbour can never improve — skipping
            # here avoids the is_free/weight work *and* the heap push.
            if neighbour in closed:
                continue
            if not is_free(neighbour, slot):
                continue
            cost = base + weight(neighbour)
            old = acc_get(neighbour, inf)
            if cost < old:
                if old is not inf:
                    reopened += 1
                accumulated[neighbour] = cost
                parent[neighbour] = cell
                h = h_get(neighbour)
                if h is None:
                    h = _heuristic(neighbour, target_list)
                    h_cache[neighbour] = h
                heappush(
                    open_heap, (cost + h, (neighbour.x, neighbour.y), neighbour)
                )
    _flush_search_stats(
        instrumentation, expanded=expanded, reopened=reopened,
        found=path is not None, elapsed=perf_counter() - started,
    )
    return path


def _flush_search_stats(
    instrumentation: Instrumentation | None,
    expanded: int,
    reopened: int,
    found: bool,
    elapsed: float = 0.0,
) -> None:
    """Record one search's tallies on the instrumentation, if any.

    *elapsed* (wall-clock seconds of the whole search) additionally
    feeds the ``astar.search_seconds`` latency histogram — the p50/p90/
    p99 route-search figures of the ledger and the perf artifacts.
    """
    if instrumentation is None:
        return
    instrumentation.count("astar.searches")
    instrumentation.count("astar.nodes_expanded", expanded)
    instrumentation.count("astar.nodes_reopened", reopened)
    if not found:
        instrumentation.count("astar.failures")
    instrumentation.observe("astar.search_seconds", elapsed)
    instrumentation.event(
        "astar.search", expanded=expanded, reopened=reopened, found=found
    )


def _reconstruct(parent: dict[Cell, Cell | None], cell: Cell) -> tuple[Cell, ...]:
    path = [cell]
    while True:
        previous = parent[path[-1]]
        if previous is None:
            break
        path.append(previous)
    path.reverse()
    return tuple(path)

"""Flat array-backed routing engine (the ``flat`` route engine).

The reference engine (:mod:`repro.route.astar` over
:class:`~repro.route.grid_graph.RoutingGrid`) keeps its state in
``dict``/``set`` structures keyed by :class:`~repro.place.grid.Cell`
tuples and allocates a 4-tuple of neighbour cells on every A*
expansion.  This module is the same algorithm on flat integer-indexed
state:

* a cell is the integer ``y * width + x``;
* the obstacle mask is a :class:`bytearray`, cell weights a plain
  ``list[float]`` — one indexed load instead of a hash probe per
  Eq. 5 term;
* per-cell occupation slots live in :class:`FlatOccupancy`, an
  interval index of parallel sorted ``(starts, ends)`` float lists per
  cell, replacing :class:`~repro.route.timeslots.TimeSlotSet` object
  traffic on the admissibility check (untouched cells are a single
  ``is None`` test);
* neighbours come from a table precomputed once per grid — no
  ``Cell.neighbours()`` tuple construction per expansion;
* the A* heuristic is read from a distance array precomputed per
  search (min Manhattan distance to the target set), instead of being
  recomputed per visited cell.

The engine is **bit-compatible** with the reference: identical paths,
identical expansion/reopen counters, and — because committed paths are
replayed through :meth:`FlatRoutingState.to_routing_grid` — an
identical final :class:`~repro.route.grid_graph.RoutingGrid` for the
metrics, checker, wash, and visualisation stages.  The parity tests in
``tests/route/test_flat_parity.py`` pin path-identity across every
benchmark and both flows.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from time import perf_counter
from typing import Iterable

try:  # numpy accelerates the heuristic precompute; plain python works too
    import numpy as _np
except ImportError:  # pragma: no cover - the test image ships numpy
    _np = None

from repro.assay.fluids import Fluid
from repro.errors import RoutingError, ValidationError
from repro.obs.instrument import Instrumentation
from repro.place.grid import Cell
from repro.place.placement import Placement
from repro.route.astar import _flush_search_stats
from repro.route.grid_graph import DEFAULT_INITIAL_WEIGHT, RoutingGrid
from repro.route.timeslots import TimeSlot
from repro.units import EPSILON, Seconds

__all__ = [
    "FlatOccupancy",
    "FlatRoutingState",
    "find_path_flat",
    "static_tables",
]


#: Per-grid-signature memo of the immutable search tables.  The tie and
#: neighbour tables depend only on ``(width, height)``, yet PR 5 rebuilt
#: both on every :class:`FlatRoutingState` construction — once per SA
#: restart and once per bench repeat.  The memo makes repeated searches
#: on an unchanged grid signature skip the precompute entirely; entries
#: are tiny (a few KB per distinct grid size) and grid sizes are drawn
#: from the benchmark registry, so the cache stays bounded.
_STATIC_TABLES: dict[
    tuple[int, int], tuple[list[int], list[tuple[int, ...]]]
] = {}


def static_tables(
    width: int, height: int
) -> tuple[list[int], list[tuple[int, ...]]]:
    """The ``(ties, neighbours)`` tables of a ``width x height`` grid.

    ``ties[i]`` is the heap tie-break key replicating the reference's
    ``(x, y)`` lexicographic order (``x * height + y``); ``neighbours[i]``
    lists the valid orthogonal neighbours of cell ``i`` in the reference
    ``Cell.neighbours()`` order (E, W, S, N) with off-grid entries
    dropped.  Memoized per grid signature — callers must treat the
    returned lists as immutable.
    """
    key = (width, height)
    cached = _STATIC_TABLES.get(key)
    if cached is not None:
        return cached
    n = width * height
    ties = [(i % width) * height + (i // width) for i in range(n)]
    neighbours: list[tuple[int, ...]] = []
    for i in range(n):
        x = i % width
        y = i // width
        around: list[int] = []
        if x + 1 < width:
            around.append(i + 1)
        if x > 0:
            around.append(i - 1)
        if y + 1 < height:
            around.append(i + width)
        if y > 0:
            around.append(i - width)
        neighbours.append(tuple(around))
    _STATIC_TABLES[key] = (ties, neighbours)
    return ties, neighbours


class FlatOccupancy:
    """Per-cell occupation intervals over flat cell indices.

    Semantically identical to one :class:`~repro.route.timeslots.
    TimeSlotSet` per cell — same half-open ``[start, end)`` intervals,
    same ``EPSILON`` slack at the joints, zero-length slots conflict
    with nothing — but stored as two parallel sorted float lists per
    *touched* cell.  Untouched cells cost one ``is None`` check, which
    is the common case on the A* hot path.
    """

    __slots__ = ("starts", "ends")

    def __init__(self, cell_count: int) -> None:
        self.starts: list[list[float] | None] = [None] * cell_count
        self.ends: list[list[float] | None] = [None] * cell_count

    def conflicts(self, index: int, cs: float, ce: float) -> bool:
        """Whether ``[cs, ce)`` overlaps any stored interval of *index*.

        Mirrors :meth:`TimeSlotSet.conflicts_with` exactly: a
        zero-length candidate (or stored interval) overlaps nothing,
        and the only candidates for overlap are the predecessor by
        start plus successors starting before the candidate ends.
        """
        if ce - cs <= EPSILON:
            return False
        starts = self.starts[index]
        if starts is None:
            return False
        ends = self.ends[index]
        i = bisect_left(starts, cs)
        if i:
            s = starts[i - 1]
            e = ends[i - 1]
            if e - s > EPSILON and s < ce - EPSILON and cs < e - EPSILON:
                return True
        m = len(starts)
        while i < m:
            s = starts[i]
            if s >= ce - EPSILON:
                break
            e = ends[i]
            if e - s > EPSILON and cs < e - EPSILON:
                return True
            i += 1
        return False

    def add(self, index: int, cs: float, ce: float) -> None:
        """Insert ``[cs, ce)``; raises :class:`ValidationError` on overlap."""
        if self.conflicts(index, cs, ce):
            raise ValidationError(
                f"slot [{cs}, {ce}) overlaps an existing occupation"
            )
        starts = self.starts[index]
        if starts is None:
            self.starts[index] = [cs]
            self.ends[index] = [ce]
            return
        i = bisect_left(starts, cs)
        starts.insert(i, cs)
        self.ends[index].insert(i, ce)  # type: ignore[union-attr]

    def intervals(self, index: int) -> list[tuple[float, float]]:
        """The stored ``(start, end)`` pairs of *index*, sorted by start."""
        starts = self.starts[index]
        if starts is None:
            return []
        ends = self.ends[index]
        return list(zip(starts, ends))  # type: ignore[arg-type]


class FlatRoutingState:
    """Routing-time state of the flat engine.

    Exposes the same Cell-based query/commit surface as
    :class:`~repro.route.grid_graph.RoutingGrid` — ``is_routable`` /
    ``is_free`` / ``weight`` / ``commit_path`` — so the slot-planning
    and self-loop code of :mod:`repro.route.router` runs unchanged on
    either engine, while :func:`find_path_flat` reads the flat arrays
    directly.  Committed paths are logged; :meth:`to_routing_grid`
    replays the log through the reference grid's own ``commit_path`` so
    the result handed to metrics/checker/viz is *the same object kind
    in the same state* as a reference-engine run.
    """

    def __init__(
        self,
        placement: Placement,
        initial_weight: float = DEFAULT_INITIAL_WEIGHT,
    ) -> None:
        if initial_weight < 0:
            raise RoutingError(
                f"initial weight must be >= 0, got {initial_weight}"
            )
        self.placement = placement
        self.grid = placement.grid
        self.initial_weight = initial_weight
        width = self.grid.width
        height = self.grid.height
        self.width = width
        self.height = height
        n = width * height
        blocked = bytearray(n)
        for cell in placement.occupied_cells():
            blocked[cell.y * width + cell.x] = 1
        self.blocked = blocked
        self.weights: list[float] = [float(initial_weight)] * n
        self.occupancy = FlatOccupancy(n)
        #: Heap tie-break keys and neighbour table, shared across every
        #: state with the same grid signature (see :func:`static_tables`).
        self.ties, self.neighbours = static_tables(width, height)
        #: Distance-map heuristic memo: target-index tuple -> distance
        #: list.  The heuristic ignores occupation slots (it is a lower
        #: bound over geometry only), so entries stay valid across path
        #: commits; the obstacle mask is fixed at construction, so the
        #: cache lives as long as the state.  If a subclass ever mutates
        #: ``blocked`` it must call :meth:`invalidate_heuristics`.
        self._dist_cache: dict[tuple[int, ...], list[int]] = {}
        if _np is not None:
            indices = _np.arange(n, dtype=_np.int64)
            self._np_xs = indices % width
            self._np_ys = indices // width
        self._log: list[
            tuple[tuple[Cell, ...], str, Fluid, tuple[TimeSlot, ...], Seconds]
        ] = []

    # ------------------------------------------------------------------
    # Heuristic cache
    # ------------------------------------------------------------------
    def invalidate_heuristics(self) -> None:
        """Drop the memoized distance maps (after an obstacle change)."""
        self._dist_cache.clear()

    def distance_map(
        self,
        target_indices: list[int],
        instrumentation: Instrumentation | None = None,
    ) -> list[int]:
        """Memoized :func:`_distance_map` over the target set.

        On the scale tier the same few target sets (one per component's
        port group) recur across hundreds of searches — Scale200 builds
        1.8k distance maps over only ~34 distinct target sets.  A cache
        hit bumps the ``astar.heuristic_cache_hits`` counter.
        """
        key = tuple(target_indices)
        dist = self._dist_cache.get(key)
        if dist is None:
            dist = _distance_map(self, target_indices)
            self._dist_cache[key] = dist
        elif instrumentation is not None:
            instrumentation.count("astar.heuristic_cache_hits")
        return dist

    # ------------------------------------------------------------------
    # Index helpers
    # ------------------------------------------------------------------
    def index(self, cell: Cell) -> int:
        return cell.y * self.width + cell.x

    def cell(self, index: int) -> Cell:
        return Cell(index % self.width, index // self.width)

    # ------------------------------------------------------------------
    # RoutingGrid-compatible queries (the cold, Cell-based surface)
    # ------------------------------------------------------------------
    def is_routable(self, cell: Cell) -> bool:
        x, y = cell
        if not (0 <= x < self.width and 0 <= y < self.height):
            return False
        return not self.blocked[y * self.width + x]

    def weight(self, cell: Cell) -> float:
        return self.weights[cell.y * self.width + cell.x]

    def is_free(self, cell: Cell, slot: TimeSlot) -> bool:
        x, y = cell
        if not (0 <= x < self.width and 0 <= y < self.height):
            return False
        index = y * self.width + x
        if self.blocked[index]:
            return False
        return not self.occupancy.conflicts(index, slot.start, slot.end)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def commit_path(
        self,
        cells: tuple[Cell, ...],
        task_id: str,
        fluid: Fluid,
        slots: list[TimeSlot],
        wash_time: Seconds,
    ) -> None:
        """Claim *cells* for a routed task (mirror of the reference)."""
        if len(slots) != len(cells):
            raise RoutingError(
                f"task {task_id}: {len(slots)} slots for {len(cells)} cells",
                task_id=task_id,
            )
        for cell, slot in zip(cells, slots):
            if not self.is_free(cell, slot):
                raise RoutingError(
                    f"task {task_id}: cell {cell} is not free for slot "
                    f"[{slot.start}, {slot.end})",
                    task_id=task_id,
                )
        width = self.width
        occupancy = self.occupancy
        weights = self.weights
        for cell, slot in zip(cells, slots):
            index = cell.y * width + cell.x
            occupancy.add(index, slot.start, slot.end)
            weights[index] = wash_time
        self._log.append((cells, task_id, fluid, tuple(slots), wash_time))

    def to_routing_grid(self) -> RoutingGrid:
        """Replay the commit log into a reference grid.

        Uses :meth:`RoutingGrid._replay_log`, which reproduces the
        state repeated :meth:`RoutingGrid.commit_path` calls would have
        built — weights, slot sets, and usage history in identical dict
        insertion order, so every downstream consumer (metrics replay,
        checker, fault harness, SVG/ASCII rendering) is engine-blind —
        without paying per-slot validation for commits the live engine
        already validated.
        """
        grid = RoutingGrid(self.placement, self.initial_weight)
        grid._replay_log(self._log)
        return grid


def _distance_map(state: FlatRoutingState, target_indices: list[int]) -> list[int]:
    """Min Manhattan distance from every cell to the target set.

    The reference heuristic ignores obstacles (it is a lower bound), so
    this is a pure geometric distance map.  With numpy it is a
    vectorised min-reduction over the targets; the fallback is a
    two-pass L1 chamfer sweep — both produce the exact same integers.
    """
    width = state.width
    if _np is not None:
        best = None
        xs = state._np_xs
        ys = state._np_ys
        for index in target_indices:
            d = abs(xs - (index % width)) + abs(ys - (index // width))
            if best is None:
                best = d
            else:
                _np.minimum(best, d, out=best)
        assert best is not None
        return best.tolist()
    height = state.height
    n = width * height
    infinity = n * 4  # larger than any on-grid distance
    dist = [infinity] * n
    for index in target_indices:
        dist[index] = 0
    for y in range(height):
        row = y * width
        for x in range(width):
            i = row + x
            d = dist[i]
            if x and dist[i - 1] + 1 < d:
                d = dist[i - 1] + 1
            if y and dist[i - width] + 1 < d:
                d = dist[i - width] + 1
            dist[i] = d
    for y in range(height - 1, -1, -1):
        row = y * width
        for x in range(width - 1, -1, -1):
            i = row + x
            d = dist[i]
            if x + 1 < width and dist[i + 1] + 1 < d:
                d = dist[i + 1] + 1
            if y + 1 < height and dist[i + width] + 1 < d:
                d = dist[i + width] + 1
            dist[i] = d
    return dist


def find_path_flat(
    grid: FlatRoutingState,
    sources: Iterable[Cell],
    targets: Iterable[Cell],
    slot: TimeSlot,
    goal_slot: TimeSlot | None = None,
    instrumentation: Instrumentation | None = None,
    *,
    use_weights: bool = True,
    use_slots: bool = True,
) -> tuple[Cell, ...] | None:
    """Flat-index twin of :func:`repro.route.astar.find_path`.

    Same Eq. 5 search, same cost arithmetic, same ``(f, (x, y))`` heap
    order (encoded as ``x * height + y``), same instrumentation
    counters — returning the identical cell path or ``None``.

    ``use_weights=False`` zeroes the ``w(k)`` term and
    ``use_slots=False`` skips occupation checks, replicating the
    baseline router's ``_ZeroWeightView`` / ``_UniformCostView``
    adapters without per-call object indirection.
    """
    started = perf_counter()
    if goal_slot is None:
        goal_slot = slot
    width = grid.width
    height = grid.height
    blocked = grid.blocked
    occupancy = grid.occupancy
    conflicts = occupancy.conflicts
    occupancy_starts = occupancy.starts
    cs = slot.start
    ce = slot.end
    check_slot = use_slots and (ce - cs) > EPSILON
    gs = goal_slot.start
    ge = goal_slot.end
    check_goal = use_slots and (ge - gs) > EPSILON

    target_indices: list[int] = []
    for target in targets:
        x, y = target
        if 0 <= x < width and 0 <= y < height:
            index = y * width + x
            if not blocked[index]:
                target_indices.append(index)
    source_indices: list[int] = []
    for source in sources:
        x, y = source
        if not (0 <= x < width and 0 <= y < height):
            continue
        index = y * width + x
        if blocked[index]:
            continue
        if check_slot and conflicts(index, cs, ce):
            continue
        source_indices.append(index)
    if not target_indices or not source_indices:
        _flush_search_stats(
            instrumentation, expanded=0, reopened=0, found=False,
            elapsed=perf_counter() - started,
        )
        return None

    n = width * height
    dist = grid.distance_map(target_indices, instrumentation)
    weights = grid.weights if use_weights else [0.0] * n
    ties = grid.ties
    neighbour_table = grid.neighbours
    target_mask = bytearray(n)
    for index in target_indices:
        target_mask[index] = 1

    inf = float("inf")
    accumulated: list[float] = [inf] * n
    parent: list[int] = [-1] * n
    closed = bytearray(n)
    open_heap: list[tuple[float, int, int]] = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    expanded = 0
    reopened = 0
    for index in source_indices:
        cost = 1.0 + weights[index]
        if cost < accumulated[index]:
            accumulated[index] = cost
            parent[index] = -1
            heappush(open_heap, (cost + dist[index], ties[index], index))

    path: tuple[Cell, ...] | None = None
    while open_heap:
        _f, _tie, index = heappop(open_heap)
        if closed[index]:
            continue
        closed[index] = 1
        expanded += 1
        if target_mask[index] and not (
            check_goal and conflicts(index, gs, ge)
        ):
            chain = [index]
            previous = parent[index]
            while previous != -1:
                chain.append(previous)
                previous = parent[previous]
            chain.reverse()
            path = tuple(Cell(i % width, i // width) for i in chain)
            break
        base = accumulated[index] + 1.0
        for ni in neighbour_table[index]:
            # A consistent heuristic settles a cell's cost when it is
            # closed, so a closed neighbour can never improve.
            if closed[ni] or blocked[ni]:
                continue
            if (
                check_slot
                and occupancy_starts[ni] is not None
                and conflicts(ni, cs, ce)
            ):
                continue
            cost = base + weights[ni]
            old = accumulated[ni]
            if cost < old:
                if old is not inf:
                    reopened += 1
                accumulated[ni] = cost
                parent[ni] = index
                heappush(open_heap, (cost + dist[ni], ties[ni], ni))
    _flush_search_stats(
        instrumentation, expanded=expanded, reopened=reopened,
        found=path is not None, elapsed=perf_counter() - started,
    )
    return path

"""Routed path model.

A routed path is a 4-connected sequence of free grid cells from a port
of the source component to a port of the destination component.  The
:class:`RoutedPath` records the path together with the task it realises
and the occupation slot it claimed, and validates its own connectivity —
a disconnected "path" is a router bug that must surface immediately.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RoutingError
from repro.place.grid import Cell
from repro.route.timeslots import TimeSlot
from repro.schedule.tasks import TransportTask
from repro.units import Millimetres

__all__ = ["RoutedPath"]


@dataclass(frozen=True)
class RoutedPath:
    """One realised transportation task."""

    task: TransportTask
    cells: tuple[Cell, ...]
    slot: TimeSlot
    #: Extra delay applied to the task by construction-by-correction
    #: (always 0 for the conflict-aware router).
    postponement: float = 0.0

    def __post_init__(self) -> None:
        if not self.cells:
            raise RoutingError(
                f"task {self.task.task_id}: routed path has no cells",
                task_id=self.task.task_id,
            )
        for a, b in zip(self.cells, self.cells[1:]):
            if a.manhattan(b) != 1:
                raise RoutingError(
                    f"task {self.task.task_id}: path cells {a} and {b} are "
                    "not orthogonal neighbours",
                    task_id=self.task.task_id,
                )
        if len(set(self.cells)) != len(self.cells):
            raise RoutingError(
                f"task {self.task.task_id}: path revisits a cell",
                task_id=self.task.task_id,
            )

    @property
    def length_cells(self) -> int:
        """Channel length of this path, in cells."""
        return len(self.cells)

    def length_mm(self, pitch_mm: Millimetres) -> Millimetres:
        """Channel length of this path, in millimetres."""
        return self.length_cells * pitch_mm

"""repro — physical synthesis of flow-based microfluidic biochips with
distributed channel storage.

A from-scratch reproduction of Chen et al., *Physical Synthesis of
Flow-Based Microfluidic Biochips Considering Distributed Channel
Storage*, DATE 2019.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Typical use::

    from repro import get_benchmark, synthesize

    case = get_benchmark("CPA")
    result = synthesize(case.assay, case.allocation, seed=7)
    print(result.summary())
"""

from repro.assay import (
    AssayBuilder,
    Fluid,
    Operation,
    OperationType,
    SequencingGraph,
)
from repro.benchmarks import BenchmarkCase, benchmark_names, get_benchmark
from repro.components import Allocation, ComponentLibrary, DEFAULT_LIBRARY
from repro.obs import Instrumentation, JsonlSink, NullSink, RecordingSink
from repro.schedule import (
    Schedule,
    schedule_assay,
    schedule_assay_baseline,
    validate_schedule,
)
from repro.core import SynthesisResult, synthesize, synthesize_baseline

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "AssayBuilder",
    "BenchmarkCase",
    "ComponentLibrary",
    "DEFAULT_LIBRARY",
    "Fluid",
    "Instrumentation",
    "JsonlSink",
    "NullSink",
    "Operation",
    "OperationType",
    "RecordingSink",
    "Schedule",
    "SequencingGraph",
    "SynthesisResult",
    "__version__",
    "benchmark_names",
    "get_benchmark",
    "schedule_assay",
    "schedule_assay_baseline",
    "synthesize",
    "synthesize_baseline",
    "validate_schedule",
]

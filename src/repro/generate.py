"""Command-line benchmark generator: ``repro-generate``.

Writes a synthetic assay (same layered-DAG model as the Table I
Synthetic benchmarks) to a JSON file that ``repro-synthesize`` accepts::

    repro-generate out.json --operations 25 -m 4 -H 2 -f 1 -d 2 --seed 7
    repro-synthesize out.json -m 4 -H 2 -f 1 -d 2
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.assay.io import dump_assay
from repro.benchmarks.synthetic import SyntheticSpec, generate_synthetic
from repro.components.allocation import Allocation
from repro.errors import ReproError

__all__ = ["build_parser", "run", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-generate",
        description="Generate a synthetic bioassay benchmark as JSON.",
    )
    parser.add_argument("output", type=Path, help="output JSON path")
    parser.add_argument("--name", default=None,
                        help="assay name (default: output stem)")
    parser.add_argument("--operations", "-n", type=int, default=20,
                        help="number of operations (default: 20)")
    parser.add_argument("-m", "--mixers", type=int, default=3)
    parser.add_argument("-H", "--heaters", type=int, default=2)
    parser.add_argument("-f", "--filters", type=int, default=1)
    parser.add_argument("-d", "--detectors", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    return parser


def run(argv: list[str]) -> int:
    args = build_parser().parse_args(argv)
    name = args.name or args.output.stem
    try:
        allocation = Allocation(
            mixers=args.mixers,
            heaters=args.heaters,
            filters=args.filters,
            detectors=args.detectors,
        )
        spec = SyntheticSpec(name, args.operations, allocation, args.seed)
        assay = generate_synthetic(spec)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    dump_assay(assay, args.output)
    print(
        f"wrote {args.output}: {len(assay)} operations, "
        f"{len(assay.edges)} dependencies, allocation {allocation}"
    )
    return 0


def main() -> None:  # pragma: no cover - thin wrapper
    raise SystemExit(run(sys.argv[1:]))


if __name__ == "__main__":  # pragma: no cover
    main()

"""Fluid-movement timeline rendering (Fig. 3-style schedule views).

The paper's Fig. 3 shows, per component, execution bars annotated with
transports and channel caching.  :func:`render_timeline` reproduces
that view in text: one row per component (execution ``#``, wash ``~``)
plus one row per channel-cached fluid (transport ``>``, cache ``=``),
so the DCSA behaviour — fluids parked in channels between producer and
consumer — is directly visible.
"""

from __future__ import annotations

from repro.schedule.schedule import Schedule

__all__ = ["render_timeline"]


def _bar(width: int) -> list[str]:
    return [" "] * width


def _fill(row: list[str], start: float, end: float, scale: float, char: str) -> None:
    width = len(row)
    lo = int(start * scale)
    hi = max(lo + 1, int(end * scale)) if end > start else lo
    for index in range(lo, min(hi, width)):
        if row[index] == " ":
            row[index] = char


def render_timeline(schedule: Schedule, width: int = 60) -> str:
    """Render executions, washes, transports, and channel caches.

    Legend: ``#`` executing, ``~`` washing (component), ``>`` fluid in
    transport, ``=`` fluid cached in a flow channel.
    """
    makespan = schedule.makespan
    if makespan <= 0:
        return "(empty schedule)"
    scale = width / makespan

    lines = [f"0{' ' * max(0, width - len(f'{makespan:g}s'))}{makespan:g}s"]

    # Component rows: executions plus the Eq. 2 wash that follows each
    # output's final departure (reconstructed from the movements).
    last_leave: dict[str, tuple[float, bool]] = {}
    for movement in schedule.movements:
        current = last_leave.get(movement.producer)
        if current is None or movement.depart > current[0]:
            last_leave[movement.producer] = (movement.depart, movement.in_place)
        elif movement.depart == current[0] and movement.in_place:
            last_leave[movement.producer] = (movement.depart, True)

    for cid, _ in schedule.allocation.iter_components():
        row = _bar(width)
        for record in schedule.operations_on(cid):
            _fill(row, record.start, record.end, scale, "#")
            op = schedule.assay.operation(record.op_id)
            if not schedule.assay.children(record.op_id):
                _fill(row, record.end, record.end + op.wash_time, scale, "~")
            elif record.op_id in last_leave:
                departed, in_place = last_leave[record.op_id]
                if not in_place:
                    _fill(row, departed, departed + op.wash_time, scale, "~")
        lines.append(f"{cid:>12s} |{''.join(row)}|")

    # One row per movement that actually uses a channel.
    channel_movements = [
        m for m in schedule.movements if not m.in_place
    ]
    channel_movements.sort(key=lambda m: (m.depart, m.producer, m.consumer))
    for movement in channel_movements:
        row = _bar(width)
        _fill(row, movement.depart, movement.arrive, scale, ">")
        if movement.cache_time > 0:
            _fill(row, movement.arrive, movement.consume, scale, "=")
        label = f"{movement.producer}->{movement.consumer}"
        lines.append(f"{label:>12.12s} |{''.join(row)}|")

    lines.append("")
    lines.append("legend: # execute   ~ wash   > transport   = channel cache")
    return "\n".join(lines)

"""ASCII rendering of placements, routings, and schedules.

Terminal-friendly views used by the examples and by debugging sessions:

* :func:`render_placement` — the chip grid with component blocks;
* :func:`render_routing` — the grid overlaid with routed channel cells;
* :func:`render_schedule` — a Gantt-style per-component timeline.
"""

from __future__ import annotations

from repro.place.grid import Cell
from repro.place.placement import Placement
from repro.route.router import RoutingResult
from repro.schedule.schedule import Schedule

__all__ = ["render_placement", "render_routing", "render_schedule"]

#: Glyph assigned to each component family (first letter of the id).
_EMPTY = "."
_CHANNEL = "+"


def _component_glyphs(placement: Placement) -> dict[str, str]:
    """One distinguishing glyph per component: family letter, lowercase
    for even indices to keep neighbours distinguishable."""
    glyphs = {}
    for index, cid in enumerate(placement.components()):
        letter = cid[0]
        glyphs[cid] = letter.upper() if index % 2 == 0 else letter.lower()
    return glyphs


def render_placement(placement: Placement, legend: bool = True) -> str:
    """Draw the placement as a character grid (origin top-left)."""
    grid = placement.grid
    canvas = [[_EMPTY] * grid.width for _ in range(grid.height)]
    glyphs = _component_glyphs(placement)
    for cid in placement.components():
        block = placement.block(cid)
        for cell in block.cells():
            canvas[cell.y][cell.x] = glyphs[cid]
    lines = ["".join(row) for row in canvas]
    if legend:
        lines.append("")
        for cid in placement.components():
            block = placement.block(cid)
            lines.append(
                f"{glyphs[cid]} = {cid} @ ({block.x},{block.y}) "
                f"{block.width}x{block.height}"
            )
    return "\n".join(lines)


def render_routing(routing: RoutingResult, legend: bool = True) -> str:
    """Draw the placement with every routed channel cell marked ``+``."""
    placement = routing.placement
    grid = placement.grid
    canvas = [[_EMPTY] * grid.width for _ in range(grid.height)]
    assert routing.grid is not None
    for cell in routing.grid.used_cells():
        canvas[cell.y][cell.x] = _CHANNEL
    glyphs = _component_glyphs(placement)
    for cid in placement.components():
        for cell in placement.block(cid).cells():
            canvas[cell.y][cell.x] = glyphs[cid]
    lines = ["".join(row) for row in canvas]
    if legend:
        lines.append("")
        lines.append(
            f"channels: {routing.total_length_cells} cells "
            f"({routing.total_length_mm():.0f} mm), "
            f"{len(routing.paths)} transports"
        )
    return "\n".join(lines)


def render_schedule(schedule: Schedule, width: int = 60) -> str:
    """Gantt-style timeline: one row per component, ``#`` while busy.

    The timeline is scaled to *width* characters; operation ids are
    listed per component below the chart.
    """
    makespan = schedule.makespan
    if makespan <= 0:
        return "(empty schedule)"
    scale = width / makespan
    lines = [f"0{' ' * (width - len(str(makespan)) - 1)}{makespan:g}s"]
    details = []
    for cid, _ in schedule.allocation.iter_components():
        records = schedule.operations_on(cid)
        row = [" "] * width
        for record in records:
            lo = int(record.start * scale)
            hi = max(lo + 1, int(record.end * scale))
            for i in range(lo, min(hi, width)):
                row[i] = "#"
        lines.append(f"{cid:>10s} |{''.join(row)}|")
        if records:
            ops = ", ".join(
                f"{r.op_id}@{r.start:g}-{r.end:g}" for r in records
            )
            details.append(f"{cid}: {ops}")
    return "\n".join(lines + [""] + details)

"""Visualisation of layouts, schedules, and profiles (ASCII and SVG)."""

from repro.viz.ascii_art import render_placement, render_routing, render_schedule
from repro.viz.profile import render_profile
from repro.viz.svg import (
    congestion_to_svg,
    layout_to_svg,
    placement_to_svg,
    schedule_to_svg,
)
from repro.viz.timeline import render_timeline

__all__ = [
    "congestion_to_svg",
    "layout_to_svg",
    "placement_to_svg",
    "schedule_to_svg",
    "render_placement",
    "render_profile",
    "render_routing",
    "render_schedule",
    "render_timeline",
]

"""ASCII profile views of synthesis runs.

Companions to the layout/schedule renderers: where
:mod:`repro.viz.ascii_art` shows *what* was synthesised, this module
shows *where the CPU time went*.  The table primitives live in
:mod:`repro.obs.report`; here they are bound to the result types.
"""

from __future__ import annotations

from repro.core.solution import SynthesisResult
from repro.obs.report import render_phase_table

__all__ = ["render_profile"]


def render_profile(result: SynthesisResult) -> str:
    """Per-phase CPU-time table of one synthesis run.

    Example output::

        phase         time (s)        %
        schedule        0.0006      0.4
        place           0.1699     99.1
        route           0.0007      0.4
        metrics         0.0001      0.1
        total (cpu)     0.1714    100.0
    """
    return render_phase_table(
        result.phase_times, total=result.metrics.cpu_time
    )

"""SVG export of synthesized chip layouts (Fig. 4-style drawings).

:func:`layout_to_svg` draws the placement grid, component blocks
(coloured per family), and routed channels, producing a standalone SVG
document string.  No third-party dependency is used — the SVG is
assembled from string fragments with proper escaping of the few dynamic
attributes involved.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.place.placement import Placement
from repro.route.router import RoutingResult

__all__ = ["layout_to_svg", "placement_to_svg", "congestion_to_svg", "schedule_to_svg"]

#: Pixels per grid cell in the generated drawing.
_CELL_PX = 24

_FAMILY_COLOURS = {
    "Mixer": "#7aa6c2",
    "Heater": "#d49a6a",
    "Filter": "#9a77b8",
    "Detector": "#79b791",
}
_CHANNEL_COLOUR = "#c94c4c"
_GRID_COLOUR = "#dddddd"


def _family_of(cid: str) -> str:
    return cid.rstrip("0123456789")


def _header(width_cells: int, height_cells: int) -> list[str]:
    width = width_cells * _CELL_PX
    height = height_cells * _CELL_PX
    return [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]


def _grid_lines(width_cells: int, height_cells: int) -> list[str]:
    width = width_cells * _CELL_PX
    height = height_cells * _CELL_PX
    parts = []
    for x in range(width_cells + 1):
        parts.append(
            f'<line x1="{x * _CELL_PX}" y1="0" x2="{x * _CELL_PX}" '
            f'y2="{height}" stroke="{_GRID_COLOUR}" stroke-width="1"/>'
        )
    for y in range(height_cells + 1):
        parts.append(
            f'<line x1="0" y1="{y * _CELL_PX}" x2="{width}" '
            f'y2="{y * _CELL_PX}" stroke="{_GRID_COLOUR}" stroke-width="1"/>'
        )
    return parts


def _component_rects(placement: Placement) -> list[str]:
    parts = []
    for cid in placement.components():
        block = placement.block(cid)
        colour = _FAMILY_COLOURS.get(_family_of(cid), "#999999")
        x = block.x * _CELL_PX
        y = block.y * _CELL_PX
        parts.append(
            f'<rect x="{x}" y="{y}" width="{block.width * _CELL_PX}" '
            f'height="{block.height * _CELL_PX}" fill="{colour}" '
            'stroke="#333333" stroke-width="2" rx="4"/>'
        )
        cx = x + block.width * _CELL_PX / 2
        cy = y + block.height * _CELL_PX / 2
        parts.append(
            f'<text x="{cx}" y="{cy}" font-size="10" text-anchor="middle" '
            f'dominant-baseline="middle" font-family="sans-serif">'
            f"{escape(cid)}</text>"
        )
    return parts


def placement_to_svg(placement: Placement) -> str:
    """Render a placement alone (no channels) as an SVG document."""
    grid = placement.grid
    parts = _header(grid.width, grid.height)
    parts.extend(_grid_lines(grid.width, grid.height))
    parts.extend(_component_rects(placement))
    parts.append("</svg>")
    return "\n".join(parts)


def congestion_to_svg(routing: RoutingResult) -> str:
    """Render a channel-congestion heat map.

    Channel cells are shaded by how many tasks crossed them (white →
    deep red), with component blocks drawn on top.  Complements
    :func:`repro.analysis.congestion.analyse_congestion`.
    """
    placement = routing.placement
    grid = placement.grid
    parts = _header(grid.width, grid.height)
    parts.extend(_grid_lines(grid.width, grid.height))
    assert routing.grid is not None
    history = routing.grid.usage_history()
    peak = max((len(usages) for usages in history.values()), default=1)
    for cell, usages in sorted(history.items()):
        intensity = len(usages) / peak
        # White (0) to the channel red (1).
        red = int(0xC9 + (0xFF - 0xC9) * (1 - intensity))
        green = int(0x4C + (0xFF - 0x4C) * (1 - intensity))
        blue = int(0x4C + (0xFF - 0x4C) * (1 - intensity))
        parts.append(
            f'<rect x="{cell.x * _CELL_PX + 2}" y="{cell.y * _CELL_PX + 2}" '
            f'width="{_CELL_PX - 4}" height="{_CELL_PX - 4}" '
            f'fill="#{red:02x}{green:02x}{blue:02x}" rx="3">'
            f"<title>{len(usages)} task(s)</title></rect>"
        )
    parts.extend(_component_rects(placement))
    parts.append("</svg>")
    return "\n".join(parts)


def schedule_to_svg(schedule, width_px: int = 720, row_px: int = 28) -> str:
    """Render a Gantt chart of a schedule (one row per component).

    Execution bars are coloured per component family; the time axis is
    scaled to *width_px*.
    """
    components = [cid for cid, _ in schedule.allocation.iter_components()]
    makespan = max(schedule.makespan, 1e-9)
    label_px = 90
    chart_px = width_px - label_px
    height = (len(components) + 1) * row_px
    parts = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" '
        f'height="{height}" viewBox="0 0 {width_px} {height}">',
        f'<rect width="{width_px}" height="{height}" fill="white"/>',
    ]
    for row, cid in enumerate(components):
        y = row * row_px
        colour = _FAMILY_COLOURS.get(_family_of(cid), "#999999")
        parts.append(
            f'<text x="4" y="{y + row_px * 0.65}" font-size="11" '
            f'font-family="sans-serif">{escape(cid)}</text>'
        )
        for record in schedule.operations_on(cid):
            x = label_px + record.start / makespan * chart_px
            bar = max(2.0, record.duration / makespan * chart_px)
            parts.append(
                f'<rect x="{x:.1f}" y="{y + 4}" width="{bar:.1f}" '
                f'height="{row_px - 8}" fill="{colour}" stroke="#333" rx="2">'
                f"<title>{escape(record.op_id)}: {record.start:g}-"
                f"{record.end:g}s</title></rect>"
            )
    axis_y = len(components) * row_px + row_px * 0.6
    parts.append(
        f'<text x="{label_px}" y="{axis_y}" font-size="10" '
        'font-family="sans-serif">0s</text>'
    )
    parts.append(
        f'<text x="{width_px - 40}" y="{axis_y}" font-size="10" '
        f'font-family="sans-serif">{makespan:g}s</text>'
    )
    parts.append("</svg>")
    return "\n".join(parts)


def layout_to_svg(routing: RoutingResult) -> str:
    """Render a routed layout: channels below, component blocks on top."""
    placement = routing.placement
    grid = placement.grid
    parts = _header(grid.width, grid.height)
    parts.extend(_grid_lines(grid.width, grid.height))
    assert routing.grid is not None
    inset = 4
    for cell in sorted(routing.grid.used_cells()):
        parts.append(
            f'<rect x="{cell.x * _CELL_PX + inset}" '
            f'y="{cell.y * _CELL_PX + inset}" '
            f'width="{_CELL_PX - 2 * inset}" height="{_CELL_PX - 2 * inset}" '
            f'fill="{_CHANNEL_COLOUR}" opacity="0.7" rx="3"/>'
        )
    parts.extend(_component_rects(placement))
    parts.append("</svg>")
    return "\n".join(parts)

"""Fluent builder for sequencing graphs.

Writing a :class:`~repro.assay.graph.SequencingGraph` literal requires
assembling operations and edge lists by hand; the :class:`AssayBuilder`
offers a compact alternative used throughout the benchmarks, examples and
tests::

    assay = (
        AssayBuilder("pcr-fragment")
        .mix("m1", duration=4)
        .mix("m2", duration=4)
        .mix("m3", duration=5, after=["m1", "m2"])
        .build()
    )
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.assay.fluids import Fluid
from repro.assay.graph import Operation, OperationType, SequencingGraph
from repro.errors import AssayError
from repro.units import Seconds

__all__ = ["AssayBuilder"]


class AssayBuilder:
    """Incrementally assemble a sequencing graph.

    Operations are declared through :meth:`add` or the per-type shorthands
    (:meth:`mix`, :meth:`heat`, :meth:`filter`, :meth:`detect`); edges come
    either from the ``after=[...]`` keyword at declaration time or from
    explicit :meth:`depends` calls.  :meth:`build` validates and freezes
    the graph.
    """

    def __init__(self, name: str):
        self.name = name
        self._operations: list[Operation] = []
        self._ids: set[str] = set()
        self._edges: list[tuple[str, str]] = []

    # ------------------------------------------------------------------
    # Declaration API
    # ------------------------------------------------------------------
    def add(
        self,
        op_id: str,
        op_type: OperationType,
        duration: Seconds,
        *,
        after: Sequence[str] = (),
        fluid: Fluid | None = None,
        wash_time: Seconds | None = None,
        diffusion_coefficient: float | None = None,
    ) -> "AssayBuilder":
        """Declare an operation and (optionally) its incoming edges.

        Exactly one of *fluid*, *wash_time* and *diffusion_coefficient*
        may describe the output fluid; omitting all three yields the
        default fast-diffusing fluid.
        """
        described = [
            fluid is not None,
            wash_time is not None,
            diffusion_coefficient is not None,
        ]
        if sum(described) > 1:
            raise AssayError(
                f"operation {op_id!r}: give at most one of fluid, "
                "wash_time, diffusion_coefficient"
            )
        if fluid is None:
            if wash_time is not None:
                fluid = Fluid.with_wash_time(f"out({op_id})", wash_time)
            elif diffusion_coefficient is not None:
                fluid = Fluid(f"out({op_id})", diffusion_coefficient)
        operation = Operation(
            op_id=op_id,
            op_type=op_type,
            duration=duration,
            output_fluid=fluid,  # type: ignore[arg-type]
        )
        if op_id in self._ids:
            raise AssayError(f"duplicate operation id: {op_id!r}")
        self._ids.add(op_id)
        self._operations.append(operation)
        for parent in after:
            self.depends(parent, op_id)
        return self

    def mix(self, op_id: str, duration: Seconds, **kwargs) -> "AssayBuilder":
        """Shorthand for ``add(op_id, OperationType.MIX, ...)``."""
        return self.add(op_id, OperationType.MIX, duration, **kwargs)

    def heat(self, op_id: str, duration: Seconds, **kwargs) -> "AssayBuilder":
        """Shorthand for ``add(op_id, OperationType.HEAT, ...)``."""
        return self.add(op_id, OperationType.HEAT, duration, **kwargs)

    def filter(self, op_id: str, duration: Seconds, **kwargs) -> "AssayBuilder":
        """Shorthand for ``add(op_id, OperationType.FILTER, ...)``."""
        return self.add(op_id, OperationType.FILTER, duration, **kwargs)

    def detect(self, op_id: str, duration: Seconds, **kwargs) -> "AssayBuilder":
        """Shorthand for ``add(op_id, OperationType.DETECT, ...)``."""
        return self.add(op_id, OperationType.DETECT, duration, **kwargs)

    def depends(self, parent: str, child: str) -> "AssayBuilder":
        """Declare a fluidic dependency ``parent -> child``.

        Both endpoints must already be declared, which keeps declaration
        order topological by construction and catches typos early.
        """
        for endpoint in (parent, child):
            if endpoint not in self._ids:
                raise AssayError(
                    f"dependency references undeclared operation "
                    f"{endpoint!r}; declare operations before wiring them"
                )
        self._edges.append((parent, child))
        return self

    def chain(self, op_ids: Iterable[str]) -> "AssayBuilder":
        """Wire the given already-declared operations into a linear chain."""
        previous: str | None = None
        for op_id in op_ids:
            if previous is not None:
                self.depends(previous, op_id)
            previous = op_id
        return self

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def build(self) -> SequencingGraph:
        """Validate and return the immutable sequencing graph."""
        if not self._operations:
            raise AssayError(f"assay {self.name!r} declares no operations")
        return SequencingGraph(self.name, self._operations, self._edges)

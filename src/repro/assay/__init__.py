"""Bioassay modelling: fluids, operations, and sequencing graphs."""

from repro.assay.builder import AssayBuilder
from repro.assay.fluids import (
    Fluid,
    diffusion_for_wash_time,
    wash_time_from_diffusion,
)
from repro.assay.graph import Operation, OperationType, SequencingGraph
from repro.assay.io import (
    assay_from_dict,
    assay_to_dict,
    dump_assay,
    dumps_assay,
    load_assay,
    loads_assay,
)
from repro.assay.validation import ValidationReport, check_assay, validate_assay

__all__ = [
    "AssayBuilder",
    "Fluid",
    "Operation",
    "OperationType",
    "SequencingGraph",
    "ValidationReport",
    "assay_from_dict",
    "assay_to_dict",
    "check_assay",
    "diffusion_for_wash_time",
    "dump_assay",
    "dumps_assay",
    "load_assay",
    "loads_assay",
    "validate_assay",
    "wash_time_from_diffusion",
]

"""Fluid samples and the diffusion-coefficient wash-time model.

Section II-B of the paper explains that wash time is dominated by the
diffusion coefficient of the contaminant (citing Hu et al. [9]): a *lower*
coefficient means a *longer* wash.  Two calibration points are quoted:

* small molecules (lysis buffer): ``1e-5 cm²/s`` → ``0.2 s`` wash,
* large particles (tobacco mosaic virus): ``5e-8 cm²/s`` → ``6 s`` wash.

:func:`wash_time_from_diffusion` interpolates log-linearly between (and
extrapolates beyond, clamped at zero) these two points.  A
:class:`Fluid` may also carry an explicit ``wash_time`` override, which is
how the worked example of Fig. 2(b) (2 s / 10 s wash times) is encoded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import AssayError
from repro.units import Cm2PerSecond, Seconds

__all__ = [
    "DIFFUSION_FAST",
    "DIFFUSION_SLOW",
    "WASH_TIME_FAST",
    "WASH_TIME_SLOW",
    "wash_time_from_diffusion",
    "diffusion_for_wash_time",
    "Fluid",
]

#: Diffusion coefficient of a fast-diffusing small molecule (cm²/s).
DIFFUSION_FAST: Cm2PerSecond = 1e-5
#: Diffusion coefficient of a slow-diffusing large particle (cm²/s).
DIFFUSION_SLOW: Cm2PerSecond = 5e-8
#: Wash time of the fast-diffusing calibration point (s).
WASH_TIME_FAST: Seconds = 0.2
#: Wash time of the slow-diffusing calibration point (s).
WASH_TIME_SLOW: Seconds = 6.0

# Slope of the log-linear calibration: seconds of wash per decade of
# diffusion coefficient below DIFFUSION_FAST.
_LOG_FAST = math.log10(DIFFUSION_FAST)
_LOG_SLOW = math.log10(DIFFUSION_SLOW)
_SLOPE = (WASH_TIME_SLOW - WASH_TIME_FAST) / (_LOG_FAST - _LOG_SLOW)


def wash_time_from_diffusion(coefficient: Cm2PerSecond) -> Seconds:
    """Estimate the wash time (s) of a contaminant from its diffusion
    coefficient (cm²/s).

    The model is log-linear through the paper's two calibration points and
    clamped at zero, so very fast diffusers wash "instantly".

    >>> round(wash_time_from_diffusion(1e-5), 3)
    0.2
    >>> round(wash_time_from_diffusion(5e-8), 3)
    6.0
    """
    if coefficient <= 0.0:
        raise AssayError(
            f"diffusion coefficient must be positive, got {coefficient}"
        )
    wash = WASH_TIME_FAST + _SLOPE * (_LOG_FAST - math.log10(coefficient))
    return max(0.0, wash)


def diffusion_for_wash_time(wash_time: Seconds) -> Cm2PerSecond:
    """Invert :func:`wash_time_from_diffusion`.

    Useful when a benchmark specifies wash times directly (Fig. 2(b)) and a
    consistent diffusion coefficient is needed for the Case-I binding rule,
    which compares coefficients rather than wash times.
    """
    if wash_time < 0.0:
        raise AssayError(f"wash time must be non-negative, got {wash_time}")
    exponent = _LOG_FAST - (wash_time - WASH_TIME_FAST) / _SLOPE
    return 10.0 ** exponent


@dataclass(frozen=True)
class Fluid:
    """A fluid sample travelling through the chip.

    Parameters
    ----------
    name:
        Human-readable identifier, usually derived from the producing
        operation (e.g. ``"out(o4)"``).
    diffusion_coefficient:
        Diffusion coefficient in cm²/s; drives the wash-time model and the
        Case-I binding preference of Algorithm 1.
    wash_time_override:
        Optional explicit wash time in seconds.  When present it takes
        precedence over the model; this mirrors benchmarks that tabulate
        wash times directly.
    """

    name: str
    diffusion_coefficient: Cm2PerSecond = DIFFUSION_FAST
    wash_time_override: Seconds | None = field(default=None)

    def __post_init__(self) -> None:
        if self.diffusion_coefficient <= 0.0:
            raise AssayError(
                f"fluid {self.name!r}: diffusion coefficient must be "
                f"positive, got {self.diffusion_coefficient}"
            )
        if self.wash_time_override is not None and self.wash_time_override < 0:
            raise AssayError(
                f"fluid {self.name!r}: wash time override must be "
                f"non-negative, got {self.wash_time_override}"
            )

    @property
    def wash_time(self) -> Seconds:
        """Wash time (s) needed to remove this fluid's residue."""
        if self.wash_time_override is not None:
            return self.wash_time_override
        return wash_time_from_diffusion(self.diffusion_coefficient)

    @classmethod
    def with_wash_time(cls, name: str, wash_time: Seconds) -> "Fluid":
        """Build a fluid from an explicit wash time.

        The diffusion coefficient is back-computed through the calibration
        model so that wash-time ordering and coefficient ordering agree.
        """
        return cls(
            name=name,
            diffusion_coefficient=diffusion_for_wash_time(wash_time),
            wash_time_override=wash_time,
        )

"""JSON (de)serialisation of sequencing graphs.

Assays round-trip through a small, versioned JSON document so benchmark
definitions can be exported, archived next to experiment results, and fed
back in.  The schema::

    {
      "format": "repro-assay",
      "version": 1,
      "name": "pcr",
      "operations": [
        {"id": "o1", "type": "mix", "duration": 4.0,
         "fluid": {"name": "out(o1)", "diffusion_coefficient": 1e-5,
                    "wash_time_override": null}},
        ...
      ],
      "edges": [["o1", "o3"], ...]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.assay.fluids import Fluid
from repro.assay.graph import Operation, OperationType, SequencingGraph
from repro.errors import AssayError

__all__ = [
    "assay_to_dict",
    "assay_from_dict",
    "dump_assay",
    "load_assay",
    "dumps_assay",
    "loads_assay",
]

_FORMAT = "repro-assay"
_VERSION = 1


def _fluid_to_dict(fluid: Fluid) -> dict[str, Any]:
    return {
        "name": fluid.name,
        "diffusion_coefficient": fluid.diffusion_coefficient,
        "wash_time_override": fluid.wash_time_override,
    }


def _fluid_from_dict(data: dict[str, Any]) -> Fluid:
    try:
        return Fluid(
            name=data["name"],
            diffusion_coefficient=data["diffusion_coefficient"],
            wash_time_override=data.get("wash_time_override"),
        )
    except KeyError as missing:
        raise AssayError(f"fluid record missing key {missing}") from None


def assay_to_dict(assay: SequencingGraph) -> dict[str, Any]:
    """Serialise *assay* to a JSON-compatible dictionary."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "name": assay.name,
        "operations": [
            {
                "id": op.op_id,
                "type": op.op_type.value,
                "duration": op.duration,
                "fluid": _fluid_to_dict(op.output_fluid),
            }
            for op in assay.operations
        ],
        "edges": [list(edge) for edge in assay.edges],
    }


def assay_from_dict(data: dict[str, Any]) -> SequencingGraph:
    """Deserialise a dictionary produced by :func:`assay_to_dict`.

    Raises :class:`AssayError` on schema violations (wrong format marker,
    unsupported version, missing keys, or unknown operation types).
    """
    if data.get("format") != _FORMAT:
        raise AssayError(
            f"not a {_FORMAT} document (format={data.get('format')!r})"
        )
    if data.get("version") != _VERSION:
        raise AssayError(f"unsupported version: {data.get('version')!r}")
    operations = []
    for record in data.get("operations", []):
        try:
            op_type = OperationType(record["type"])
        except ValueError:
            raise AssayError(
                f"unknown operation type: {record.get('type')!r}"
            ) from None
        except KeyError as missing:
            raise AssayError(f"operation record missing key {missing}") from None
        try:
            operations.append(
                Operation(
                    op_id=record["id"],
                    op_type=op_type,
                    duration=record["duration"],
                    output_fluid=_fluid_from_dict(record["fluid"]),
                )
            )
        except KeyError as missing:
            raise AssayError(f"operation record missing key {missing}") from None
    edges = [tuple(edge) for edge in data.get("edges", [])]
    return SequencingGraph(data.get("name", "assay"), operations, edges)


def dumps_assay(assay: SequencingGraph, *, indent: int | None = 2) -> str:
    """Serialise *assay* to a JSON string."""
    return json.dumps(assay_to_dict(assay), indent=indent)


def loads_assay(text: str) -> SequencingGraph:
    """Deserialise an assay from a JSON string."""
    return assay_from_dict(json.loads(text))


def dump_assay(assay: SequencingGraph, path: str | Path) -> None:
    """Write *assay* to *path* as JSON."""
    Path(path).write_text(dumps_assay(assay) + "\n", encoding="utf-8")


def load_assay(path: str | Path) -> SequencingGraph:
    """Read an assay previously written by :func:`dump_assay`."""
    return loads_assay(Path(path).read_text(encoding="utf-8"))

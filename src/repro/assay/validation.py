"""Semantic validation of assays against a component allocation.

:class:`~repro.assay.graph.SequencingGraph` construction already rejects
*structural* faults (cycles, dangling edges).  This module layers the
*semantic* checks that precede synthesis: every operation type must be
servable by the allocation, durations should be positive for real work,
and fan-in must be physically plausible.

The findings are reported in the same :class:`~repro.check.report.Violation`
vocabulary the post-synthesis design-rule checker (:mod:`repro.check`)
uses — rules ``INP-CAPACITY``, ``INP-FANIN``, ``INP-DURATION`` and
``INP-SINK`` — so input and output validation share one report format.
The legacy ``errors``/``warnings`` string views are derived from the
violations unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.assay.graph import OperationType, SequencingGraph
from repro.check.report import Severity, Violation
from repro.components.allocation import Allocation
from repro.errors import AllocationError

__all__ = ["ValidationReport", "validate_assay", "check_assay"]

#: A mixer merges two input fluids; detectors/heaters/filters take one.
MAX_FAN_IN = {
    OperationType.MIX: 2,
    OperationType.HEAT: 1,
    OperationType.FILTER: 1,
    OperationType.DETECT: 1,
}


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_assay`.

    ``violations`` carry the structured findings; the ``errors`` and
    ``warnings`` properties expose the same messages as plain strings
    (errors make synthesis impossible, warnings flag suspicious-but-legal
    constructs such as zero-duration operations).
    """

    violations: list[Violation] = field(default_factory=list)

    @property
    def errors(self) -> list[str]:
        return [
            v.detail
            for v in self.violations
            if v.severity is Severity.ERROR
        ]

    @property
    def warnings(self) -> list[str]:
        return [
            v.detail
            for v in self.violations
            if v.severity is Severity.WARNING
        ]

    @property
    def ok(self) -> bool:
        """``True`` when no errors were found (warnings allowed)."""
        return not self.errors


def validate_assay(
    assay: SequencingGraph, allocation: Allocation
) -> ValidationReport:
    """Check that *assay* can be synthesised onto *allocation*.

    Returns a report rather than raising, so callers can surface every
    problem at once; :func:`check_assay` is the raising variant used by
    the synthesis entry points.
    """
    report = ValidationReport()
    needed = assay.count_by_type()
    for op_type, count in needed.items():
        if count > 0 and allocation.count(op_type) == 0:
            report.violations.append(
                Violation.of(
                    "INP-CAPACITY",
                    f"assay uses {count} {op_type.value} operation(s) but "
                    f"the allocation provides no {op_type.component_name}",
                    op_type.value,
                )
            )
    for op in assay.operations:
        fan_in = len(assay.parents(op.op_id))
        limit = MAX_FAN_IN[op.op_type]
        if fan_in > limit:
            report.violations.append(
                Violation.of(
                    "INP-FANIN",
                    f"operation {op.op_id!r} ({op.op_type.value}) has "
                    f"fan-in {fan_in}, above the physical limit of {limit}",
                    op.op_id,
                )
            )
        if op.duration == 0:
            report.violations.append(
                Violation.of(
                    "INP-DURATION",
                    f"operation {op.op_id!r} has zero duration",
                    op.op_id,
                )
            )
    if not assay.sinks():
        # Unreachable for a DAG with >=1 vertex, but kept as a guard for
        # future mutable-graph variants.
        report.violations.append(
            Violation.of("INP-SINK", "assay has no sink operation")
        )
    return report


def check_assay(assay: SequencingGraph, allocation: Allocation) -> None:
    """Raise :class:`AllocationError` when *assay* cannot run on *allocation*."""
    report = validate_assay(assay, allocation)
    if not report.ok:
        raise AllocationError(
            f"assay {assay.name!r} cannot be synthesised: "
            + "; ".join(report.errors)
        )

"""Semantic validation of assays against a component allocation.

:class:`~repro.assay.graph.SequencingGraph` construction already rejects
*structural* faults (cycles, dangling edges).  This module layers the
*semantic* checks that precede synthesis: every operation type must be
servable by the allocation, durations should be positive for real work,
and fan-in must be physically plausible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.assay.graph import OperationType, SequencingGraph
from repro.components.allocation import Allocation
from repro.errors import AllocationError

__all__ = ["ValidationReport", "validate_assay", "check_assay"]

#: A mixer merges two input fluids; detectors/heaters/filters take one.
MAX_FAN_IN = {
    OperationType.MIX: 2,
    OperationType.HEAT: 1,
    OperationType.FILTER: 1,
    OperationType.DETECT: 1,
}


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_assay`.

    ``errors`` are violations that make synthesis impossible; ``warnings``
    flag suspicious-but-legal constructs (e.g. zero-duration operations).
    """

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """``True`` when no errors were found (warnings allowed)."""
        return not self.errors


def validate_assay(
    assay: SequencingGraph, allocation: Allocation
) -> ValidationReport:
    """Check that *assay* can be synthesised onto *allocation*.

    Returns a report rather than raising, so callers can surface every
    problem at once; :func:`check_assay` is the raising variant used by
    the synthesis entry points.
    """
    report = ValidationReport()
    needed = assay.count_by_type()
    for op_type, count in needed.items():
        if count > 0 and allocation.count(op_type) == 0:
            report.errors.append(
                f"assay uses {count} {op_type.value} operation(s) but the "
                f"allocation provides no {op_type.component_name}"
            )
    for op in assay.operations:
        fan_in = len(assay.parents(op.op_id))
        limit = MAX_FAN_IN[op.op_type]
        if fan_in > limit:
            report.errors.append(
                f"operation {op.op_id!r} ({op.op_type.value}) has fan-in "
                f"{fan_in}, above the physical limit of {limit}"
            )
        if op.duration == 0:
            report.warnings.append(
                f"operation {op.op_id!r} has zero duration"
            )
    if not assay.sinks():
        # Unreachable for a DAG with >=1 vertex, but kept as a guard for
        # future mutable-graph variants.
        report.errors.append("assay has no sink operation")
    return report


def check_assay(assay: SequencingGraph, allocation: Allocation) -> None:
    """Raise :class:`AllocationError` when *assay* cannot run on *allocation*."""
    report = validate_assay(assay, allocation)
    if not report.ok:
        raise AllocationError(
            f"assay {assay.name!r} cannot be synthesised: "
            + "; ".join(report.errors)
        )

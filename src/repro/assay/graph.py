"""The sequencing graph ``G(O, E)`` of a bioassay (Section II-C).

A bioassay is a directed acyclic graph whose vertices are *operations*
(mixing, heating, filtering, detection) annotated with execution times and
the fluid each produces, and whose edges are fluidic dependencies: an edge
``(o_j, o_i)`` means the output of ``o_j`` is an input of ``o_i`` and must
be transported (or kept in place) accordingly.

The module provides:

* :class:`OperationType` — the four component-served operation classes used
  by the paper's benchmarks (Table I allocates components in the order
  Mixers, Heaters, Filters, Detectors).
* :class:`Operation` — an immutable vertex.
* :class:`SequencingGraph` — the DAG with topological utilities (levels,
  longest paths, ancestor queries) implemented from scratch; ``networkx``
  is used only in the test-suite as an oracle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, Mapping

from repro.assay.fluids import Fluid
from repro.errors import AssayError, GraphCycleError, UnknownOperationError
from repro.units import Seconds

__all__ = ["OperationType", "Operation", "SequencingGraph"]


class OperationType(str, Enum):
    """Operation classes served by dedicated component types.

    The string values double as the component-type names used in reports
    and layouts.
    """

    MIX = "mix"
    HEAT = "heat"
    FILTER = "filter"
    DETECT = "detect"

    @property
    def component_name(self) -> str:
        """Capitalised component-family name (e.g. ``"Mixer"``)."""
        return _COMPONENT_NAMES[self]


_COMPONENT_NAMES: Mapping[OperationType, str] = {
    OperationType.MIX: "Mixer",
    OperationType.HEAT: "Heater",
    OperationType.FILTER: "Filter",
    OperationType.DETECT: "Detector",
}


@dataclass(frozen=True)
class Operation:
    """A vertex of the sequencing graph.

    Parameters
    ----------
    op_id:
        Unique identifier within the assay (e.g. ``"o4"``).
    op_type:
        Which component family can execute the operation.
    duration:
        Execution time in seconds (the per-vertex parameter of Fig. 2(a)).
    output_fluid:
        Fluid produced by the operation.  Defaults to a fast-diffusing
        fluid named after the operation.
    """

    op_id: str
    op_type: OperationType
    duration: Seconds
    output_fluid: Fluid = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.op_id:
            raise AssayError("operation id must be a non-empty string")
        if self.duration < 0:
            raise AssayError(
                f"operation {self.op_id!r}: duration must be non-negative, "
                f"got {self.duration}"
            )
        if self.output_fluid is None:
            object.__setattr__(
                self, "output_fluid", Fluid(name=f"out({self.op_id})")
            )

    @property
    def wash_time(self) -> Seconds:
        """Wash time of this operation's residue (delegates to the fluid)."""
        return self.output_fluid.wash_time


class SequencingGraph:
    """Directed acyclic sequencing graph of a bioassay.

    The graph is immutable after construction: all operations and edges are
    passed to ``__init__`` and validated eagerly (unknown endpoints,
    duplicate ids, self-loops, and cycles are rejected).

    Parameters
    ----------
    name:
        Assay name (used by benchmark registries and reports).
    operations:
        Iterable of :class:`Operation`.
    edges:
        Iterable of ``(parent_id, child_id)`` pairs: the parent's output
        fluid feeds the child.
    """

    def __init__(
        self,
        name: str,
        operations: Iterable[Operation],
        edges: Iterable[tuple[str, str]],
    ) -> None:
        self.name = name
        self._ops: dict[str, Operation] = {}
        for op in operations:
            if op.op_id in self._ops:
                raise AssayError(f"duplicate operation id: {op.op_id!r}")
            self._ops[op.op_id] = op

        self._children: dict[str, list[str]] = {o: [] for o in self._ops}
        self._parents: dict[str, list[str]] = {o: [] for o in self._ops}
        self._edges: list[tuple[str, str]] = []
        seen_edges: set[tuple[str, str]] = set()
        for parent, child in edges:
            if parent not in self._ops:
                raise UnknownOperationError(parent)
            if child not in self._ops:
                raise UnknownOperationError(child)
            if parent == child:
                raise AssayError(f"self-loop on operation {parent!r}")
            if (parent, child) in seen_edges:
                raise AssayError(f"duplicate edge: {parent!r} -> {child!r}")
            seen_edges.add((parent, child))
            self._edges.append((parent, child))
            self._children[parent].append(child)
            self._parents[child].append(parent)

        self._topo_order = self._compute_topological_order()

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ops)

    def __contains__(self, op_id: str) -> bool:
        return op_id in self._ops

    def __iter__(self) -> Iterator[Operation]:
        """Iterate operations in a deterministic topological order."""
        return (self._ops[op_id] for op_id in self._topo_order)

    def operation(self, op_id: str) -> Operation:
        """Return the operation with the given id.

        Raises :class:`UnknownOperationError` when absent.
        """
        try:
            return self._ops[op_id]
        except KeyError:
            raise UnknownOperationError(op_id) from None

    @property
    def operations(self) -> list[Operation]:
        """All operations, in deterministic topological order."""
        return [self._ops[o] for o in self._topo_order]

    @property
    def operation_ids(self) -> list[str]:
        """All operation ids, in deterministic topological order."""
        return list(self._topo_order)

    @property
    def edges(self) -> list[tuple[str, str]]:
        """All fluidic dependencies as ``(parent, child)`` pairs."""
        return list(self._edges)

    def parents(self, op_id: str) -> list[str]:
        """Ids of the father operations of *op_id* (paper's ``O_p``)."""
        self.operation(op_id)
        return list(self._parents[op_id])

    def children(self, op_id: str) -> list[str]:
        """Ids of the child operations of *op_id*."""
        self.operation(op_id)
        return list(self._children[op_id])

    def sources(self) -> list[str]:
        """Operations with no parents (the assay's entry points)."""
        return [o for o in self._topo_order if not self._parents[o]]

    def sinks(self) -> list[str]:
        """Operations with no children (the assay's results)."""
        return [o for o in self._topo_order if not self._children[o]]

    def operation_types(self) -> set[OperationType]:
        """The set of operation types appearing in the assay."""
        return {op.op_type for op in self._ops.values()}

    def count_by_type(self) -> dict[OperationType, int]:
        """Number of operations of each type (types absent map to 0)."""
        counts = {op_type: 0 for op_type in OperationType}
        for op in self._ops.values():
            counts[op.op_type] += 1
        return counts

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def _compute_topological_order(self) -> list[str]:
        """Kahn's algorithm; ties broken lexicographically for determinism.

        Raises :class:`GraphCycleError` when the graph is cyclic.
        """
        indegree = {o: len(self._parents[o]) for o in self._ops}
        ready = sorted(o for o, deg in indegree.items() if deg == 0)
        queue = deque(ready)
        order: list[str] = []
        while queue:
            op_id = queue.popleft()
            order.append(op_id)
            newly_ready = []
            for child in self._children[op_id]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    newly_ready.append(child)
            for child in sorted(newly_ready):
                queue.append(child)
        if len(order) != len(self._ops):
            remaining = {o for o in self._ops if o not in set(order)}
            cycle = self._find_cycle(remaining)
            raise GraphCycleError(cycle)
        return order

    def _find_cycle(self, candidates: set[str]) -> list[str]:
        """Return one concrete cycle among *candidates* for error messages."""
        # Walk forward following only candidate vertices until we revisit
        # one; the walk is finite because every candidate lies on or leads
        # into a cycle.
        start = sorted(candidates)[0]
        path: list[str] = []
        index: dict[str, int] = {}
        node = start
        while node not in index:
            index[node] = len(path)
            path.append(node)
            successors = [c for c in self._children[node] if c in candidates]
            node = sorted(successors)[0]
        return path[index[node]:] + [node]

    def topological_order(self) -> list[str]:
        """Deterministic topological order of all operation ids."""
        return list(self._topo_order)

    def levels(self) -> dict[str, int]:
        """Longest-path depth of each operation from the sources (0-based)."""
        level: dict[str, int] = {}
        for op_id in self._topo_order:
            parent_levels = [level[p] for p in self._parents[op_id]]
            level[op_id] = 1 + max(parent_levels) if parent_levels else 0
        return level

    def ancestors(self, op_id: str) -> set[str]:
        """All transitive predecessors of *op_id* (excluding itself)."""
        self.operation(op_id)
        seen: set[str] = set()
        stack = list(self._parents[op_id])
        while stack:
            node = stack.pop()
            if node not in seen:
                seen.add(node)
                stack.extend(self._parents[node])
        return seen

    def descendants(self, op_id: str) -> set[str]:
        """All transitive successors of *op_id* (excluding itself)."""
        self.operation(op_id)
        seen: set[str] = set()
        stack = list(self._children[op_id])
        while stack:
            node = stack.pop()
            if node not in seen:
                seen.add(node)
                stack.extend(self._children[node])
        return seen

    def critical_path_length(self, transport_time: Seconds = 0.0) -> Seconds:
        """Length of the longest source-to-sink path.

        A path's length is the sum of its operations' durations plus
        *transport_time* per traversed edge — the same measure Algorithm 1
        uses for operation priorities.
        """
        longest: dict[str, Seconds] = {}
        best = 0.0
        for op_id in reversed(self._topo_order):
            op = self._ops[op_id]
            child_tails = [
                transport_time + longest[c] for c in self._children[op_id]
            ]
            longest[op_id] = op.duration + (max(child_tails) if child_tails else 0.0)
            best = max(best, longest[op_id])
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SequencingGraph(name={self.name!r}, |O|={len(self._ops)}, "
            f"|E|={len(self._edges)})"
        )

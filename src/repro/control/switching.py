"""Valve-switching counting and Hamming-distance-based minimisation.

Following the idea of Wang et al. [13], the number of valve *switches*
(open↔closed transitions) over the bioassay drives both control-layer
energy and valve wear.  Between consecutive transportation tasks, a
valve whose required state differs must switch; a valve whose next
state is don't-care **need not** switch if it simply holds its previous
state.

Two policies are compared:

* :func:`switching_cost_naive` — every task resets all modelled valves
  to a default state (don't-cares closed), the behaviour of a
  straightforward controller;
* :func:`switching_cost_hold` — don't-care valves hold their state
  (Hamming-distance between consecutive *required* patterns only), the
  [13]-style optimisation.

:func:`optimise_switching` reports both and the relative saving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.valves import ControlModel, ValveState

__all__ = [
    "SwitchingReport",
    "switching_cost_naive",
    "switching_cost_hold",
    "optimise_switching",
]


def _required(state: ValveState, default: ValveState) -> ValveState:
    return default if state is ValveState.DONT_CARE else state


def switching_cost_naive(model: ControlModel) -> int:
    """Total switches when don't-care valves are driven closed.

    All valves start closed; each task forces its full pattern with
    don't-cares resolved to ``CLOSED``.
    """
    total = 0
    current = {valve: ValveState.CLOSED for valve in model.valves}
    for pattern in model.patterns:
        for valve in model.valves:
            desired = _required(pattern.state_of(valve), ValveState.CLOSED)
            if current[valve] is not desired:
                total += 1
                current[valve] = desired
    return total


def switching_cost_hold(model: ControlModel) -> int:
    """Total switches when don't-care valves hold their previous state.

    This is the sum of Hamming distances between consecutive patterns
    restricted to explicitly-required valve states — the quantity the
    Hamming-distance-based optimisation of [13] minimises.
    """
    total = 0
    current = {valve: ValveState.CLOSED for valve in model.valves}
    for pattern in model.patterns:
        for valve, desired in pattern.states.items():
            if desired is ValveState.DONT_CARE:
                continue
            if current[valve] is not desired:
                total += 1
                current[valve] = desired
    return total


@dataclass(frozen=True)
class SwitchingReport:
    """Comparison of the two controller policies."""

    valve_count: int
    task_count: int
    naive_switches: int
    hold_switches: int

    @property
    def saving_percent(self) -> float:
        if self.naive_switches == 0:
            return 0.0
        return (
            (self.naive_switches - self.hold_switches)
            / self.naive_switches
            * 100.0
        )


def optimise_switching(model: ControlModel) -> SwitchingReport:
    """Evaluate both switching policies on *model*."""
    return SwitchingReport(
        valve_count=model.valve_count,
        task_count=len(model.patterns),
        naive_switches=switching_cost_naive(model),
        hold_switches=switching_cost_hold(model),
    )

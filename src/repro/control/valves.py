"""Control-layer estimation: valves derived from a routed flow layer.

The paper's conclusion names control-logic optimisation (Wang et al.,
ASP-DAC 2017 [13]) as future work; this subpackage implements a working
version of that layer on top of our routed layouts.

Model
-----
Flow in a channel network is steered by micro-valves.  A valve is needed
wherever flow must be selectively blocked:

* at every **junction cell** — a routed cell with three or more routed
  neighbours (a channel fork), one valve per incident channel arm;
* at every **component port** in use — to seal the component off from
  the network while it executes.

For each transportation task, the valves on its path (and the two ports
it uses) must be **open** while every other valve incident to its path's
junctions must be **closed**; valves not touching the path are don't-
care.  :func:`build_control_model` derives the valve set and the
per-task activation patterns from a :class:`~repro.route.router.RoutingResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.place.grid import Cell
from repro.route.router import RoutingResult

__all__ = ["Valve", "ValveState", "TaskPattern", "ControlModel", "build_control_model"]


class ValveState(str, Enum):
    """Required state of a valve during one transportation task."""

    OPEN = "open"
    CLOSED = "closed"
    DONT_CARE = "dont_care"


@dataclass(frozen=True)
class Valve:
    """A valve sits on the edge between two adjacent routed cells, or
    between a port cell and its component ("port valves").

    The identity is the canonical (sorted) pair of end points, a port
    valve using the component id as its second end.
    """

    end_a: tuple[int, int]
    end_b: tuple[int, int] | str

    @classmethod
    def between(cls, a: Cell, b: Cell) -> "Valve":
        pa, pb = (a.x, a.y), (b.x, b.y)
        if pb < pa:
            pa, pb = pb, pa
        return cls(pa, pb)

    @classmethod
    def port(cls, cell: Cell, component_id: str) -> "Valve":
        return cls((cell.x, cell.y), component_id)


@dataclass(frozen=True)
class TaskPattern:
    """Valve states required while one transportation task flows."""

    task_id: str
    start: float
    states: dict[Valve, ValveState]

    def state_of(self, valve: Valve) -> ValveState:
        return self.states.get(valve, ValveState.DONT_CARE)


@dataclass
class ControlModel:
    """The derived control layer: all valves plus per-task patterns."""

    valves: list[Valve] = field(default_factory=list)
    patterns: list[TaskPattern] = field(default_factory=list)

    @property
    def valve_count(self) -> int:
        return len(self.valves)

    def control_pins_direct(self) -> int:
        """Pins with one dedicated control line per valve."""
        return self.valve_count

    def control_pins_multiplexed(self) -> int:
        """Pins with a fully multiplexed control scheme (binary
        addressing, the asymptotic bound the control-layer literature
        targets): ``ceil(log2(n)) + 1`` lines for ``n`` valves."""
        import math

        if self.valve_count == 0:
            return 0
        return math.ceil(math.log2(self.valve_count)) + 1


def _routed_adjacency(routing: RoutingResult) -> dict[Cell, list[Cell]]:
    assert routing.grid is not None
    used = routing.grid.used_cells()
    adjacency: dict[Cell, list[Cell]] = {}
    for cell in used:
        adjacency[cell] = [n for n in cell.neighbours() if n in used]
    return adjacency


def build_control_model(routing: RoutingResult) -> ControlModel:
    """Derive the control layer from a routed flow layer.

    Valves are created on every channel arm of every junction cell and
    on every (component, port) attachment actually used by some path.
    Each task's pattern opens the valves along its own path and closes
    the other arms of the junctions it crosses.
    """
    adjacency = _routed_adjacency(routing)
    junction_cells = {cell for cell, nbrs in adjacency.items() if len(nbrs) >= 3}

    valves: set[Valve] = set()
    for cell in junction_cells:
        for neighbour in adjacency[cell]:
            valves.add(Valve.between(cell, neighbour))

    # Port valves for every (port cell, component) attachment in use.
    port_valves: dict[tuple[Cell, str], Valve] = {}
    for path in routing.paths:
        for cell, cid in (
            (path.cells[0], path.task.src_component),
            (path.cells[-1], path.task.dst_component),
        ):
            key = (cell, cid)
            if key not in port_valves:
                valve = Valve.port(cell, cid)
                port_valves[key] = valve
                valves.add(valve)

    patterns: list[TaskPattern] = []
    for path in routing.paths:
        states: dict[Valve, ValveState] = {}
        path_cells = set(path.cells)
        # Open the junction arms the path actually traverses...
        for a, b in zip(path.cells, path.cells[1:]):
            if a in junction_cells or b in junction_cells:
                states[Valve.between(a, b)] = ValveState.OPEN
        # ...close every other arm of the junctions on the path.
        for cell in path.cells:
            if cell not in junction_cells:
                continue
            for neighbour in adjacency[cell]:
                valve = Valve.between(cell, neighbour)
                if valve not in states:
                    states[valve] = ValveState.CLOSED
        # Open the two port valves; close other ports touching the path.
        for cell, cid in (
            (path.cells[0], path.task.src_component),
            (path.cells[-1], path.task.dst_component),
        ):
            states[port_valves[(cell, cid)]] = ValveState.OPEN
        for (cell, cid), valve in port_valves.items():
            if cell in path_cells and valve not in states:
                states[valve] = ValveState.CLOSED
        patterns.append(
            TaskPattern(
                task_id=path.task.task_id,
                start=path.slot.start,
                states=states,
            )
        )
    patterns.sort(key=lambda p: (p.start, p.task_id))
    ordered_valves = sorted(valves, key=lambda v: (v.end_a, str(v.end_b)))
    return ControlModel(valves=ordered_valves, patterns=patterns)

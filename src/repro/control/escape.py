"""Control-line escape planning.

Each valve on the flow layer is actuated through a control line that
must *escape* to a pressure pin on the chip boundary.  This module
assigns every valve to a boundary pin and estimates the control-layer
wiring:

* pins sit on the perimeter of the (same-size) control layer, spaced at
  least one cell apart;
* each valve is matched to the free pin minimising the Manhattan
  distance (greedy over valves sorted by their distance-to-boundary, so
  inner valves — which have the least routing freedom — choose first);
* line length is estimated as the Manhattan distance (control layers in
  PDMS chips are multi-layer and may cross, so no conflict resolution
  is needed for an estimate — documented simplification).

The resulting :class:`EscapePlan` reports total and per-valve wire
length and whether the boundary offers enough pins; combined with
:mod:`repro.control.switching` it completes the control-layer cost
picture the paper's future work points at.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.valves import ControlModel, Valve
from repro.errors import ValidationError
from repro.place.grid import Cell, ChipGrid

__all__ = ["EscapePlan", "plan_control_escape"]


@dataclass(frozen=True)
class EscapeLine:
    """One valve's control line."""

    valve: Valve
    pin: Cell
    length_cells: int


@dataclass(frozen=True)
class EscapePlan:
    """Pin assignment and wiring estimate for a control model.

    When the boundary offers fewer pins than there are valves, pins are
    shared through on-chip multiplexers: each pin drives up to
    ``multiplex_ratio`` valves (the balanced-load ceiling), which is the
    standard control-layer answer to pin scarcity ([13])."""

    lines: tuple[EscapeLine, ...]
    available_pins: int

    @property
    def total_length_cells(self) -> int:
        return sum(line.length_cells for line in self.lines)

    @property
    def valve_count(self) -> int:
        return len(self.lines)

    @property
    def pin_count(self) -> int:
        """Distinct boundary pins actually used."""
        return len({line.pin for line in self.lines})

    @property
    def multiplex_ratio(self) -> int:
        """Largest number of valves sharing one pin (1 = no sharing)."""
        if not self.lines:
            return 0
        loads: dict[Cell, int] = {}
        for line in self.lines:
            loads[line.pin] = loads.get(line.pin, 0) + 1
        return max(loads.values())

    @property
    def feasible(self) -> bool:
        """Whether every valve received a pin (possibly shared)."""
        return True if not self.lines else self.pin_count <= self.available_pins

    def length_mm(self, pitch_mm: float) -> float:
        return self.total_length_cells * pitch_mm


def _valve_anchor(valve: Valve) -> Cell:
    """The flow-layer cell a valve's control line starts from."""
    x, y = valve.end_a
    return Cell(x, y)


def _boundary_pins(grid: ChipGrid, spacing: int = 2) -> list[Cell]:
    """Perimeter pin sites, every *spacing* cells, clockwise."""
    pins: list[Cell] = []
    for x in range(0, grid.width, spacing):
        pins.append(Cell(x, 0))
    for y in range(spacing, grid.height, spacing):
        pins.append(Cell(grid.width - 1, y))
    for x in range(grid.width - 1 - spacing, -1, -spacing):
        pins.append(Cell(x, grid.height - 1))
    for y in range(grid.height - 1 - spacing, 0, -spacing):
        pins.append(Cell(0, y))
    # Deduplicate while keeping order (corners can repeat).
    seen: set[Cell] = set()
    unique = []
    for pin in pins:
        if pin not in seen:
            seen.add(pin)
            unique.append(pin)
    return unique


def _distance_to_boundary(cell: Cell, grid: ChipGrid) -> int:
    return min(
        cell.x, cell.y, grid.width - 1 - cell.x, grid.height - 1 - cell.y
    )


def plan_control_escape(
    model: ControlModel, grid: ChipGrid, pin_spacing: int = 2
) -> EscapePlan:
    """Assign every valve of *model* to a boundary pin on *grid*.

    Raises :class:`ValidationError` when the perimeter cannot offer
    enough pins even at spacing 1.
    """
    if pin_spacing < 1:
        raise ValidationError("pin spacing must be at least 1")
    pins = _boundary_pins(grid, pin_spacing)
    if len(pins) < len(model.valves) and pin_spacing > 1:
        pins = _boundary_pins(grid, 1)
    available = len(pins)
    if available == 0:
        raise ValidationError("the grid boundary offers no pin sites")
    if not model.valves:
        return EscapePlan(lines=(), available_pins=available)

    # Balanced multiplexing: each pin serves at most ceil(V/P) valves.
    capacity = -(-len(model.valves) // available)
    loads = {pin: 0 for pin in pins}

    # Inner valves first: they are the most constrained.
    order = sorted(
        model.valves,
        key=lambda v: (
            -_distance_to_boundary(_valve_anchor(v), grid),
            _valve_anchor(v),
        ),
    )
    lines = []
    for valve in order:
        anchor = _valve_anchor(valve)
        pin = min(
            (p for p in pins if loads[p] < capacity),
            key=lambda p: (anchor.manhattan(p), p),
        )
        loads[pin] += 1
        lines.append(
            EscapeLine(
                valve=valve, pin=pin, length_cells=anchor.manhattan(pin)
            )
        )
    return EscapePlan(lines=tuple(lines), available_pins=available)

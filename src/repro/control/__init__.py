"""Control-layer extension: valve derivation and switching optimisation.

Implements the paper's stated future work (control-logic optimisation,
ref [13]) on top of the routed flow layer.
"""

from repro.control.escape import EscapePlan, plan_control_escape
from repro.control.switching import (
    SwitchingReport,
    optimise_switching,
    switching_cost_hold,
    switching_cost_naive,
)
from repro.control.valves import (
    ControlModel,
    TaskPattern,
    Valve,
    ValveState,
    build_control_model,
)

__all__ = [
    "ControlModel",
    "EscapePlan",
    "SwitchingReport",
    "TaskPattern",
    "Valve",
    "ValveState",
    "build_control_model",
    "optimise_switching",
    "plan_control_escape",
    "switching_cost_hold",
    "switching_cost_naive",
]

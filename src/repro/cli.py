"""Command-line interface: ``repro-synthesize``.

Synthesise a benchmark or a custom assay JSON from the shell::

    repro-synthesize PCR                         # benchmark by name
    repro-synthesize my_assay.json -m 3 -d 2     # custom assay + allocation
    repro-synthesize CPA --algorithm baseline --svg layout.svg
    repro-synthesize IVD --show-layout --show-schedule
    repro-synthesize PCR --profile --trace trace.jsonl
    repro-synthesize CPA --restarts 8 --jobs 4   # multi-start placement
    repro-synthesize CPA --portfolio 8 --jobs 4  # raced arm portfolio

The assay argument is resolved as a benchmark name first and as a JSON
file path (written by :func:`repro.assay.dump_assay`) second.  For
custom assays the allocation must be given through ``-m/-H/-f/-d``;
benchmarks carry their Table I allocation.

``--profile`` prints the per-phase time breakdown, algorithm counters,
and latency histograms after the run, and samples process resources
(RSS / CPU / GC) in the background; ``--trace PATH.jsonl`` streams the
full structured event trace (see ``docs/OBSERVABILITY.md``);
``--live`` renders a refreshing per-worker progress line during
multi-start placement.  All compose with either ``--algorithm``.

Every successful run appends one record to the run ledger
(``.repro/ledger.jsonl`` by default; ``--ledger PATH`` redirects,
``--no-ledger`` opts out) — query it with ``python -m repro stats``.

Exit codes: 0 on success, 2 for command-line usage errors (argparse),
:data:`EXIT_REPRO_ERROR` (3) for any :class:`~repro.errors.ReproError`
— printed as a one-line message, never a traceback.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.assay.io import load_assay
from repro.benchmarks.registry import benchmark_names, get_benchmark
from repro.check.report import CHECK_MODES
from repro.components.allocation import Allocation
from repro.core.baseline import synthesize_baseline
from repro.core.problem import SynthesisParameters
from repro.core.synthesizer import synthesize
from repro.errors import ReproError
from repro.obs.instrument import Instrumentation
from repro.obs.sinks import JsonlSink, NullSink
from repro.place.annealing import PLACEMENT_ENGINES
from repro.route.router import DEFAULT_ROUTE_ENGINE, ROUTE_ENGINES

__all__ = ["build_parser", "run", "main", "EXIT_REPRO_ERROR"]

#: Exit code for domain failures (:class:`ReproError`), distinct from
#: argparse's usage-error code 2 and the generic 1.
EXIT_REPRO_ERROR = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-synthesize",
        description=(
            "Physical synthesis of a flow-based microfluidic biochip "
            "with distributed channel storage (DATE 2019)."
        ),
    )
    parser.add_argument(
        "assay",
        help=(
            "benchmark name "
            f"({', '.join(benchmark_names())}) or path to an assay JSON"
        ),
    )
    parser.add_argument(
        "--algorithm",
        choices=("ours", "baseline"),
        default="ours",
        help="synthesis flow to run (default: ours)",
    )
    parser.add_argument("-m", "--mixers", type=int, default=0,
                        help="allocated mixers (custom assays)")
    parser.add_argument("-H", "--heaters", type=int, default=0,
                        help="allocated heaters (custom assays)")
    parser.add_argument("-f", "--filters", type=int, default=0,
                        help="allocated filters (custom assays)")
    parser.add_argument("-d", "--detectors", type=int, default=0,
                        help="allocated detectors (custom assays)")
    parser.add_argument("--seed", type=int, default=1,
                        help="annealer seed (default: 1)")
    parser.add_argument("--engine",
                        choices=PLACEMENT_ENGINES,
                        default="incremental",
                        help="SA placement engine: the incremental "
                             "delta-energy workspace, the numpy batch "
                             "best-of-K kernel, or the reference "
                             "full-recompute path; incremental and "
                             "reference give identical seeded results, "
                             "and batch matches them at --batch-size 1 "
                             "(default: incremental)")
    parser.add_argument("--batch-size", type=int, default=16,
                        help="candidates proposed per SA step by "
                             "--engine batch; 1 degenerates to the "
                             "incremental move loop bit for bit, larger "
                             "values trade acceptance rate for "
                             "vectorized throughput (default: 16)")
    parser.add_argument("--route-engine",
                        choices=ROUTE_ENGINES,
                        default=DEFAULT_ROUTE_ENGINE,
                        help="routing engine: the flat integer-indexed "
                             "array state or the reference Cell/dict "
                             "path; both give byte-identical routes "
                             f"(default: {DEFAULT_ROUTE_ENGINE})")
    parser.add_argument("--restarts", type=int, default=1,
                        help="independent SA restarts; the best placement "
                             "wins deterministically (default: 1)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the restarts; the "
                             "result is identical for every value "
                             "(default: 1, 0 = one per CPU)")
    parser.add_argument("--portfolio", type=int, default=0, metavar="N",
                        help="race N heterogeneous SA configurations "
                             "(arms) under successive halving instead of "
                             "identical restarts; deterministic for any "
                             "--jobs value (default: 0 = off)")
    parser.add_argument("--arms", type=str, default="", metavar="SPEC",
                        help="explicit comma-separated arm specs for the "
                             "portfolio race, e.g. "
                             "'inc,batch:k=64,inc:init=greedy:w=2/1/1' "
                             "(implies portfolio mode; default: the "
                             "built-in palette)")
    parser.add_argument("--rungs", type=int, default=3,
                        help="successive-halving checkpoint rungs for "
                             "--portfolio (default: 3)")
    parser.add_argument("--seed-derivation",
                        choices=("legacy", "splitmix"),
                        default="legacy",
                        help="restart/arm seed derivation: 'legacy' is "
                             "the historical seed*1000+k formula "
                             "(bit-compatible, collides across nearby "
                             "seeds), 'splitmix' the collision-free "
                             "SplitMix64 mix (default: legacy)")
    parser.add_argument("--tc", type=float, default=2.0,
                        help="transport time t_c in seconds (default: 2.0)")
    parser.add_argument("--check",
                        choices=CHECK_MODES,
                        default="off",
                        help="audit the result with the independent "
                             "design-rule checker: 'report' attaches and "
                             "prints the verdict, 'strict' additionally "
                             "fails the run on any violation "
                             "(default: off)")
    parser.add_argument("--svg", type=Path, default=None,
                        help="write the routed layout to this SVG file")
    parser.add_argument("--show-layout", action="store_true",
                        help="print the ASCII layout")
    parser.add_argument("--show-schedule", action="store_true",
                        help="print the ASCII schedule")
    parser.add_argument("--profile", action="store_true",
                        help="print the per-phase time breakdown and "
                             "algorithm counters after the run")
    parser.add_argument("--trace", type=Path, default=None, metavar="PATH.jsonl",
                        help="stream structured instrumentation events "
                             "(spans, counters, SA convergence) to this "
                             "JSONL file; convert with "
                             "'python -m repro trace2chrome'")
    parser.add_argument("--live", action="store_true",
                        help="render a live per-worker progress line "
                             "(SA temperature/energy) during multi-start "
                             "placement")
    parser.add_argument("--ledger", type=Path, default=None, metavar="PATH",
                        help="append this run's record to the given run "
                             "ledger (default: .repro/ledger.jsonl; "
                             "query with 'python -m repro stats')")
    parser.add_argument("--no-ledger", action="store_true",
                        help="skip the run-ledger append entirely")
    return parser


def _resolve(args: argparse.Namespace):
    """Return (assay, allocation) from a benchmark name or JSON path."""
    if args.assay in benchmark_names():
        case = get_benchmark(args.assay)
        return case.assay, case.allocation
    path = Path(args.assay)
    if not path.exists():
        raise ReproError(
            f"{args.assay!r} is neither a benchmark name nor an existing "
            "assay file"
        )
    assay = load_assay(path)
    allocation = Allocation(
        mixers=args.mixers,
        heaters=args.heaters,
        filters=args.filters,
        detectors=args.detectors,
    )
    return assay, allocation


def run(argv: list[str]) -> int:
    """Parse *argv* and run the requested synthesis; returns exit code."""
    args = build_parser().parse_args(argv)
    try:
        sink = JsonlSink(args.trace) if args.trace is not None else NullSink()
    except OSError as error:
        print(f"error: cannot open trace file: {error}", file=sys.stderr)
        return EXIT_REPRO_ERROR
    instrumentation = Instrumentation(sink)
    sampler = None
    if args.profile:
        from repro.obs.resources import ResourceSampler

        sampler = ResourceSampler(instrumentation)
    monitor = None
    if args.live:
        from repro.obs.live import LiveProgressMonitor

        monitor = LiveProgressMonitor(
            stream=sys.stderr, instrumentation=instrumentation
        )
    try:
        assay, allocation = _resolve(args)
        parameters = SynthesisParameters(
            seed=args.seed,
            transport_time=args.tc,
            placement_engine=args.engine,
            sa_batch_size=args.batch_size,
            route_engine=args.route_engine,
            restarts=args.restarts,
            jobs=args.jobs,
            portfolio=args.portfolio,
            arms=args.arms,
            rungs=args.rungs,
            seed_derivation=args.seed_derivation,
            check=args.check,
        )
        if sampler is not None:
            sampler.start()
        if monitor is not None:
            monitor.start()
        if args.algorithm == "ours":
            result = synthesize(
                assay, allocation, parameters, instrumentation=instrumentation
            )
        else:
            result = synthesize_baseline(
                assay, allocation, parameters, instrumentation=instrumentation
            )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_REPRO_ERROR
    finally:
        if monitor is not None:
            monitor.stop()
        if sampler is not None:
            sampler.stop()
        sink.close()

    if not args.no_ledger:
        from repro.obs.ledger import record_run

        try:
            ledger_path = record_run(
                result,
                instrumentation=instrumentation,
                path=args.ledger,
                checkpoints=monitor.checkpoints() if monitor is not None else None,
            )
        except OSError as error:
            print(f"warning: ledger append failed: {error}", file=sys.stderr)
        else:
            # On stderr so stdout stays a pure function of the synthesis
            # configuration (the reproducibility tests diff it).
            print(f"ledger: appended to {ledger_path}", file=sys.stderr)

    print(result.summary())
    if result.check_report is not None:
        print()
        print(result.check_report.render())
    if args.show_layout:
        from repro.viz.ascii_art import render_routing

        print()
        print(render_routing(result.routing))
    if args.show_schedule:
        from repro.viz.ascii_art import render_schedule

        print()
        print(render_schedule(result.schedule))
    if args.svg is not None:
        from repro.viz.svg import layout_to_svg

        args.svg.write_text(layout_to_svg(result.routing), encoding="utf-8")
        print(f"\nwrote {args.svg}")
    if args.profile:
        from repro.obs.report import render_report

        print()
        print(render_report(instrumentation))
    if args.trace is not None:
        print(f"\nwrote trace to {args.trace}")
    return 0


def main() -> None:  # pragma: no cover - thin wrapper
    raise SystemExit(run(sys.argv[1:]))


if __name__ == "__main__":  # pragma: no cover
    main()

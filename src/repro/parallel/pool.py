"""Process-pool task fan-out with deterministic result order.

:func:`run_tasks` is the single pool primitive the rest of the code
builds on.  Its contract:

* Results come back in **submission order**, never completion order —
  every caller's reduction is therefore independent of scheduling.
* ``jobs=1`` runs the tasks inline in the calling process: no fork, no
  pickling, exceptions propagate natively.  This is the reference
  behaviour the pooled path must reproduce.
* ``jobs>1`` dispatches to a :class:`~concurrent.futures.ProcessPoolExecutor`.
  A :class:`~repro.errors.ReproError` raised inside a worker crosses
  the pool boundary losslessly: the worker catches it, ships
  ``(type, message, traceback text)`` back as data, and the parent
  re-raises an exception of the *original type* with the *original
  message* (the formatted worker traceback is attached as
  ``worker_traceback``).  Plain exception pickling cannot guarantee
  this — subclasses with custom ``__init__`` signatures (e.g.
  :class:`~repro.errors.GraphCycleError`) round-trip incorrectly — and
  a bare ``BrokenProcessPool`` would break the CLI's exit-code-3
  contract for domain errors.
* Pool-infrastructure failures (a dead worker, a timeout) surface as
  :class:`~repro.errors.ParallelExecutionError`, which *is* a
  :class:`~repro.errors.ReproError`, so existing ``except ReproError``
  guards and the CLI exit code keep working.

:class:`PoolSession` is the wave-oriented sibling of :func:`run_tasks`:
one long-lived worker pool that serves *multiple* submission waves.
The portfolio racer (:mod:`repro.parallel.portfolio`) pauses arms at
checkpoint rungs, and each rung is one wave — reusing the session means
workers are forked once per race, not once per rung, and the picklable
checkpoints are the only state that crosses the boundary (the
*checkpoint transport protocol*: payloads carry resume checkpoints in,
results carry advanced checkpoints out, both under the same
:class:`ReproError`-as-data transport as :func:`run_tasks`).  A broken
or timed-out session is poisoned: later waves fail fast with
:class:`ParallelExecutionError` instead of dispatching onto a dead
pool, so no wave can silently orphan its tasks.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from traceback import format_exc
from typing import Any, Callable, Iterable, Sequence

from repro.errors import (
    ParallelExecutionError,
    ParallelTimeoutError,
    ReproError,
)

__all__ = ["PoolSession", "resolve_jobs", "run_tasks"]


@dataclass(frozen=True)
class _WorkerFailure:
    """Picklable record of a :class:`ReproError` raised in a worker."""

    exc_module: str
    exc_qualname: str
    message: str
    traceback_text: str


def _guarded_call(fn: Callable[[Any], Any], payload: Any) -> Any:
    """Worker-side wrapper: turn domain errors into data, not pickles."""
    try:
        return fn(payload)
    except ReproError as error:
        cls = type(error)
        return _WorkerFailure(
            exc_module=cls.__module__,
            exc_qualname=cls.__qualname__,
            message=str(error),
            traceback_text=format_exc(),
        )


def _rebuild_exception(failure: _WorkerFailure) -> ReproError:
    """Reconstruct the original exception type and message in the parent.

    The class is re-imported and instantiated via ``__new__`` (bypassing
    any custom ``__init__`` signature) with ``args`` set to the original
    message, which is exactly what ``str(exc)`` renders.  Anything that
    goes wrong degrades to a :class:`ParallelExecutionError` carrying
    the same message — still a :class:`ReproError`.
    """
    try:
        module = __import__(failure.exc_module, fromlist=["_"])
        cls = module
        for part in failure.exc_qualname.split("."):
            cls = getattr(cls, part)
        if not (isinstance(cls, type) and issubclass(cls, ReproError)):
            raise TypeError(f"{failure.exc_qualname} is not a ReproError")
        exc = cls.__new__(cls)
        exc.args = (failure.message,)
    except Exception:
        exc = ParallelExecutionError(
            f"{failure.exc_qualname}: {failure.message}"
        )
    exc.worker_traceback = failure.traceback_text
    return exc


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a job count: ``None``/``0`` means one per CPU."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ParallelExecutionError(f"jobs must be >= 1, got {jobs}")
    return jobs


def run_tasks(
    fn: Callable[[Any], Any],
    payloads: Iterable[Any],
    jobs: int = 1,
    timeout: float | None = None,
) -> list[Any]:
    """Apply *fn* to every payload, optionally across a process pool.

    Parameters
    ----------
    fn:
        A module-level (picklable) callable of one argument.
    payloads:
        Task inputs; each must be picklable when ``jobs > 1``.
    jobs:
        Worker processes.  ``1`` runs inline (the reference semantics);
        ``0``/``None`` means one worker per CPU.
    timeout:
        Optional overall deadline in seconds for the pooled path; a
        wedged worker then raises :class:`ParallelExecutionError`
        instead of hanging the parent forever.

    Returns
    -------
    list
        ``[fn(p) for p in payloads]`` — identical (and identically
        ordered) for every ``jobs`` value.
    """
    items: Sequence[Any] = list(payloads)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with PoolSession(jobs=min(jobs, len(items))) as session:
        return session.run(fn, items, timeout=timeout)


class PoolSession:
    """A reusable worker pool serving multiple submission waves.

    Each :meth:`run` call is one *wave*: all payloads are dispatched,
    all results gathered in submission order, and only then does the
    wave return — exactly the :func:`run_tasks` contract, but the
    worker processes persist between waves.  That is the substrate the
    successive-halving racer needs: a rung suspends every arm at its
    checkpoint, the parent ranks and kills, and the next rung's resume
    payloads go to the *same* workers without re-forking the pool.

    ``jobs=1`` runs every wave inline (no processes, native
    exceptions), mirroring :func:`run_tasks`'s reference semantics.

    Failure semantics:

    * a :class:`ReproError` in a worker aborts the wave and re-raises
      in the parent with its original type (the data transport of
      :func:`run_tasks`); the session stays usable — the error was the
      task's, not the pool's;
    * a broken pool raises :class:`ParallelExecutionError` and an
      exceeded wave deadline raises :class:`ParallelTimeoutError` (a
      subclass); both *poison the session*: every later :meth:`run`
      fails fast with the stored reason, so a caller iterating waves
      can never dispatch work onto a dead pool or strand a wave's
      tasks half-submitted.  Poisoning is *recoverable*: a long-lived
      caller (the synthesis server) calls :meth:`reset` to discard the
      dead pool and re-fork workers on the next wave — queued work
      held by the caller is never lost to a single dead worker.

    The session is safe to use from multiple threads: waves may be
    submitted concurrently (the synthesis server runs one wave per
    in-flight job), and pool creation / poisoning / reset are
    serialised internally.  Note that one wave's deadline poisoning
    terminates the shared workers, so sibling waves fail with
    :class:`ParallelExecutionError` and should be retried after a
    :meth:`reset`.
    """

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = resolve_jobs(jobs)
        self._pool: ProcessPoolExecutor | None = None
        self._broken: str | None = None
        self._lock = threading.Lock()
        #: Pools generations created over this session's lifetime
        #: (1 fork + 1 per reset-after-poison); telemetry only.
        self.generations = 0

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "PoolSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def reset(self) -> None:
        """Recover a poisoned session: drop the dead pool, clear the poison.

        The next :meth:`run` forks a fresh worker pool.  Nothing the
        caller holds (queued payloads, earlier results) is touched —
        this only discards the broken process-pool infrastructure, so a
        server can retry the interrupted wave instead of wedging.  Safe
        (and a no-op beyond a pool recycle) on a healthy session.
        """
        with self._lock:
            pool, self._pool = self._pool, None
            self._broken = None
        if pool is not None:
            # The pool may hold wedged or dead workers; never block on it.
            pool.shutdown(wait=False, cancel_futures=True)

    @property
    def broken(self) -> str | None:
        """The stored poisoning reason, or ``None`` while healthy."""
        return self._broken

    # -- dispatch -------------------------------------------------------
    def run(
        self,
        fn: Callable[[Any], Any],
        payloads: Iterable[Any],
        timeout: float | None = None,
    ) -> list[Any]:
        """Run one wave: ``[fn(p) for p in payloads]`` in submission order.

        *timeout* is a per-wave deadline in seconds; exceeding it
        poisons the session (see the class docstring).
        """
        items: Sequence[Any] = list(payloads)
        if self.jobs == 1:
            return [fn(item) for item in items]
        if not items:
            return []
        with self._lock:
            if self._broken is not None:
                raise ParallelExecutionError(
                    f"pool session unusable after earlier failure: "
                    f"{self._broken}"
                )
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
                self.generations += 1
            pool = self._pool
        results: list[Any] = []
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            futures = [
                pool.submit(_guarded_call, fn, item) for item in items
            ]
            for future in futures:
                remaining: float | None = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.monotonic())
                try:
                    results.append(future.result(timeout=remaining))
                except FutureTimeoutError:
                    for pending in futures:
                        pending.cancel()
                    self._poison(f"wave timed out after {timeout:.1f}s")
                    raise ParallelTimeoutError(
                        f"worker pool timed out after {timeout:.1f}s "
                        f"({len(results)}/{len(items)} tasks finished)"
                    ) from None
        except BrokenExecutor as error:
            reason = f"worker pool broke: {error or type(error).__name__}"
            self._poison(reason)
            raise ParallelExecutionError(reason) from error
        for result in results:
            if isinstance(result, _WorkerFailure):
                raise _rebuild_exception(result) from None
        return results

    def _poison(self, reason: str) -> None:
        """Record a fatal pool failure and release the workers.

        ``wait=False`` because the pool is already known-broken or
        wedged — blocking on it would hang the parent on exactly the
        failure the deadline was meant to bound.
        """
        with self._lock:
            self._broken = reason
            pool, self._pool = self._pool, None
        if pool is not None:
            # A wedged worker would otherwise be joined at interpreter
            # exit, turning a bounded deadline into an unbounded hang.
            # ``_processes`` is executor-internal but stable across
            # supported CPythons; failing to reach it only loses the
            # hard kill, never correctness.
            try:
                for process in list((pool._processes or {}).values()):
                    process.terminate()
            except Exception:
                pass
            pool.shutdown(wait=False, cancel_futures=True)

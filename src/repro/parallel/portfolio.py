"""Successive-halving portfolio racing for the SA placer.

Multi-start (:mod:`repro.parallel.multistart`) runs ``N`` identical
anneals to completion and keeps the best — even when half the restarts
are visibly losing by the first convergence checkpoint.  This module
replaces that with a *raced portfolio*: a heterogeneous set of anneal
configurations (**arms** — different temperature schedules, move
mixes, greedy-BA initial placements, incremental vs batch kernels with
varying ``K``) advances through deterministic checkpoint **rungs**, and
at every rung the bottom half is killed, so CPU concentrates on the
configurations that are actually winning.

The mechanics:

* **Arms** are parsed from a compact grammar
  (``engine[:key=value]*``, comma-separated — see :func:`parse_arms`)
  or synthesised from the default palette (:func:`default_arms`).
  Arm ``k`` anneals from the seed
  :func:`~repro.parallel.multistart.derive_seed` gives restart ``k``,
  so arm 0 with default settings walks *exactly* the single-run
  trajectory — the racer's floor is the plain anneal, and the shared
  initial energy anchors cross-solver efficiency comparisons.
* **Rungs** are cumulative *candidate-evaluation* budgets derived
  from the *base* schedule's total (:func:`rung_budgets`): rung ``r``
  of ``R`` pauses every live arm at ``total >> (R - r)`` evaluated
  candidate moves (the last rung runs to the full budget).  For
  incremental arms one inner-loop iteration is one candidate; a batch
  arm evaluates ``K`` candidates per iteration, so it gets
  ``budget // K`` iterations (and, by default, ``imax // K``
  iterations per temperature level — the same candidate count and
  temperature sweep as everyone else).  Arms pause only at
  temperature-step boundaries, and the checkpoint seam
  (:mod:`repro.place.annealing`) guarantees a paused-and-resumed arm
  walks bit-identically to an uninterrupted one, so the rung energies
  are a pure function of the arm set.
* **Kills** rank live arms under the total order
  ``(checkpoint energy, seed, arm_id)`` and keep the top
  ``(live + 1) // 2``.  The order is total (arm ids are unique), so
  the kill sequence — and hence the winner — is bit-reproducible for
  a fixed arm set and *independent of* ``jobs``: worker count only
  changes scheduling, never results.
* **Transport** rides :class:`~repro.parallel.pool.PoolSession`: one
  worker pool serves every rung, checkpoints travel out as payloads
  and back as results under the ``ReproError``-as-data contract, and
  the slots freed by killed arms are reabsorbed by the next wave's
  survivors.

Telemetry: every rung emits a ``portfolio.rung`` event (budget,
survivors, checkpoint energies), every kill a ``portfolio.kill``
event; per-arm convergence traces are worker-namespaced by arm index
and replayed into traced runs; live progress rows are labelled with
arm ids.  ``PortfolioResult.summary`` is the ledger payload — winning
arm, rungs survived, CPU spent, and the
``energy_per_cpu_second`` efficiency the bench gate compares against
plain multi-start.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace as dataclass_replace

from repro.errors import PlacementError
from repro.obs.events import Event
from repro.obs.instrument import Instrumentation, InstrumentationSnapshot
from repro.obs.live import HeartbeatSpec, active_monitor
from repro.obs.sinks import RecordingSink, Sink, TeeSink
from repro.parallel.multistart import derive_seed
from repro.parallel.pool import PoolSession, resolve_jobs
from repro.place.annealing import (
    AnnealCheckpoint,
    AnnealingParameters,
    AnnealingResult,
    anneal_resume,
    anneal_start,
)
from repro.place.energy import ConnectionPriorities, placement_energy
from repro.place.grid import ChipGrid

__all__ = [
    "ArmOutcome",
    "PortfolioArm",
    "PortfolioResult",
    "default_arms",
    "parse_arms",
    "race_portfolio",
    "resolve_arms",
    "rung_budgets",
]

_ENGINE_ALIASES = {
    "inc": "incremental",
    "incremental": "incremental",
    "batch": "batch",
}
_ENGINE_SHORT = {"incremental": "inc", "batch": "batch"}

#: Arm configurations cycled by :func:`default_arms` (numpy present).
DEFAULT_PALETTE = (
    "inc",
    "batch:k=16",
    "inc:init=greedy",
    "inc:w=2/1/1",
    "batch:k=64",
    "inc:cool=0.8",
    "inc:T0=1000",
    "batch:k=32:init=greedy",
)

#: Correction-pass budget for ``init=greedy`` arm seeds.  The full BA
#: correction (10 passes of O(n^2) swap sweeps) costs more CPU than an
#: entire rung on the scale tier; two passes capture most of the
#: wirelength gain and leave the real correction to the anneal itself.
GREEDY_INIT_PASSES = 2

#: Pure-python palette used when numpy (the batch kernel) is absent.
FALLBACK_PALETTE = (
    "inc",
    "inc:w=1/2/1",
    "inc:init=greedy",
    "inc:w=2/1/1",
    "inc:cool=0.8",
    "inc:T0=1000",
    "inc:cool=0.95",
    "inc:w=1/1/2",
)


@dataclass(frozen=True)
class PortfolioArm:
    """One raced anneal configuration (picklable).

    ``arm_id`` is ``a<index, zero-padded>:<engine>`` — the zero padding
    makes lexicographic order match launch order, so the
    ``(energy, seed, arm_id)`` kill ranking is total and stable.
    Schedule fields left ``None`` inherit the base
    :class:`~repro.place.annealing.AnnealingParameters`.
    """

    arm_id: str
    spec: str
    engine: str
    seed: int
    batch_size: int | None = None
    initial_temperature: float | None = None
    min_temperature: float | None = None
    cooling_rate: float | None = None
    iterations_per_temperature: int | None = None
    init: str = "random"
    move_weights: tuple[float, float, float] | None = None

    def parameters(self, base: AnnealingParameters) -> AnnealingParameters:
        """The arm's schedule: *base* with this arm's overrides applied.

        A batch arm evaluates ``batch_size`` candidates per inner-loop
        iteration, so unless ``imax`` is overridden explicitly its
        iterations-per-temperature default to
        ``base.imax // batch_size`` — every arm then proposes the same
        number of *candidates* per temperature level and sweeps the
        same temperature range, which is what makes the racer's
        candidate-evaluation budgets comparable across engines.
        """
        overrides: dict[str, object] = {"move_weights": self.move_weights}
        k = 1
        if self.engine == "batch":
            k = (
                self.batch_size if self.batch_size is not None
                else base.batch_size
            )
            overrides["batch_size"] = k
        else:
            overrides["batch_size"] = 1
        for name in (
            "initial_temperature",
            "min_temperature",
            "cooling_rate",
            "iterations_per_temperature",
        ):
            value = getattr(self, name)
            if value is not None:
                overrides[name] = value
        if k > 1 and self.iterations_per_temperature is None:
            overrides["iterations_per_temperature"] = max(
                1, base.iterations_per_temperature // k
            )
        return dataclass_replace(base, **overrides)

    def candidates_per_iteration(self, base: AnnealingParameters) -> int:
        """Candidate moves one inner-loop iteration of this arm evaluates."""
        return self.parameters(base).batch_size


def _parse_weights(text: str) -> tuple[float, float, float]:
    parts = text.split("/")
    if len(parts) != 3:
        raise PlacementError(
            f"move weights must be three '/'-separated numbers "
            f"(translate/swap/rotate), got {text!r}"
        )
    try:
        weights = tuple(float(p) for p in parts)
    except ValueError as error:
        raise PlacementError(f"bad move weights {text!r}: {error}") from None
    return weights  # AnnealingParameters validates signs and the sum


def _parse_arm_token(token: str, index: int, seed: int) -> PortfolioArm:
    parts = token.strip().split(":")
    engine_alias = parts[0].strip().lower()
    engine = _ENGINE_ALIASES.get(engine_alias)
    if engine is None:
        raise PlacementError(
            f"arm {index}: unknown engine {parts[0]!r} "
            f"(expected one of {sorted(set(_ENGINE_ALIASES))})"
        )
    fields: dict[str, object] = {}
    canonical: list[str] = [_ENGINE_SHORT[engine]]
    for part in parts[1:]:
        key, sep, value = part.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if not sep or not value:
            raise PlacementError(
                f"arm {index}: expected key=value, got {part!r}"
            )
        try:
            if key == "k":
                if engine != "batch":
                    raise PlacementError(
                        f"arm {index}: k= only applies to the batch engine"
                    )
                fields["batch_size"] = int(value)
            elif key == "t0":
                fields["initial_temperature"] = float(value)
            elif key == "tmin":
                fields["min_temperature"] = float(value)
            elif key == "cool":
                fields["cooling_rate"] = float(value)
            elif key == "imax":
                fields["iterations_per_temperature"] = int(value)
            elif key == "init":
                if value not in ("random", "greedy"):
                    raise PlacementError(
                        f"arm {index}: init must be random or greedy, "
                        f"got {value!r}"
                    )
                fields["init"] = value
            elif key == "w":
                fields["move_weights"] = _parse_weights(value)
            else:
                raise PlacementError(
                    f"arm {index}: unknown arm key {key!r} (expected one "
                    f"of k, T0, Tmin, cool, imax, init, w)"
                )
        except ValueError as error:
            raise PlacementError(
                f"arm {index}: bad value in {part!r}: {error}"
            ) from None
        canonical.append(f"{key}={value}")
    return PortfolioArm(
        arm_id=f"a{index:03d}:{_ENGINE_SHORT[engine]}",
        spec=":".join(canonical),
        engine=engine,
        seed=seed,
        **fields,  # type: ignore[arg-type]
    )


def parse_arms(
    spec: str,
    base_seed: int = 0,
    seed_derivation: str = "legacy",
) -> tuple[PortfolioArm, ...]:
    """Parse a comma-separated arm-spec string into arms.

    Grammar (case-insensitive keys)::

        arms   := arm ("," arm)*
        arm    := engine (":" key "=" value)*
        engine := "inc" | "batch"
        key    := "k"                  # batch lanes (batch engine only)
                | "T0" | "Tmin"        # temperature schedule overrides
                | "cool" | "imax"
                | "init"               # "random" (default) | "greedy"
                | "w"                  # move mix "t/s/r", e.g. 2/1/1

    Arm ``k`` gets the same derived seed restart ``k`` would (arm 0
    keeps the base seed).  Invalid schedule values surface as
    :class:`~repro.errors.PlacementError` at parse time via
    :class:`~repro.place.annealing.AnnealingParameters` validation.
    """
    tokens = [token for token in spec.split(",") if token.strip()]
    if not tokens:
        raise PlacementError("empty portfolio arm spec")
    arms = tuple(
        _parse_arm_token(token, i, derive_seed(base_seed, i, seed_derivation))
        for i, token in enumerate(tokens)
    )
    # Validate schedule overrides eagerly (wrong cool/T0 combos raise
    # here, at configuration time, not inside a pool worker).
    base = AnnealingParameters()
    for arm in arms:
        arm.parameters(base)
    return arms


def default_arms(count: int) -> str:
    """The default heterogeneous arm-spec string for *count* arms.

    Cycles :data:`DEFAULT_PALETTE`; without numpy the batch kernel is
    unavailable, so :data:`FALLBACK_PALETTE` (pure-python variants)
    is cycled instead.  Beyond one palette cycle, configurations repeat
    but seeds keep diverging — repeats degrade to plain multi-start of
    the best-looking configs, never to wasted duplicates.
    """
    if count < 1:
        raise PlacementError(f"portfolio needs >= 1 arm, got {count}")
    try:
        import numpy  # noqa: F401

        palette = DEFAULT_PALETTE
    except ImportError:  # pragma: no cover - the test image ships numpy
        palette = FALLBACK_PALETTE
    return ",".join(palette[i % len(palette)] for i in range(count))


def resolve_arms(
    portfolio: int,
    arms: str = "",
    base_seed: int = 0,
    seed_derivation: str = "legacy",
) -> tuple[PortfolioArm, ...]:
    """Turn the ``(portfolio, arms)`` parameter pair into arm objects.

    An explicit *arms* spec wins (its length must match *portfolio*
    when both are given); otherwise the default palette supplies
    *portfolio* arms.
    """
    if arms:
        parsed = parse_arms(arms, base_seed, seed_derivation)
        if portfolio and portfolio != len(parsed):
            raise PlacementError(
                f"--portfolio {portfolio} disagrees with --arms "
                f"({len(parsed)} arm specs)"
            )
        return parsed
    return parse_arms(default_arms(portfolio), base_seed, seed_derivation)


def rung_budgets(total_iterations: int, rungs: int) -> tuple[int, ...]:
    """Cumulative candidate budgets of each rung (last = full budget).

    Rung ``r`` (1-based) of ``R`` pauses arms at
    ``total >> (R - r)`` evaluated candidate moves: successive rungs
    double the budget and the final rung always equals the full
    schedule, so survivors of the last kill run to completion.  For
    the incremental engine one candidate is one inner-loop iteration;
    batch arms divide the budget by their lane count.
    """
    if rungs < 1:
        raise PlacementError(f"rungs must be >= 1, got {rungs}")
    if total_iterations < 1:
        raise PlacementError(
            f"total iteration budget must be >= 1, got {total_iterations}"
        )
    return tuple(
        max(1, total_iterations >> (rungs - r)) for r in range(1, rungs + 1)
    )


# ----------------------------------------------------------------------
# Pool payloads / results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ArmRungTask:
    """Picklable description of one arm's advance to one rung budget."""

    arm: PortfolioArm
    parameters: AnnealingParameters
    priorities: ConnectionPriorities
    until_iterations: int
    #: ``None`` on the first rung — the worker starts the anneal.
    checkpoint: AnnealCheckpoint | None = None
    grid: ChipGrid | None = None
    footprints: dict[str, tuple[int, int]] | None = None
    #: Pre-built initial placement for ``init=greedy`` arms — computed
    #: once in the parent and shared, so N greedy arms pay the BA
    #: construction cost once, not N times.
    initial: object | None = None
    #: Arm index — the event/snapshot worker namespace.
    index: int = 0
    capture_events: bool = False
    heartbeat: HeartbeatSpec | None = None


@dataclass(frozen=True)
class ArmOutcome:
    """One arm's state after a rung (the pool result payload)."""

    arm: PortfolioArm
    checkpoint: AnnealCheckpoint
    #: CPU seconds this rung cost (``time.process_time`` delta in the
    #: worker) — the unit the efficiency gate sums.
    cpu_seconds: float
    snapshot: InstrumentationSnapshot
    events: tuple[Event, ...] = ()


def _run_arm_rung(task: _ArmRungTask) -> ArmOutcome:
    """Worker entry point: start or resume one arm up to the rung budget."""
    cpu_started = time.process_time()
    recorder: RecordingSink | None = None
    sinks: list[Sink] = []
    if task.capture_events:
        recorder = RecordingSink()
        sinks.append(recorder)
    relay = task.heartbeat.build() if task.heartbeat is not None else None
    if relay is not None:
        sinks.append(relay)
    sink: Sink | None
    if not sinks:
        sink = None
    elif len(sinks) == 1:
        sink = sinks[0]
    else:
        sink = TeeSink(*sinks)
    instr = Instrumentation(sink=sink, worker=task.index)
    try:
        checkpoint = task.checkpoint
        if checkpoint is None:
            initial = task.initial
            if initial is None and task.arm.init == "greedy":
                # Fallback for direct callers — race_portfolio always
                # pre-builds and shares the greedy start.
                from repro.place.greedy import greedy_placement

                initial = greedy_placement(
                    task.grid,
                    task.footprints,
                    list(task.priorities.priorities),
                    max_passes=GREEDY_INIT_PASSES,
                )
            checkpoint = anneal_start(
                task.grid,
                task.footprints,
                task.priorities,
                task.parameters,
                seed=task.arm.seed,
                engine=task.arm.engine,
                initial=initial,
            )
        checkpoint = anneal_resume(
            checkpoint,
            task.priorities,
            task.parameters,
            until_iterations=task.until_iterations,
            instrumentation=instr,
        )
    finally:
        if relay is not None:
            relay.close()
    return ArmOutcome(
        arm=task.arm,
        checkpoint=checkpoint,
        cpu_seconds=time.process_time() - cpu_started,
        snapshot=instr.snapshot(),
        events=tuple(recorder.events) if recorder is not None else (),
    )


@dataclass(frozen=True)
class PortfolioResult:
    """The race's outcome: the winning anneal plus the audit trail."""

    result: AnnealingResult
    winner: PortfolioArm
    #: Ledger/bench payload (plain JSON-able types only).
    summary: dict


def _rank_key(outcome: ArmOutcome) -> tuple[float, int, str]:
    """The racer's total order: energy, then seed, then arm id."""
    return (
        outcome.checkpoint.best_energy,
        outcome.arm.seed,
        outcome.arm.arm_id,
    )


def race_portfolio(
    grid: ChipGrid,
    footprints: dict[str, tuple[int, int]],
    priorities: ConnectionPriorities,
    arms: tuple[PortfolioArm, ...],
    parameters: AnnealingParameters | None = None,
    rungs: int = 3,
    jobs: int = 1,
    instrumentation: Instrumentation | None = None,
) -> PortfolioResult:
    """Race *arms* under successive halving; return the winning anneal.

    Determinism contract: the result is a pure function of
    ``(arms, parameters, rungs)`` — ``jobs`` only changes which worker
    advances which arm, never an energy, a kill, or the winner.  The
    winner's reported energy is an exact scalar Eq. 3 evaluation of its
    best placement (batch checkpoints rank by their running vectorized
    energy, which is never reported outward).
    """
    if not arms:
        raise PlacementError("portfolio race needs at least one arm")
    ids = [arm.arm_id for arm in arms]
    if len(set(ids)) != len(ids):
        raise PlacementError(f"duplicate arm ids in portfolio: {ids}")
    params = parameters or AnnealingParameters()
    budgets = rung_budgets(params.total_iterations, rungs)
    capture = instrumentation is not None and instrumentation.active
    monitor = active_monitor()

    arm_params = {arm.arm_id: arm.parameters(params) for arm in arms}
    # The rung budgets count *candidate evaluations*.  A batch arm
    # evaluates batch_size candidates per inner-loop iteration, so its
    # iteration budget is the rung budget divided by its lane count —
    # every arm burns the same number of candidate moves per rung,
    # which is what makes checkpoint energies and the efficiency gate
    # comparable across engines.
    lanes = {
        arm.arm_id: arm_params[arm.arm_id].batch_size for arm in arms
    }
    # One shared greedy start for every init=greedy arm, built here so
    # the BA construction cost is paid once — but charged to the race's
    # CPU total all the same (the efficiency gate must not hide it).
    greedy_initial = None
    greedy_cpu = 0.0
    if any(arm.init == "greedy" for arm in arms):
        from repro.place.greedy import greedy_placement

        greedy_started = time.process_time()
        greedy_initial = greedy_placement(
            grid,
            footprints,
            list(priorities.priorities),
            max_passes=GREEDY_INIT_PASSES,
        )
        greedy_cpu = time.process_time() - greedy_started
    live: list[tuple[int, PortfolioArm]] = list(enumerate(arms))
    states: dict[str, ArmOutcome] = {}
    cpu_by_arm: dict[str, float] = {arm.arm_id: 0.0 for arm in arms}
    killed_at: dict[str, int] = {}
    replays: list[tuple[float, tuple[Event, ...]]] = []

    with PoolSession(jobs=min(resolve_jobs(jobs), len(arms))) as session:
        for rung_index, budget in enumerate(budgets, start=1):
            dispatch_t = (
                instrumentation.now() if instrumentation is not None else 0.0
            )
            tasks = [
                _ArmRungTask(
                    arm=arm,
                    parameters=arm_params[arm.arm_id],
                    priorities=priorities,
                    until_iterations=max(1, budget // lanes[arm.arm_id]),
                    checkpoint=(
                        states[arm.arm_id].checkpoint
                        if arm.arm_id in states
                        else None
                    ),
                    grid=grid,
                    footprints=footprints,
                    initial=(
                        greedy_initial if arm.init == "greedy" else None
                    ),
                    index=index,
                    capture_events=capture,
                    heartbeat=(
                        monitor.spec_for(
                            worker=index, seed=arm.seed, label=arm.arm_id
                        )
                        if monitor is not None and monitor.queue is not None
                        else None
                    ),
                )
                for index, arm in live
            ]
            outcomes = session.run(_run_arm_rung, tasks)
            for (index, arm), outcome in zip(live, outcomes):
                states[arm.arm_id] = outcome
                cpu_by_arm[arm.arm_id] += outcome.cpu_seconds
                if instrumentation is not None:
                    instrumentation.absorb(outcome.snapshot, worker=index)
                if capture:
                    replays.append((dispatch_t, outcome.events))
            ranked = sorted(
                (states[arm.arm_id] for _, arm in live), key=_rank_key
            )
            if instrumentation is not None:
                instrumentation.count("portfolio.rungs")
                instrumentation.event(
                    "portfolio.rung",
                    rung=rung_index,
                    budget=budget,
                    survivors=[o.arm.arm_id for o in ranked],
                    energies={
                        o.arm.arm_id: o.checkpoint.best_energy for o in ranked
                    },
                )
            if rung_index < len(budgets) and len(ranked) > 1:
                keep = (len(ranked) + 1) // 2
                for outcome in ranked[keep:]:
                    killed_at[outcome.arm.arm_id] = rung_index
                    if instrumentation is not None:
                        instrumentation.count("portfolio.kills")
                        instrumentation.event(
                            "portfolio.kill",
                            rung=rung_index,
                            arm=outcome.arm.arm_id,
                            energy=outcome.checkpoint.best_energy,
                            seed=outcome.arm.seed,
                        )
                kept_ids = {o.arm.arm_id for o in ranked[:keep]}
                live = [
                    (index, arm) for index, arm in live
                    if arm.arm_id in kept_ids
                ]

    if capture:
        sink = instrumentation.sink
        for shift, events in replays:
            for event in events:
                sink.emit(dataclass_replace(event, time=event.time + shift))

    final_ranked = sorted(
        (states[arm.arm_id] for _, arm in live), key=_rank_key
    )
    winner_outcome = final_ranked[0]
    winner = winner_outcome.arm
    cp = winner_outcome.checkpoint
    # Report an exact scalar energy, whatever engine won (bit-identical
    # to the tracked value for incremental arms, the authoritative
    # Eq. 3 number for batch arms).
    exact_energy = placement_energy(cp.best_placement, priorities)
    result = AnnealingResult(
        placement=cp.best_placement,
        energy=exact_energy,
        initial_energy=cp.initial_energy,
        accepted_moves=cp.accepted_moves,
        trials=cp.trials,
        energy_trace=list(cp.energy_trace),
        seed=winner.seed,
    )
    total_cpu = sum(cpu_by_arm.values()) + greedy_cpu
    improvement = result.initial_energy - result.energy
    summary = {
        "arms": [
            {
                "arm_id": arm.arm_id,
                "spec": arm.spec,
                "seed": arm.seed,
                "killed_at_rung": killed_at.get(arm.arm_id),
                "best_energy": states[arm.arm_id].checkpoint.best_energy,
                "iterations": states[arm.arm_id].checkpoint.iterations_done,
                "candidates": (
                    states[arm.arm_id].checkpoint.iterations_done
                    * lanes[arm.arm_id]
                ),
                "cpu_seconds": cpu_by_arm[arm.arm_id],
            }
            for arm in arms
        ],
        "rungs": len(budgets),
        "rung_budgets": list(budgets),
        "winner": winner.arm_id,
        "winner_spec": winner.spec,
        "winner_seed": winner.seed,
        "rungs_survived": len(budgets) - (killed_at.get(winner.arm_id, 0)),
        "greedy_init_cpu_seconds": greedy_cpu,
        "energy": result.energy,
        "initial_energy": result.initial_energy,
        "total_cpu_seconds": total_cpu,
        "energy_per_cpu_second": (
            improvement / total_cpu if total_cpu > 0 else 0.0
        ),
    }
    if instrumentation is not None:
        instrumentation.gauge("portfolio.arms", len(arms))
        instrumentation.gauge(
            "portfolio.winner_energy", result.energy
        )
        instrumentation.event(
            "portfolio.winner",
            arm=winner.arm_id,
            spec=winner.spec,
            seed=winner.seed,
            energy=result.energy,
            total_cpu_seconds=total_cpu,
        )
    return PortfolioResult(result=result, winner=winner, summary=summary)

"""Deterministic multi-start simulated-annealing placement.

The paper's SA placer (Sec. IV-B) is seeded, so independent anneals
from different seeds are embarrassingly parallel — the classic way to
buy placement quality with cores instead of wall-clock.  This module
makes that *deterministic*:

* **Seed derivation** — :func:`multistart_seeds` maps a base seed to
  ``restarts`` distinct seeds.  Restart 0 keeps the base seed itself
  (so the single-run trajectory is always among the candidates and
  best-of-N energy can never be worse than the single run); restart
  ``k >= 1`` uses ``base_seed * 1000 + k`` under the default
  ``derivation="legacy"``.  The legacy formula collides across nearby
  base seeds (base 2, k=1 and base 2001, k=0 both map to 2001);
  ``derivation="splitmix"`` mixes ``base + k * GOLDEN_GAMMA`` through
  the SplitMix64 finaliser — a bijection of the 64-bit space per base,
  with full avalanche across bases, so distinct ``(base, k)`` pairs
  collide no more often than random 64-bit draws.  Legacy stays the
  default purely for bit-parity with earlier releases.
* **Total-order reduction** — :func:`select_best` picks the winner by
  ``(energy, derived seed)``.  The order is total, so the reduction is
  independent of completion order and worker count: ``jobs=8`` returns
  bit-identically what ``jobs=1`` returns.
* **Merged instrumentation** — each restart runs under its own
  :class:`~repro.obs.Instrumentation` tagged with its worker index; the
  aggregates are absorbed into the caller's instrumentation (gauges
  merge by the deterministic worker-rank rule, histograms bucket-merge),
  so SA counters and latency percentiles in the ``--profile`` report
  cover every restart regardless of ``jobs``.
* **Merged event streams** — when the caller's sink is live (e.g.
  ``--trace``), each worker additionally records its full event stream
  and the parent replays it after the pool drains, time-shifted to the
  dispatch instant and stamped with the worker index.  A merged trace
  therefore contains every restart's span tree, unambiguous under the
  ``(worker, span_id)`` namespacing, and ``trace2chrome`` renders one
  track per worker.
* **Live heartbeats** — when a
  :class:`~repro.obs.live.LiveProgressMonitor` is installed, each
  worker relays throttled ``sa.step`` progress over its queue, giving
  the parent a per-restart temperature/energy readout while the pool
  is still running.  Heartbeats are telemetry only: results are
  bit-identical with the channel on or off.

``restarts=1, jobs=1`` short-circuits to a direct
:func:`~repro.place.annealing.anneal_placement` call with the caller's
instrumentation — bit-identical to the pre-parallel pipeline, including
the live ``sa.step`` event stream.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclass_replace

from repro.errors import PlacementError
from repro.obs.events import Event
from repro.obs.instrument import Instrumentation, InstrumentationSnapshot
from repro.obs.live import HeartbeatSpec, active_monitor
from repro.obs.sinks import RecordingSink, Sink, TeeSink
from repro.parallel.pool import run_tasks
from repro.place.annealing import (
    AnnealingParameters,
    AnnealingResult,
    anneal_placement,
)
from repro.place.energy import ConnectionPriorities
from repro.place.grid import ChipGrid

__all__ = [
    "SEED_DERIVATIONS",
    "RestartOutcome",
    "anneal_multistart",
    "derive_seed",
    "multistart_seeds",
    "select_best",
    "splitmix64",
]

#: Supported restart-seed derivation schemes.  ``legacy`` is the
#: original ``base * 1000 + k`` formula (collision-prone across nearby
#: bases, kept as the default for bit-parity); ``splitmix`` is the
#: collision-free SplitMix64 mix.
SEED_DERIVATIONS = ("legacy", "splitmix")

_MASK64 = (1 << 64) - 1
#: 2**64 / golden ratio — SplitMix64's stream increment.
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15


def splitmix64(value: int) -> int:
    """The SplitMix64 finaliser: a 64-bit bijection with full avalanche.

    Reference constants from Steele, Lea & Flood, *Fast splittable
    pseudorandom number generators* (OOPSLA'14) — the same mix
    ``java.util.SplittableRandom`` and numpy's ``SeedSequence``
    machinery build on.
    """
    z = (value + _GOLDEN_GAMMA) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def derive_seed(base_seed: int, k: int, derivation: str = "legacy") -> int:
    """The seed of restart *k* (restart 0 always keeps the base seed)."""
    if derivation not in SEED_DERIVATIONS:
        raise PlacementError(
            f"seed derivation must be one of {SEED_DERIVATIONS}, "
            f"got {derivation!r}"
        )
    if k == 0:
        # Both schemes keep the base seed for restart 0 — the single-run
        # trajectory must stay among the candidates.
        return base_seed
    if derivation == "legacy":
        return base_seed * 1000 + k
    return splitmix64((base_seed + k * _GOLDEN_GAMMA) & _MASK64)


def multistart_seeds(
    base_seed: int, restarts: int, derivation: str = "legacy"
) -> tuple[int, ...]:
    """The derived seed of every restart (restart 0 keeps the base seed)."""
    if restarts < 1:
        raise PlacementError(f"restarts must be >= 1, got {restarts}")
    return tuple(
        derive_seed(base_seed, k, derivation) for k in range(restarts)
    )


@dataclass(frozen=True)
class RestartOutcome:
    """One restart's annealing result plus its telemetry aggregates.

    ``events`` is the restart's full event stream (worker-stamped),
    captured only when the parent's sink is live; empty otherwise so
    nothing extra crosses the pool boundary on untraced runs.
    """

    seed: int
    result: AnnealingResult
    snapshot: InstrumentationSnapshot
    events: tuple[Event, ...] = ()


@dataclass(frozen=True)
class _AnnealTask:
    """Picklable description of one restart (the pool payload)."""

    grid: ChipGrid
    footprints: dict[str, tuple[int, int]]
    priorities: ConnectionPriorities
    parameters: AnnealingParameters
    seed: int
    engine: str
    #: Restart index — the event/snapshot worker namespace.
    index: int = 0
    #: Record and return the worker's event stream (traced runs only).
    capture_events: bool = False
    #: Live-progress relay recipe, when a monitor is installed.
    heartbeat: HeartbeatSpec | None = None


def _run_anneal_task(task: _AnnealTask) -> RestartOutcome:
    """Worker entry point: one seeded anneal with private instrumentation."""
    recorder: RecordingSink | None = None
    sinks: list[Sink] = []
    if task.capture_events:
        recorder = RecordingSink()
        sinks.append(recorder)
    relay = task.heartbeat.build() if task.heartbeat is not None else None
    if relay is not None:
        sinks.append(relay)
    sink: Sink | None
    if not sinks:
        sink = None
    elif len(sinks) == 1:
        sink = sinks[0]
    else:
        sink = TeeSink(*sinks)
    instr = Instrumentation(sink=sink, worker=task.index)
    try:
        result = anneal_placement(
            task.grid,
            task.footprints,
            task.priorities,
            parameters=task.parameters,
            seed=task.seed,
            instrumentation=instr,
            engine=task.engine,
        )
    finally:
        if relay is not None:
            relay.close()
    return RestartOutcome(
        seed=task.seed,
        result=result,
        snapshot=instr.snapshot(),
        events=tuple(recorder.events) if recorder is not None else (),
    )


def select_best(outcomes: list[RestartOutcome]) -> RestartOutcome:
    """Reduce restarts to the winner under the ``(energy, seed)`` order.

    Energy ties (identical placements found from different seeds are
    common on small grids) break towards the *smallest derived seed* —
    a total order, so any permutation of *outcomes* yields the same
    winner.
    """
    if not outcomes:
        raise PlacementError("no restart outcomes to reduce")
    return min(outcomes, key=lambda o: (o.result.energy, o.seed))


def anneal_multistart(
    grid: ChipGrid,
    footprints: dict[str, tuple[int, int]],
    priorities: ConnectionPriorities,
    parameters: AnnealingParameters | None = None,
    base_seed: int = 0,
    restarts: int = 1,
    jobs: int = 1,
    engine: str = "incremental",
    instrumentation: Instrumentation | None = None,
    seed_derivation: str = "legacy",
) -> AnnealingResult:
    """Best of *restarts* independent anneals, fanned out over *jobs*.

    Determinism contract: the returned result depends only on
    ``(base_seed, restarts, seed_derivation)`` — never on ``jobs`` —
    and ``restarts=1, jobs=1`` is the unmodified single-anneal path.
    """
    if restarts == 1 and jobs == 1:
        return anneal_placement(
            grid,
            footprints,
            priorities,
            parameters=parameters,
            seed=base_seed,
            instrumentation=instrumentation,
            engine=engine,
        )
    params = parameters or AnnealingParameters()
    capture = instrumentation is not None and instrumentation.active
    monitor = active_monitor()
    dispatch_t = instrumentation.now() if instrumentation is not None else 0.0
    seeds = multistart_seeds(base_seed, restarts, seed_derivation)
    tasks = [
        _AnnealTask(
            grid=grid,
            footprints=footprints,
            priorities=priorities,
            parameters=params,
            seed=seed,
            engine=engine,
            index=index,
            capture_events=capture,
            heartbeat=(
                monitor.spec_for(worker=index, seed=seed)
                if monitor is not None and monitor.queue is not None
                else None
            ),
        )
        for index, seed in enumerate(seeds)
    ]
    outcomes = run_tasks(_run_anneal_task, tasks, jobs=jobs)
    if instrumentation is not None:
        # Absorb in seed order (submission order); the worker-rank rule
        # makes the merged gauges order-independent anyway, and counter/
        # histogram merges are commutative by construction.
        for index, outcome in enumerate(outcomes):
            instrumentation.absorb(outcome.snapshot, worker=index)
            instrumentation.count("sa.restarts")
            instrumentation.event(
                "sa.restart",
                seed=outcome.seed,
                energy=outcome.result.energy,
                initial_energy=outcome.result.initial_energy,
                accepted_moves=outcome.result.accepted_moves,
            )
        if capture:
            # Replay every worker's event stream into the parent sink,
            # shifted from the worker's epoch to the dispatch instant so
            # merged timestamps are monotone with the parent's.  Events
            # already carry their worker index from the worker-side
            # instrumentation.
            sink = instrumentation.sink
            for outcome in outcomes:
                for event in outcome.events:
                    sink.emit(
                        dataclass_replace(event, time=event.time + dispatch_t)
                    )
    return select_best(outcomes).result

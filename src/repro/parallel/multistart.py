"""Deterministic multi-start simulated-annealing placement.

The paper's SA placer (Sec. IV-B) is seeded, so independent anneals
from different seeds are embarrassingly parallel — the classic way to
buy placement quality with cores instead of wall-clock.  This module
makes that *deterministic*:

* **Seed derivation** — :func:`multistart_seeds` maps a base seed to
  ``restarts`` distinct seeds.  Restart 0 keeps the base seed itself
  (so the single-run trajectory is always among the candidates and
  best-of-N energy can never be worse than the single run); restart
  ``k >= 1`` uses ``base_seed * 1000 + k``.
* **Total-order reduction** — :func:`select_best` picks the winner by
  ``(energy, derived seed)``.  The order is total, so the reduction is
  independent of completion order and worker count: ``jobs=8`` returns
  bit-identically what ``jobs=1`` returns.
* **Merged instrumentation** — each restart runs under its own
  :class:`~repro.obs.Instrumentation`; the aggregates are absorbed into
  the caller's instrumentation in seed order, so SA counters in the
  ``--profile`` report cover every restart regardless of ``jobs``.

``restarts=1, jobs=1`` short-circuits to a direct
:func:`~repro.place.annealing.anneal_placement` call with the caller's
instrumentation — bit-identical to the pre-parallel pipeline, including
the live ``sa.step`` event stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlacementError
from repro.obs.instrument import Instrumentation, InstrumentationSnapshot
from repro.parallel.pool import run_tasks
from repro.place.annealing import (
    AnnealingParameters,
    AnnealingResult,
    anneal_placement,
)
from repro.place.energy import ConnectionPriorities
from repro.place.grid import ChipGrid

__all__ = [
    "RestartOutcome",
    "anneal_multistart",
    "multistart_seeds",
    "select_best",
]


def multistart_seeds(base_seed: int, restarts: int) -> tuple[int, ...]:
    """The derived seed of every restart (restart 0 keeps the base seed)."""
    if restarts < 1:
        raise PlacementError(f"restarts must be >= 1, got {restarts}")
    return (base_seed,) + tuple(
        base_seed * 1000 + k for k in range(1, restarts)
    )


@dataclass(frozen=True)
class RestartOutcome:
    """One restart's annealing result plus its telemetry aggregates."""

    seed: int
    result: AnnealingResult
    snapshot: InstrumentationSnapshot


@dataclass(frozen=True)
class _AnnealTask:
    """Picklable description of one restart (the pool payload)."""

    grid: ChipGrid
    footprints: dict[str, tuple[int, int]]
    priorities: ConnectionPriorities
    parameters: AnnealingParameters
    seed: int
    engine: str


def _run_anneal_task(task: _AnnealTask) -> RestartOutcome:
    """Worker entry point: one seeded anneal with private instrumentation."""
    instr = Instrumentation()
    result = anneal_placement(
        task.grid,
        task.footprints,
        task.priorities,
        parameters=task.parameters,
        seed=task.seed,
        instrumentation=instr,
        engine=task.engine,
    )
    return RestartOutcome(
        seed=task.seed, result=result, snapshot=instr.snapshot()
    )


def select_best(outcomes: list[RestartOutcome]) -> RestartOutcome:
    """Reduce restarts to the winner under the ``(energy, seed)`` order.

    Energy ties (identical placements found from different seeds are
    common on small grids) break towards the *smallest derived seed* —
    a total order, so any permutation of *outcomes* yields the same
    winner.
    """
    if not outcomes:
        raise PlacementError("no restart outcomes to reduce")
    return min(outcomes, key=lambda o: (o.result.energy, o.seed))


def anneal_multistart(
    grid: ChipGrid,
    footprints: dict[str, tuple[int, int]],
    priorities: ConnectionPriorities,
    parameters: AnnealingParameters | None = None,
    base_seed: int = 0,
    restarts: int = 1,
    jobs: int = 1,
    engine: str = "incremental",
    instrumentation: Instrumentation | None = None,
) -> AnnealingResult:
    """Best of *restarts* independent anneals, fanned out over *jobs*.

    Determinism contract: the returned result depends only on
    ``(base_seed, restarts)`` — never on ``jobs`` — and
    ``restarts=1, jobs=1`` is the unmodified single-anneal path.
    """
    if restarts == 1 and jobs == 1:
        return anneal_placement(
            grid,
            footprints,
            priorities,
            parameters=parameters,
            seed=base_seed,
            instrumentation=instrumentation,
            engine=engine,
        )
    params = parameters or AnnealingParameters()
    tasks = [
        _AnnealTask(
            grid=grid,
            footprints=footprints,
            priorities=priorities,
            parameters=params,
            seed=seed,
            engine=engine,
        )
        for seed in multistart_seeds(base_seed, restarts)
    ]
    outcomes = run_tasks(_run_anneal_task, tasks, jobs=jobs)
    if instrumentation is not None:
        # Absorb in seed order (submission order), not completion order,
        # so merged aggregates are identical for every jobs value.
        for outcome in outcomes:
            instrumentation.absorb(outcome.snapshot)
            instrumentation.count("sa.restarts")
            instrumentation.event(
                "sa.restart",
                seed=outcome.seed,
                energy=outcome.result.energy,
                initial_energy=outcome.result.initial_energy,
                accepted_moves=outcome.result.accepted_moves,
            )
    return select_best(outcomes).result

"""Deterministic parallel execution across a process pool.

``repro.parallel`` is the execution substrate that turns the
single-core synthesis pipeline into one that saturates a machine
without ever changing an answer:

* :func:`~repro.parallel.pool.run_tasks` — fan a list of picklable
  task payloads out over a :class:`concurrent.futures.ProcessPoolExecutor`
  (or run them inline at ``jobs=1``) and return the results in
  **submission order**, so downstream reductions are independent of
  worker count and completion order.  :class:`~repro.errors.ReproError`
  subclasses raised inside a worker are re-raised in the parent with
  their original type and message, preserving the CLI's exit-code-3
  contract.
* :func:`~repro.parallel.multistart.anneal_multistart` — run
  ``restarts`` independent SA placement anneals from deterministically
  derived seeds and reduce to the best result under a total order
  (energy, then derived seed), so the winner is bit-identical for any
  ``jobs`` value.

Both entry points merge the workers' instrumentation aggregates back
into the caller's :class:`~repro.obs.Instrumentation` (see
:meth:`~repro.obs.Instrumentation.absorb`), so ``--profile`` reports
stay complete under parallel runs.
"""

from repro.parallel.multistart import (
    RestartOutcome,
    anneal_multistart,
    multistart_seeds,
    select_best,
)
from repro.parallel.pool import resolve_jobs, run_tasks

__all__ = [
    "RestartOutcome",
    "anneal_multistart",
    "multistart_seeds",
    "resolve_jobs",
    "run_tasks",
    "select_best",
]

"""Deterministic parallel execution across a process pool.

``repro.parallel`` is the execution substrate that turns the
single-core synthesis pipeline into one that saturates a machine
without ever changing an answer:

* :func:`~repro.parallel.pool.run_tasks` — fan a list of picklable
  task payloads out over a :class:`concurrent.futures.ProcessPoolExecutor`
  (or run them inline at ``jobs=1``) and return the results in
  **submission order**, so downstream reductions are independent of
  worker count and completion order.  :class:`~repro.errors.ReproError`
  subclasses raised inside a worker are re-raised in the parent with
  their original type and message, preserving the CLI's exit-code-3
  contract.
* :func:`~repro.parallel.multistart.anneal_multistart` — run
  ``restarts`` independent SA placement anneals from deterministically
  derived seeds and reduce to the best result under a total order
  (energy, then derived seed), so the winner is bit-identical for any
  ``jobs`` value.
* :func:`~repro.parallel.portfolio.race_portfolio` — race a
  heterogeneous set of anneal configurations (*arms*) under
  successive halving: all arms advance to deterministic checkpoint
  rungs over a :class:`~repro.parallel.pool.PoolSession`, the bottom
  half is killed at each rung under the total
  ``(energy, seed, arm_id)`` order, and the survivors run on — same
  winner for any ``jobs`` value, at a fraction of the CPU a full
  multi-start spends.

All entry points merge the workers' instrumentation aggregates back
into the caller's :class:`~repro.obs.Instrumentation` (see
:meth:`~repro.obs.Instrumentation.absorb`), so ``--profile`` reports
stay complete under parallel runs.
"""

from repro.parallel.multistart import (
    SEED_DERIVATIONS,
    RestartOutcome,
    anneal_multistart,
    derive_seed,
    multistart_seeds,
    select_best,
    splitmix64,
)
from repro.parallel.pool import PoolSession, resolve_jobs, run_tasks
from repro.parallel.portfolio import (
    PortfolioArm,
    PortfolioResult,
    default_arms,
    parse_arms,
    race_portfolio,
    rung_budgets,
)

__all__ = [
    "SEED_DERIVATIONS",
    "PoolSession",
    "PortfolioArm",
    "PortfolioResult",
    "RestartOutcome",
    "anneal_multistart",
    "default_arms",
    "derive_seed",
    "multistart_seeds",
    "parse_arms",
    "race_portfolio",
    "resolve_jobs",
    "rung_budgets",
    "run_tasks",
    "select_best",
    "splitmix64",
]

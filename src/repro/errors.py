"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
applications can install a single ``except ReproError`` guard around a
synthesis run.  The subclasses mirror the synthesis pipeline stages:
assay modelling, scheduling, placement, and routing.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "AssayError",
    "GraphCycleError",
    "UnknownOperationError",
    "AllocationError",
    "SchedulingError",
    "PlacementError",
    "RoutingError",
    "ValidationError",
    "ParallelExecutionError",
    "ParallelTimeoutError",
    "CheckError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class AssayError(ReproError):
    """Raised when a bioassay description is malformed."""


class GraphCycleError(AssayError):
    """Raised when a sequencing graph contains a dependency cycle."""

    def __init__(self, cycle: list[str]):
        self.cycle = list(cycle)
        joined = " -> ".join(self.cycle)
        super().__init__(f"sequencing graph contains a cycle: {joined}")


class UnknownOperationError(AssayError):
    """Raised when an operation id is referenced but never defined."""

    def __init__(self, op_id: str):
        self.op_id = op_id
        super().__init__(f"unknown operation id: {op_id!r}")


class AllocationError(ReproError):
    """Raised when the component allocation cannot serve the assay.

    Typical causes: an operation type with zero allocated components, or a
    negative component count.
    """


class SchedulingError(ReproError):
    """Raised when binding/scheduling cannot produce a valid schedule."""


class PlacementError(ReproError):
    """Raised when no legal placement exists (e.g. chip grid too small)."""


class RoutingError(ReproError):
    """Raised when a transportation task cannot be routed."""

    def __init__(self, message: str, task_id: str | None = None):
        self.task_id = task_id
        super().__init__(message)


class ValidationError(ReproError):
    """Raised when a produced artefact violates a documented invariant."""


class CheckError(ReproError):
    """Raised in strict check mode when the independent design-rule
    checker (:mod:`repro.check`) finds violations in a synthesis result.

    The full :class:`~repro.check.report.CheckReport` is attached as
    ``report`` so callers can render or serialise the findings.
    """

    def __init__(self, message: str, report=None):
        self.report = report
        super().__init__(message)


class ParallelExecutionError(ReproError):
    """Raised when the process-pool execution layer itself fails.

    Domain errors raised *inside* a worker are re-raised with their
    original type (see :mod:`repro.parallel.pool`); this class covers
    infrastructure failures — a broken or timed-out pool, an invalid
    job count — so they still honour ``except ReproError`` guards and
    the CLI's exit-code-3 contract.
    """


class ParallelTimeoutError(ParallelExecutionError):
    """Raised when a pool wave exceeds its deadline.

    A distinct subclass so long-lived callers (the synthesis server's
    job executor) can tell "this task blew its deadline — fail it" from
    "the pool infrastructure died under an innocent task — rebuild and
    retry" without parsing messages.  Existing ``except
    ParallelExecutionError`` guards keep catching it.
    """

"""Placement energy: Eq. 3 with Eq. 4 connection priorities.

``Energy(P) = Σ_{n_{i,j} ∈ N} mdis(i,j) · cp(i,j)`` where ``N`` is the
set of nets (component pairs connected by at least one transportation
task in the schedule) and the connection priority

``cp(i,j) = Σ_k (β·nt_k + γ·wt_k)``

sums, over the ``q`` transportation tasks between the pair, the number
``nt_k`` of concurrently running other tasks (congestion pressure) and
the wash time ``wt_k`` of the residue the task leaves (hard-to-wash
fluids should travel short, dedicated channels).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.schedule.schedule import Schedule
from repro.place.placement import Placement

__all__ = [
    "ConnectionPriorities",
    "build_connection_priorities",
    "placement_energy",
    "wirelength_energy",
]

#: Paper defaults for the Eq. 4 weighting factors.
DEFAULT_BETA = 0.6
DEFAULT_GAMMA = 0.4


def _net_key(cid_a: str, cid_b: str) -> tuple[str, str]:
    """Canonical (sorted) key of an undirected net."""
    return (cid_a, cid_b) if cid_a <= cid_b else (cid_b, cid_a)


@dataclass(frozen=True)
class ConnectionPriorities:
    """Precomputed ``cp(i,j)`` for every net of a schedule.

    Built once per schedule by :func:`build_connection_priorities`; the
    annealer then evaluates Eq. 3 in ``O(|N|)`` per candidate placement.
    """

    priorities: dict[tuple[str, str], float]

    def nets(self) -> list[tuple[str, str]]:
        return sorted(self.priorities)

    def priority(self, cid_a: str, cid_b: str) -> float:
        """``cp`` of the net between the two components (0 when absent)."""
        return self.priorities.get(_net_key(cid_a, cid_b), 0.0)


def build_connection_priorities(
    schedule: Schedule,
    beta: float = DEFAULT_BETA,
    gamma: float = DEFAULT_GAMMA,
) -> ConnectionPriorities:
    """Compute Eq. 4 for every net in *schedule*.

    Self-nets (a fluid evicted from and later returning to the same
    component) carry zero placement cost — their ``mdis`` is zero — and
    are omitted.
    """
    tasks = schedule.transport_tasks()
    concurrent = schedule.concurrencies(tasks)
    priorities: dict[tuple[str, str], float] = defaultdict(float)
    for task in tasks:
        if task.src_component == task.dst_component:
            continue
        key = _net_key(task.src_component, task.dst_component)
        priorities[key] += beta * concurrent[task.task_id] + gamma * task.wash_time
    return ConnectionPriorities(priorities=dict(priorities))


def placement_energy(
    placement: Placement, priorities: ConnectionPriorities
) -> float:
    """Eq. 3: Σ mdis(i,j) · cp(i,j) over all nets."""
    total = 0.0
    for (cid_a, cid_b), priority in priorities.priorities.items():
        total += placement.manhattan_distance(cid_a, cid_b) * priority
    return total


def wirelength_energy(placement: Placement, nets: list[tuple[str, str]]) -> float:
    """Plain half-perimeter-style objective used by the baseline placer:
    Σ mdis(i,j) with unit priorities."""
    return sum(placement.manhattan_distance(a, b) for a, b in nets)

"""Construction-by-correction placement — the baseline's placer.

Section V describes BA's physical stage as "generating an initial
solution and then correct[ing] those unsatisfactory component
positions/routing paths sequentially".  The placer here mirrors that:

1. **Construction** — components are spread row-major over a regular
   lattice covering the whole chip (largest family first), the natural
   first-cut layout with generous channel corridors.
2. **Correction** — repeated pairwise-swap passes on a plain wirelength
   objective (unit net priorities — BA is oblivious to Eq. 4) until a
   pass yields no improvement or the pass budget is exhausted.

The result is deterministic, fast, and reasonable — but unaware of
transport concurrency and wash costs, which is exactly the handicap the
paper's comparison measures.
"""

from __future__ import annotations

import math

from repro.errors import PlacementError
from repro.place.energy import wirelength_energy
from repro.place.grid import ChipGrid
from repro.place.placement import PlacedComponent, Placement

__all__ = ["construct_placement", "correct_placement", "greedy_placement"]


def construct_placement(
    grid: ChipGrid, footprints: dict[str, tuple[int, int]]
) -> Placement:
    """Spread all components on a regular lattice across the chip.

    The construction step of construction-by-correction: components are
    laid out row-major on a near-square array of lattice sites spaced
    evenly over the whole grid — the natural first-cut layout a designer
    sketches, with generous channel corridors everywhere.  The correction
    step then swaps components to shorten the busiest connections.
    """
    order = sorted(
        footprints.items(), key=lambda item: (-item[1][0] * item[1][1], item[0])
    )
    count = len(order)
    if count == 0:
        raise PlacementError("no components to place")
    max_w = max(width for _, (width, _h) in order)
    max_h = max(height for _, (_w, height) in order)

    def fits(cols: int) -> bool:
        rws = math.ceil(count / cols)
        return (
            cols * (max_w + 1) - 1 <= grid.width
            and rws * (max_h + 1) - 1 <= grid.height
        )

    ideal = math.ceil(math.sqrt(count))
    columns = next(
        (
            cols
            for offset in range(count)
            for cols in (ideal - offset, ideal + offset)
            if 1 <= cols <= count and fits(cols)
        ),
        None,
    )
    if columns is None:
        raise PlacementError(
            f"grid {grid.width}x{grid.height} too small for a lattice of "
            f"{count} components"
        )
    rows = math.ceil(count / columns)
    # Spread lattice sites evenly; at least one clearance cell remains
    # between neighbouring blocks by the size check above.
    x_positions = _spread(grid.width, max_w, columns)
    y_positions = _spread(grid.height, max_h, rows)
    blocks: dict[str, PlacedComponent] = {}
    for index, (cid, (width, height)) in enumerate(order):
        row, col = divmod(index, columns)
        blocks[cid] = PlacedComponent(
            cid, x_positions[col], y_positions[row], width, height
        )
    placement = Placement(grid, blocks)
    if not placement.is_legal():  # pragma: no cover - sizes checked above
        raise PlacementError(
            "internal error: lattice construction produced an illegal placement"
        )
    return placement


def _spread(extent: int, block: int, count: int) -> list[int]:
    """Evenly spaced origins for *count* blocks of size *block* in [0, extent)."""
    if count == 1:
        return [(extent - block) // 2]
    usable = extent - block
    return [round(i * usable / (count - 1)) for i in range(count)]


def correct_placement(
    placement: Placement,
    nets: list[tuple[str, str]],
    max_passes: int = 10,
) -> Placement:
    """Greedy pairwise-swap correction on plain wirelength.

    Swaps two blocks' origins whenever that is legal and strictly reduces
    Σ mdis over *nets*; repeats until a full pass makes no improvement.
    """
    current = placement
    current_cost = wirelength_energy(current, nets)
    components = current.components()
    for _ in range(max_passes):
        improved = False
        for i, cid_a in enumerate(components):
            for cid_b in components[i + 1:]:
                block_a = current.block(cid_a)
                block_b = current.block(cid_b)
                candidate = current.with_block(
                    block_a.moved_to(block_b.x, block_b.y)
                ).with_block(block_b.moved_to(block_a.x, block_a.y))
                if not candidate.is_legal():
                    continue
                cost = wirelength_energy(candidate, nets)
                if cost < current_cost - 1e-12:
                    current, current_cost = candidate, cost
                    improved = True
        if not improved:
            break
    return current


def greedy_placement(
    grid: ChipGrid,
    footprints: dict[str, tuple[int, int]],
    nets: list[tuple[str, str]],
    max_passes: int = 10,
) -> Placement:
    """Full BA placement: construction followed by correction.

    *max_passes* bounds the correction sweeps (default matches the
    baseline's full budget); callers that only need a warm start —
    e.g. portfolio arms seeding SA, which corrects far better than
    pairwise swaps — pass a small budget to keep construction cheap.
    """
    return correct_placement(
        construct_placement(grid, footprints), nets, max_passes=max_passes
    )

"""Placement stage (Algorithm 2, lines 1–8) and the baseline placer."""

from repro.place.annealing import (
    PLACEMENT_ENGINES,
    AnnealingParameters,
    AnnealingResult,
    anneal_placement,
)
from repro.place.incremental import (
    AppliedMove,
    PendingMove,
    PlacementWorkspace,
)
from repro.place.energy import (
    ConnectionPriorities,
    build_connection_priorities,
    placement_energy,
    wirelength_energy,
)
from repro.place.greedy import (
    construct_placement,
    correct_placement,
    greedy_placement,
)
from repro.place.grid import Cell, ChipGrid, auto_grid
from repro.place.moves import random_move, random_placement, rotate, swap, translate
from repro.place.placement import PlacedComponent, Placement

__all__ = [
    "AnnealingParameters",
    "AnnealingResult",
    "AppliedMove",
    "Cell",
    "ChipGrid",
    "ConnectionPriorities",
    "PLACEMENT_ENGINES",
    "PendingMove",
    "PlacedComponent",
    "Placement",
    "PlacementWorkspace",
    "anneal_placement",
    "auto_grid",
    "build_connection_priorities",
    "construct_placement",
    "correct_placement",
    "greedy_placement",
    "placement_energy",
    "random_move",
    "random_placement",
    "rotate",
    "swap",
    "translate",
    "wirelength_energy",
]

"""The chip's placement/routing grid.

Following Fig. 4, the layout plane is partitioned into an array of
rectangular cells.  Components occupy rectangular blocks of cells; flow
channels run along the remaining cells.  The default pitch of 10 mm per
cell calibrates channel lengths to the same order as Table I (hundreds
to thousands of millimetres).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, NamedTuple

from repro.components.allocation import Allocation
from repro.components.library import ComponentLibrary
from repro.errors import PlacementError
from repro.units import Millimetres

__all__ = ["Cell", "ChipGrid", "auto_grid"]

#: Default physical pitch of one grid cell, in millimetres.
DEFAULT_PITCH_MM: Millimetres = 10.0


class Cell(NamedTuple):
    """One grid cell, addressed by column ``x`` and row ``y``.

    A :class:`typing.NamedTuple` rather than a dataclass: cells are the
    hottest objects in the annealer and router inner loops, and tuple
    hashing/equality is several times faster than the generated
    dataclass equivalents.
    """

    x: int
    y: int

    def neighbours(self) -> tuple["Cell", "Cell", "Cell", "Cell"]:
        """The four orthogonal neighbours (may fall outside the grid)."""
        x, y = self
        return (
            Cell(x + 1, y),
            Cell(x - 1, y),
            Cell(x, y + 1),
            Cell(x, y - 1),
        )

    def manhattan(self, other: "Cell") -> int:
        """Manhattan distance to *other*, in cells."""
        return abs(self.x - other.x) + abs(self.y - other.y)


@dataclass(frozen=True)
class ChipGrid:
    """Dimensions and pitch of the chip's cell array."""

    width: int
    height: int
    pitch_mm: Millimetres = DEFAULT_PITCH_MM

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise PlacementError(
                f"grid must be positive, got {self.width}x{self.height}"
            )
        if self.pitch_mm <= 0:
            raise PlacementError(f"pitch must be positive, got {self.pitch_mm}")

    def contains(self, cell: Cell) -> bool:
        """Whether *cell* lies on the chip."""
        return 0 <= cell.x < self.width and 0 <= cell.y < self.height

    def cells(self) -> Iterator[Cell]:
        """All cells, row-major."""
        for y in range(self.height):
            for x in range(self.width):
                yield Cell(x, y)

    @property
    def cell_count(self) -> int:
        return self.width * self.height

    def length_mm(self, cells: int) -> Millimetres:
        """Physical channel length of *cells* grid cells."""
        return cells * self.pitch_mm


def auto_grid(
    allocation: Allocation,
    library: ComponentLibrary,
    pitch_mm: Millimetres = DEFAULT_PITCH_MM,
    fill_ratio: float = 0.25,
) -> ChipGrid:
    """Choose a square grid large enough for the allocation.

    The grid is sized so components cover at most *fill_ratio* of the
    chip, leaving ample routing space — mirroring the sparse layouts of
    Fig. 1/Fig. 4.  A lower bound of (largest footprint + 2) keeps even a
    single huge component placeable with a routing ring around it.
    """
    if not 0 < fill_ratio <= 1:
        raise PlacementError(f"fill ratio must be in (0, 1], got {fill_ratio}")
    total_area = sum(
        library.spec(op_type).area * allocation.count(op_type)
        for op_type in set(t for _, t in allocation.iter_components())
    )
    side = math.ceil(math.sqrt(total_area / fill_ratio))
    side = max(side, library.max_dimension() + 2)
    return ChipGrid(width=side, height=side, pitch_mm=pitch_mm)

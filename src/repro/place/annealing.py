"""Simulated-annealing placement (Algorithm 2, lines 1–8).

The annealer follows the paper's schedule exactly: start from a random
legal placement at temperature ``T0``; at each temperature perform
``Imax`` move trials, accepting an uphill move of cost ``Δ`` with
probability ``e^(−Δ/T)``; cool by ``T ← α·T`` until ``T ≤ Tmin``.
Defaults are the paper's: ``T0=10000, Tmin=1.0, α=0.9, Imax=150``.

The best placement ever seen is returned (not merely the final one) —
standard practice that only improves on the paper's description.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import PlacementError
from repro.obs.instrument import Instrumentation
from repro.place.energy import ConnectionPriorities, placement_energy
from repro.place.grid import ChipGrid
from repro.place.moves import random_move, random_placement
from repro.place.placement import Placement

__all__ = ["AnnealingParameters", "AnnealingResult", "anneal_placement"]


@dataclass(frozen=True)
class AnnealingParameters:
    """SA control parameters (paper defaults)."""

    initial_temperature: float = 10_000.0
    min_temperature: float = 1.0
    cooling_rate: float = 0.9
    iterations_per_temperature: int = 150

    def __post_init__(self) -> None:
        if not 0 < self.cooling_rate < 1:
            raise PlacementError(
                f"cooling rate must be in (0,1), got {self.cooling_rate}"
            )
        if self.initial_temperature <= self.min_temperature:
            raise PlacementError("initial temperature must exceed the minimum")
        if self.min_temperature <= 0:
            raise PlacementError("minimum temperature must be positive")
        if self.iterations_per_temperature <= 0:
            raise PlacementError("Imax must be positive")

    @property
    def temperature_steps(self) -> int:
        """Number of cooling steps the schedule will take."""
        ratio = math.log(self.min_temperature / self.initial_temperature)
        return max(1, math.ceil(ratio / math.log(self.cooling_rate)))


@dataclass
class AnnealingResult:
    """Placement plus convergence diagnostics."""

    placement: Placement
    energy: float
    initial_energy: float
    accepted_moves: int
    trials: int
    energy_trace: list[float]

    @property
    def acceptance_ratio(self) -> float:
        return self.accepted_moves / self.trials if self.trials else 0.0


def anneal_placement(
    grid: ChipGrid,
    footprints: dict[str, tuple[int, int]],
    priorities: ConnectionPriorities,
    parameters: AnnealingParameters | None = None,
    seed: int = 0,
    instrumentation: Instrumentation | None = None,
) -> AnnealingResult:
    """Run the SA placer and return the best placement found.

    Parameters
    ----------
    grid:
        The chip's cell array.
    footprints:
        ``cid -> (width, height)`` in cells for every component.
    priorities:
        Precomputed Eq. 4 connection priorities of the schedule.
    parameters:
        SA knobs; ``None`` selects the paper's defaults.
    seed:
        RNG seed — annealing is fully deterministic given the seed.
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation`; receives move
        counters (``sa.moves_*``) and one ``sa.step`` convergence event
        per temperature (temperature, energy, best energy, acceptance
        ratio) — the trace Fig.-style solver papers report.
    """
    params = parameters or AnnealingParameters()
    rng = random.Random(seed)

    current = random_placement(grid, footprints, rng)
    if current is None:
        raise PlacementError(
            f"could not find an initial legal placement of "
            f"{len(footprints)} components on a "
            f"{grid.width}x{grid.height} grid"
        )
    current_energy = placement_energy(current, priorities)
    best, best_energy = current, current_energy
    initial_energy = current_energy

    accepted = 0
    trials = 0
    trace: list[float] = []
    temperature = params.initial_temperature
    while temperature > params.min_temperature:
        # Per-temperature tallies are kept in locals and flushed once per
        # cooling step, so instrumentation stays off the per-move path.
        step_accepted = 0
        step_trials = 0
        for _ in range(params.iterations_per_temperature):
            candidate = random_move(current, rng)
            if candidate is None:
                continue
            step_trials += 1
            candidate_energy = placement_energy(candidate, priorities)
            delta = candidate_energy - current_energy
            if delta < 0 or rng.random() < math.exp(-delta / temperature):
                current, current_energy = candidate, candidate_energy
                step_accepted += 1
                if current_energy < best_energy:
                    best, best_energy = current, current_energy
        accepted += step_accepted
        trials += step_trials
        trace.append(current_energy)
        if instrumentation is not None:
            instrumentation.count("sa.moves_proposed", step_trials)
            instrumentation.count("sa.moves_accepted", step_accepted)
            instrumentation.count("sa.moves_rejected", step_trials - step_accepted)
            instrumentation.count("sa.temperature_steps")
            instrumentation.event(
                "sa.step",
                temperature=temperature,
                energy=current_energy,
                best_energy=best_energy,
                acceptance_ratio=(
                    step_accepted / step_trials if step_trials else 0.0
                ),
            )
        temperature *= params.cooling_rate

    if instrumentation is not None:
        instrumentation.gauge("sa.final_energy", best_energy)
        instrumentation.gauge("sa.initial_energy", initial_energy)

    return AnnealingResult(
        placement=best,
        energy=best_energy,
        initial_energy=initial_energy,
        accepted_moves=accepted,
        trials=trials,
        energy_trace=trace,
    )

"""Simulated-annealing placement (Algorithm 2, lines 1–8).

The annealer follows the paper's schedule exactly: start from a random
legal placement at temperature ``T0``; at each temperature perform
``Imax`` move trials, accepting an uphill move of cost ``Δ`` with
probability ``e^(−Δ/T)``; cool by ``T ← α·T`` until ``T ≤ Tmin``.
Defaults are the paper's: ``T0=10000, Tmin=1.0, α=0.9, Imax=150``.

The best placement ever seen is returned (not merely the final one) —
standard practice that only improves on the paper's description.

Two interchangeable engines implement the move loop:

* ``engine="incremental"`` (default) — the
  :class:`~repro.place.incremental.PlacementWorkspace`: in-place
  apply/undo moves, occupancy-index legality, and delta energy over only
  the nets incident to the moved components.
* ``engine="reference"`` — the original immutable path (one new
  :class:`~repro.place.placement.Placement`, full legality scan, and
  full Eq. 3 evaluation per trial), kept as the correctness oracle.

A third engine, ``engine="batch"`` (:mod:`repro.place.batch`),
vectorizes the move loop with numpy: per step it proposes
``batch_size`` candidate moves, evaluates every delta as array ops,
and applies Metropolis acceptance to the greedily-best candidate.  At
``batch_size=1`` it delegates to the incremental loop and is therefore
bit-identical to the engines above; at larger batch sizes it explores
more and trades the bit-level contract for a never-worse-energy gate
(see the batch module docstring for the RNG-stream contract).

Both engines consume the seeded RNG through the *identical* draw
sequence and make identical accept/reject decisions, so a given seed
yields the same best placement and — because the returned best energy
is always a full Eq. 3 evaluation — bit-identical best energy.  The
parity tests in ``tests/place/test_incremental.py`` assert this.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from time import perf_counter

from repro.errors import PlacementError
from repro.obs.instrument import Instrumentation
from repro.place.energy import ConnectionPriorities, placement_energy
from repro.place.grid import ChipGrid
from repro.place.incremental import PlacementWorkspace
from repro.place.moves import random_move, random_placement
from repro.place.placement import Placement

__all__ = [
    "AnnealCheckpoint",
    "AnnealingParameters",
    "AnnealingResult",
    "anneal_placement",
    "anneal_resume",
    "anneal_start",
    "checkpoint_result",
    "PLACEMENT_ENGINES",
]

#: Valid values of :func:`anneal_placement`'s ``engine`` parameter.
#: ``"batch"`` is the numpy best-of-K kernel of :mod:`repro.place.batch`;
#: at ``batch_size=1`` it delegates to the incremental loop and is
#: bit-identical to ``"incremental"``.
PLACEMENT_ENGINES = ("incremental", "batch", "reference")

#: Move kinds in the reference sampler's tuple order — the incremental
#: sampler draws from this tuple so both engines consume the RNG
#: identically (``rng.choice`` on any length-3 sequence draws the same
#: underlying integer).
_MOVE_KINDS = ("translate", "swap", "rotate")

#: Below this magnitude the incident-nets delta estimate cannot be
#: trusted to carry the same *sign* as the reference engine's
#: full-evaluation difference (symmetric moves have a true delta of
#: exactly zero, and the two computations round differently), so the
#: incremental engine falls back to the exact delta.  A wrong sign
#: would desynchronise the engines' RNG streams: ``delta < 0`` accepts
#: without drawing ``rng.random()``.  The estimate and the exact delta
#: agree within ~1e-11, so any estimate beyond this threshold has a
#: reliable sign.
_EXACT_DELTA_THRESHOLD = 1e-6


@dataclass(frozen=True)
class AnnealingParameters:
    """SA control parameters (paper defaults)."""

    initial_temperature: float = 10_000.0
    min_temperature: float = 1.0
    cooling_rate: float = 0.9
    iterations_per_temperature: int = 150
    #: Candidates proposed per step by the batch engine (``engine=
    #: "batch"``); the other engines ignore it.  ``1`` degenerates to
    #: the incremental engine's exact move loop.
    batch_size: int = 16
    #: Optional move-mix weights ``(translate, swap, rotate)`` for the
    #: incremental and batch engines.  ``None`` (the default) keeps the
    #: uniform reference sampler and its exact RNG draw sequence — the
    #: bit-parity contract between engines only covers that default.
    #: Portfolio arms set this to bias exploration; the reference
    #: engine rejects non-uniform weights rather than silently ignore
    #: them.
    move_weights: tuple[float, float, float] | None = None

    def __post_init__(self) -> None:
        if not 0 < self.cooling_rate < 1:
            raise PlacementError(
                f"cooling rate must be in (0,1), got {self.cooling_rate}"
            )
        if self.initial_temperature <= self.min_temperature:
            raise PlacementError("initial temperature must exceed the minimum")
        if self.min_temperature <= 0:
            raise PlacementError("minimum temperature must be positive")
        if self.iterations_per_temperature <= 0:
            raise PlacementError("Imax must be positive")
        if self.batch_size < 1:
            raise PlacementError(
                f"batch size must be >= 1, got {self.batch_size}"
            )
        if self.move_weights is not None:
            if len(self.move_weights) != len(_MOVE_KINDS):
                raise PlacementError(
                    f"move_weights needs one weight per kind "
                    f"{_MOVE_KINDS}, got {self.move_weights!r}"
                )
            if min(self.move_weights) < 0 or sum(self.move_weights) <= 0:
                raise PlacementError(
                    f"move_weights must be non-negative with a positive "
                    f"sum, got {self.move_weights!r}"
                )

    @property
    def temperature_steps(self) -> int:
        """Number of cooling steps the schedule will take."""
        ratio = math.log(self.min_temperature / self.initial_temperature)
        return max(1, math.ceil(ratio / math.log(self.cooling_rate)))

    @property
    def total_iterations(self) -> int:
        """Total inner-loop move iterations of the full schedule.

        The budget unit of the suspend/resume seam and the portfolio
        racer's rungs: every temperature step proposes exactly
        ``iterations_per_temperature`` candidates on every engine (the
        batch engine evaluates ``batch_size`` lanes *per iteration*,
        which is its arm's privilege, not a different budget unit).
        """
        return self.temperature_steps * self.iterations_per_temperature


@dataclass
class AnnealingResult:
    """Placement plus convergence diagnostics."""

    placement: Placement
    energy: float
    initial_energy: float
    accepted_moves: int
    trials: int
    energy_trace: list[float]
    #: The RNG seed that produced this result; under multi-start
    #: (:func:`repro.parallel.anneal_multistart`) this identifies the
    #: winning restart.
    seed: int | None = None

    @property
    def acceptance_ratio(self) -> float:
        return self.accepted_moves / self.trials if self.trials else 0.0


def anneal_placement(
    grid: ChipGrid,
    footprints: dict[str, tuple[int, int]],
    priorities: ConnectionPriorities,
    parameters: AnnealingParameters | None = None,
    seed: int = 0,
    instrumentation: Instrumentation | None = None,
    engine: str = "incremental",
    verify: bool = False,
) -> AnnealingResult:
    """Run the SA placer and return the best placement found.

    Parameters
    ----------
    grid:
        The chip's cell array.
    footprints:
        ``cid -> (width, height)`` in cells for every component.
    priorities:
        Precomputed Eq. 4 connection priorities of the schedule.
    parameters:
        SA knobs; ``None`` selects the paper's defaults.
    seed:
        RNG seed — annealing is fully deterministic given the seed,
        and the same seed gives the same result on either engine.
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation`; receives move
        counters (``sa.moves_*``) and one ``sa.step`` convergence event
        per temperature (temperature, energy, best energy, acceptance
        ratio) — the trace Fig.-style solver papers report.
    engine:
        ``"incremental"`` (default), ``"batch"``, or ``"reference"`` —
        see the module docstring.
    verify:
        Incremental engine only: after every accepted move, assert the
        accumulated energy agrees with a from-scratch Eq. 3 evaluation
        within ``1e-9`` and the occupancy index matches the blocks.
        Slow; meant for tests and debugging.
    """
    if engine not in PLACEMENT_ENGINES:
        raise PlacementError(
            f"unknown placement engine {engine!r}; "
            f"expected one of {PLACEMENT_ENGINES}"
        )
    params = parameters or AnnealingParameters()
    if engine == "reference" and params.move_weights is not None:
        raise PlacementError(
            "move_weights is only supported by the incremental and "
            "batch engines; the reference sampler is uniform"
        )
    rng = random.Random(seed)

    current = random_placement(grid, footprints, rng)
    if current is None:
        raise PlacementError(
            f"could not find an initial legal placement of "
            f"{len(footprints)} components on a "
            f"{grid.width}x{grid.height} grid"
        )
    if engine == "reference":
        result = _anneal_reference(
            current, priorities, params, rng, instrumentation
        )
    elif engine == "batch":
        # Imported lazily: the other engines never pay for the numpy
        # import, and reference/incremental runs work without numpy.
        from repro.place.batch import anneal_batch

        result = anneal_batch(
            current, priorities, params, rng, instrumentation, verify=verify
        )
    else:
        result = _anneal_incremental(
            current, priorities, params, rng, instrumentation, verify=verify
        )
    result.seed = seed
    return result


def _flush_step(
    instrumentation: Instrumentation | None,
    temperature: float,
    energy: float,
    best_energy: float,
    step_trials: int,
    step_accepted: int,
    elapsed: float = 0.0,
) -> None:
    """Per-temperature instrumentation flush shared by both engines."""
    if instrumentation is None:
        return
    instrumentation.count("sa.moves_proposed", step_trials)
    instrumentation.count("sa.moves_accepted", step_accepted)
    instrumentation.count("sa.moves_rejected", step_trials - step_accepted)
    instrumentation.count("sa.temperature_steps")
    instrumentation.observe("sa.step_seconds", elapsed)
    instrumentation.event(
        "sa.step",
        temperature=temperature,
        energy=energy,
        best_energy=best_energy,
        acceptance_ratio=(step_accepted / step_trials if step_trials else 0.0),
    )


def _flush_final(
    instrumentation: Instrumentation | None,
    initial_energy: float,
    best_energy: float,
) -> None:
    if instrumentation is None:
        return
    instrumentation.gauge("sa.final_energy", best_energy)
    instrumentation.gauge("sa.initial_energy", initial_energy)


def _anneal_reference(
    current: Placement,
    priorities: ConnectionPriorities,
    params: AnnealingParameters,
    rng: random.Random,
    instrumentation: Instrumentation | None,
) -> AnnealingResult:
    """The original immutable move loop (full recompute per trial)."""
    current_energy = placement_energy(current, priorities)
    best, best_energy = current, current_energy
    initial_energy = current_energy

    accepted = 0
    trials = 0
    trace: list[float] = []
    temperature = params.initial_temperature
    while temperature > params.min_temperature:
        # Per-temperature tallies are kept in locals and flushed once per
        # cooling step, so instrumentation stays off the per-move path.
        step_started = perf_counter()
        step_accepted = 0
        step_trials = 0
        for _ in range(params.iterations_per_temperature):
            candidate = random_move(current, rng)
            if candidate is None:
                continue
            step_trials += 1
            candidate_energy = placement_energy(candidate, priorities)
            delta = candidate_energy - current_energy
            if delta < 0 or rng.random() < math.exp(-delta / temperature):
                current, current_energy = candidate, candidate_energy
                step_accepted += 1
                if current_energy < best_energy:
                    best, best_energy = current, current_energy
        accepted += step_accepted
        trials += step_trials
        trace.append(current_energy)
        _flush_step(
            instrumentation, temperature, current_energy, best_energy,
            step_trials, step_accepted, perf_counter() - step_started,
        )
        temperature *= params.cooling_rate

    _flush_final(instrumentation, initial_energy, best_energy)
    return AnnealingResult(
        placement=best,
        energy=best_energy,
        initial_energy=initial_energy,
        accepted_moves=accepted,
        trials=trials,
        energy_trace=trace,
    )


def _sample_pending_move(
    workspace: PlacementWorkspace,
    rng: random.Random,
    attempts: int = 20,
    weights: tuple[float, float, float] | None = None,
):
    """Incremental twin of :func:`~repro.place.moves.random_move`.

    With *weights* ``None`` it replicates the reference sampler's RNG
    draw sequence exactly — same move-kind choice, same component
    choices, same ``randint`` bounds, and the same early-return points
    that skip draws — so a shared seed drives both engines through
    identical move proposals.  Non-``None`` weights bias the move-kind
    draw (``rng.choices``) and deliberately leave the bit-parity
    contract: a weighted arm is a *different* deterministic walk.
    """
    components = workspace.components()
    for _ in range(attempts):
        if weights is None:
            kind = rng.choice(_MOVE_KINDS)
        else:
            kind = rng.choices(_MOVE_KINDS, weights=weights, k=1)[0]
        pending = None
        if kind == "translate":
            if components:
                cid = rng.choice(components)
                block = workspace.block(cid)
                max_x = workspace.grid.width - block.width
                max_y = workspace.grid.height - block.height
                if max_x >= 0 and max_y >= 0:
                    x = rng.randint(0, max_x)
                    y = rng.randint(0, max_y)
                    pending = workspace.propose_translate(cid, x, y)
        elif kind == "swap":
            if len(components) >= 2:
                cid_a, cid_b = rng.sample(components, 2)
                pending = workspace.propose_swap(cid_a, cid_b)
        else:  # rotate
            if components:
                cid = rng.choice(components)
                pending = workspace.propose_rotate(cid)
        if pending is not None:
            return pending
    return None


def _anneal_incremental(
    current: Placement,
    priorities: ConnectionPriorities,
    params: AnnealingParameters,
    rng: random.Random,
    instrumentation: Instrumentation | None,
    verify: bool = False,
) -> AnnealingResult:
    """The incremental move loop over a :class:`PlacementWorkspace`."""
    workspace = PlacementWorkspace(current, priorities)
    current_energy = workspace.energy
    initial_energy = current_energy
    best_blocks = workspace.snapshot_blocks()
    best_energy = current_energy

    accepted = 0
    trials = 0
    trace: list[float] = []
    exp = math.exp
    temperature = params.initial_temperature
    while temperature > params.min_temperature:
        step_started = perf_counter()
        step_accepted = 0
        step_trials = 0
        for _ in range(params.iterations_per_temperature):
            pending = _sample_pending_move(
                workspace, rng, weights=params.move_weights
            )
            if pending is None:
                continue
            step_trials += 1
            delta = pending.delta
            if -_EXACT_DELTA_THRESHOLD < delta < _EXACT_DELTA_THRESHOLD:
                delta = workspace.exact_delta(pending)
            if delta < 0 or rng.random() < exp(-delta / temperature):
                if verify:
                    applied = workspace.apply(pending)
                    workspace.check_consistency()
                    if abs(pending.delta - applied.delta) > 1e-9:
                        raise PlacementError(
                            f"delta estimate {pending.delta!r} disagrees "
                            f"with realised change {applied.delta!r}"
                        )
                else:
                    workspace.commit(pending)
                current_energy = workspace.energy
                step_accepted += 1
                if current_energy < best_energy:
                    best_energy = current_energy
                    best_blocks = workspace.snapshot_blocks()
        accepted += step_accepted
        trials += step_trials
        trace.append(current_energy)
        _flush_step(
            instrumentation, temperature, current_energy, best_energy,
            step_trials, step_accepted, perf_counter() - step_started,
        )
        temperature *= params.cooling_rate

    best = Placement(workspace.grid, best_blocks)
    _flush_final(instrumentation, initial_energy, best_energy)
    return AnnealingResult(
        placement=best,
        energy=best_energy,
        initial_energy=initial_energy,
        accepted_moves=accepted,
        trials=trials,
        energy_trace=trace,
    )


# ----------------------------------------------------------------------
# Suspend/resume seam (the portfolio racer's checkpoint substrate)
# ----------------------------------------------------------------------
@dataclass
class AnnealCheckpoint:
    """Picklable suspended state of one anneal, pausable at step bounds.

    Captures everything the move loop needs to continue bit-exactly:
    the placement, the python RNG state (and the batch kernel's PCG64
    state), the temperature, and the step/iteration counters.  Pauses
    happen only at temperature-step boundaries, and the incremental
    workspace's energy is a full-pass recomputation after every commit
    (bit-identical to a from-scratch evaluation), so an anneal split
    across any number of suspend/resume cycles walks the *identical*
    trajectory as an uninterrupted run — the property the resume parity
    tests pin and the racer's determinism contract stands on.

    ``iterations_done`` counts inner-loop move iterations
    (``steps_done * Imax``) — the budget unit of the racer's rungs.
    """

    engine: str
    seed: int
    temperature: float
    steps_done: int
    iterations_done: int
    rng_state: tuple
    #: PCG64 ``bit_generator.state`` of the batch kernel, ``None`` for
    #: the incremental engine.
    np_rng_state: dict | None
    placement: Placement
    best_placement: Placement
    current_energy: float
    best_energy: float
    initial_energy: float
    accepted_moves: int
    trials: int
    energy_trace: list[float]
    finished: bool = False


#: Engines the checkpoint seam supports (``reference`` is the immutable
#: oracle and intentionally stays a single uninterruptible run).
RESUMABLE_ENGINES = ("incremental", "batch")


def anneal_start(
    grid: ChipGrid,
    footprints: dict[str, tuple[int, int]],
    priorities: ConnectionPriorities,
    parameters: AnnealingParameters | None = None,
    seed: int = 0,
    engine: str = "incremental",
    initial: Placement | None = None,
) -> AnnealCheckpoint:
    """Build the step-zero checkpoint of a resumable anneal.

    *initial* supplies the starting placement (e.g. the greedy-BA
    construction for a ``init=greedy`` portfolio arm); ``None`` samples
    the seeded random placement through the exact RNG draws of
    :func:`anneal_placement`, so a resumable run started here and run
    to completion without pauses reproduces the one-shot engines bit
    for bit.
    """
    params = parameters or AnnealingParameters()
    if engine not in RESUMABLE_ENGINES:
        raise PlacementError(
            f"checkpointable annealing supports engines "
            f"{RESUMABLE_ENGINES}, got {engine!r}"
        )
    rng = random.Random(seed)
    if initial is not None:
        if initial.grid is not grid and (
            initial.grid.width != grid.width
            or initial.grid.height != grid.height
        ):
            raise PlacementError(
                "initial placement was built for a different grid"
            )
        if not initial.is_legal():
            raise PlacementError(
                "initial placement for a resumable anneal must be legal"
            )
        current = initial
    else:
        current = random_placement(grid, footprints, rng)
        if current is None:
            raise PlacementError(
                f"could not find an initial legal placement of "
                f"{len(footprints)} components on a "
                f"{grid.width}x{grid.height} grid"
            )
    energy = placement_energy(current, priorities)
    np_state: dict | None = None
    if engine == "batch" and params.batch_size > 1:
        # Same draw position as anneal_batch: the 64-bit numpy seed is
        # taken right after the initial placement.
        from repro.place.batch import numpy_rng_state

        np_state = numpy_rng_state(rng.getrandbits(64))
    return AnnealCheckpoint(
        engine=engine,
        seed=seed,
        temperature=params.initial_temperature,
        steps_done=0,
        iterations_done=0,
        rng_state=rng.getstate(),
        np_rng_state=np_state,
        placement=current,
        best_placement=current,
        current_energy=energy,
        best_energy=energy,
        initial_energy=energy,
        accepted_moves=0,
        trials=0,
        energy_trace=[],
        finished=False,
    )


def anneal_resume(
    checkpoint: AnnealCheckpoint,
    priorities: ConnectionPriorities,
    parameters: AnnealingParameters | None = None,
    until_iterations: int | None = None,
    instrumentation: Instrumentation | None = None,
) -> AnnealCheckpoint:
    """Advance a suspended anneal to *until_iterations* (or completion).

    The budget is a *cumulative* inner-loop iteration count; the loop
    pauses at the first temperature-step boundary at or past it, so a
    fixed budget sequence yields the same suspension points — and hence
    the same trajectory — no matter how the work is sliced.  A
    checkpoint that already satisfies the budget (or already finished)
    is returned unchanged.
    """
    params = parameters or AnnealingParameters()
    if checkpoint.finished or (
        until_iterations is not None
        and checkpoint.iterations_done >= until_iterations
    ):
        return checkpoint
    if checkpoint.engine == "batch" and params.batch_size > 1:
        from repro.place.batch import resume_batch

        return resume_batch(
            checkpoint, priorities, params, until_iterations, instrumentation
        )
    return _resume_incremental_checkpoint(
        checkpoint, priorities, params, until_iterations, instrumentation
    )


def checkpoint_result(checkpoint: AnnealCheckpoint) -> AnnealingResult:
    """The :class:`AnnealingResult` view of a (possibly paused) anneal."""
    return AnnealingResult(
        placement=checkpoint.best_placement,
        energy=checkpoint.best_energy,
        initial_energy=checkpoint.initial_energy,
        accepted_moves=checkpoint.accepted_moves,
        trials=checkpoint.trials,
        energy_trace=list(checkpoint.energy_trace),
        seed=checkpoint.seed,
    )


def _resume_incremental_checkpoint(
    cp: AnnealCheckpoint,
    priorities: ConnectionPriorities,
    params: AnnealingParameters,
    until_iterations: int | None,
    instrumentation: Instrumentation | None,
) -> AnnealCheckpoint:
    """The incremental move loop over a rebuilt workspace.

    Mirrors :func:`_anneal_incremental` draw for draw; the only
    additions are the budget check at the step boundary and the state
    capture at suspension.  The workspace energy after reconstruction
    is bit-identical to the suspended value because both are full-pass
    evaluations over the same blocks.
    """
    workspace = PlacementWorkspace(cp.placement, priorities)
    rng = random.Random()
    rng.setstate(cp.rng_state)
    current_energy = workspace.energy
    best_energy = cp.best_energy
    best_blocks = {
        cid: cp.best_placement.block(cid)
        for cid in cp.best_placement.components()
    }
    accepted = cp.accepted_moves
    trials = cp.trials
    trace = list(cp.energy_trace)
    temperature = cp.temperature
    steps_done = cp.steps_done
    iterations_done = cp.iterations_done
    exp = math.exp
    while temperature > params.min_temperature and (
        until_iterations is None or iterations_done < until_iterations
    ):
        step_started = perf_counter()
        step_accepted = 0
        step_trials = 0
        for _ in range(params.iterations_per_temperature):
            pending = _sample_pending_move(
                workspace, rng, weights=params.move_weights
            )
            if pending is None:
                continue
            step_trials += 1
            delta = pending.delta
            if -_EXACT_DELTA_THRESHOLD < delta < _EXACT_DELTA_THRESHOLD:
                delta = workspace.exact_delta(pending)
            if delta < 0 or rng.random() < exp(-delta / temperature):
                workspace.commit(pending)
                current_energy = workspace.energy
                step_accepted += 1
                if current_energy < best_energy:
                    best_energy = current_energy
                    best_blocks = workspace.snapshot_blocks()
        accepted += step_accepted
        trials += step_trials
        trace.append(current_energy)
        _flush_step(
            instrumentation, temperature, current_energy, best_energy,
            step_trials, step_accepted, perf_counter() - step_started,
        )
        temperature *= params.cooling_rate
        steps_done += 1
        iterations_done += params.iterations_per_temperature
    finished = temperature <= params.min_temperature
    if finished:
        _flush_final(instrumentation, cp.initial_energy, best_energy)
    return AnnealCheckpoint(
        engine=cp.engine,
        seed=cp.seed,
        temperature=temperature,
        steps_done=steps_done,
        iterations_done=iterations_done,
        rng_state=rng.getstate(),
        np_rng_state=cp.np_rng_state,
        placement=workspace.snapshot(),
        best_placement=Placement(workspace.grid, best_blocks),
        current_energy=current_energy,
        best_energy=best_energy,
        initial_energy=cp.initial_energy,
        accepted_moves=accepted,
        trials=trials,
        energy_trace=trace,
        finished=finished,
    )

"""Placement data model: component blocks on the chip grid.

A :class:`Placement` maps every allocated component to a
:class:`PlacedComponent` block and answers the geometric queries the
energy function and the router need: legality (bounds + no overlap),
centres and Manhattan distances, occupied cells, and port cells (the
free cells orthogonally adjacent to a block, where channels attach).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlacementError
from repro.place.grid import Cell, ChipGrid

__all__ = ["PlacedComponent", "Placement"]


@dataclass(frozen=True)
class PlacedComponent:
    """An axis-aligned component block: origin cell plus footprint."""

    cid: str
    x: int
    y: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise PlacementError(
                f"component {self.cid}: footprint must be positive"
            )

    def cells(self) -> list[Cell]:
        """All cells covered by the block."""
        return [
            Cell(self.x + dx, self.y + dy)
            for dy in range(self.height)
            for dx in range(self.width)
        ]

    def centre(self) -> tuple[float, float]:
        """Geometric centre in cell coordinates."""
        return (self.x + (self.width - 1) / 2.0, self.y + (self.height - 1) / 2.0)

    def overlaps(self, other: "PlacedComponent", spacing: int = 0) -> bool:
        """Whether the two blocks share any cell.

        With ``spacing=1`` the test also fails when the blocks *touch*:
        legal placements keep at least one channel-width of clearance
        between components, as fabricated chips do (the flow channels of
        Fig. 1 run between the components, never pressed against them).
        """
        return not (
            self.x + self.width + spacing <= other.x
            or other.x + other.width + spacing <= self.x
            or self.y + self.height + spacing <= other.y
            or other.y + other.height + spacing <= self.y
        )

    def rotated(self) -> "PlacedComponent":
        """The block rotated 90° in place (footprint transposed)."""
        return PlacedComponent(self.cid, self.x, self.y, self.height, self.width)

    def moved_to(self, x: int, y: int) -> "PlacedComponent":
        """The block translated to a new origin."""
        return PlacedComponent(self.cid, x, y, self.width, self.height)


class Placement:
    """Immutable assignment of every component to a block on the grid."""

    def __init__(self, grid: ChipGrid, blocks: dict[str, PlacedComponent]):
        self.grid = grid
        self._blocks = dict(blocks)
        self._occupied: frozenset[Cell] | None = None
        for cid, block in self._blocks.items():
            if block.cid != cid:
                raise PlacementError(
                    f"placement key {cid!r} holds block for {block.cid!r}"
                )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def block(self, cid: str) -> PlacedComponent:
        try:
            return self._blocks[cid]
        except KeyError:
            raise PlacementError(f"component {cid!r} is not placed") from None

    def components(self) -> list[str]:
        return sorted(self._blocks)

    def blocks(self) -> list[PlacedComponent]:
        return [self._blocks[cid] for cid in sorted(self._blocks)]

    def with_block(self, block: PlacedComponent) -> "Placement":
        """A copy of this placement with one block replaced."""
        updated = dict(self._blocks)
        updated[block.cid] = block
        return Placement(self.grid, updated)

    def with_blocks(self, *blocks: PlacedComponent) -> "Placement":
        """A copy of this placement with several blocks replaced at once.

        Multi-block moves (swap) compose their updates into one candidate
        so only a single copy is built and a single legality check runs.
        """
        updated = dict(self._blocks)
        for block in blocks:
            updated[block.cid] = block
        return Placement(self.grid, updated)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def is_legal(self) -> bool:
        """Bounds, clearance, routability, and plane connectivity.

        Fast boolean twin of :meth:`violations` (no message formatting);
        this is the annealer's inner-loop check.
        """
        blocks = list(self._blocks.values())
        for block in blocks:
            if (
                block.x < 0
                or block.y < 0
                or block.x + block.width > self.grid.width
                or block.y + block.height > self.grid.height
            ):
                return False
            # A block spanning the full grid in either axis walls the
            # routing plane into two halves.
            if block.width >= self.grid.width or block.height >= self.grid.height:
                return False
        for i, a in enumerate(blocks):
            for b in blocks[i + 1:]:
                if a.overlaps(b, spacing=1):
                    return False
        # Clearance + no-full-span imply every block keeps free port
        # cells and the free plane stays 4-connected: any two blocks are
        # separated by a >=1-cell free gap (the inflated-rectangle test
        # also forbids diagonal contact), so the free ring around each
        # block is intact except where it meets the boundary, and rings
        # merge into one region.  The property-based tests assert this
        # equivalence against the explicit BFS in _free_plane_connected.
        return True

    def violations(self) -> list[str]:
        """Human-readable legality violations (empty when legal).

        Legality covers bounds, pairwise non-overlap, and *routability*:
        every component must keep at least one free orthogonally adjacent
        cell, otherwise no channel can ever attach to it.
        """
        problems = []
        blocks = self.blocks()
        for block in blocks:
            if (
                block.x < 0
                or block.y < 0
                or block.x + block.width > self.grid.width
                or block.y + block.height > self.grid.height
            ):
                problems.append(f"{block.cid} out of bounds at ({block.x},{block.y})")
            if block.width >= self.grid.width or block.height >= self.grid.height:
                problems.append(
                    f"{block.cid} spans the full grid and walls off the "
                    "routing plane"
                )
        for i, a in enumerate(blocks):
            for b in blocks[i + 1:]:
                if a.overlaps(b, spacing=1):
                    problems.append(
                        f"{a.cid} overlaps or touches {b.cid} (one "
                        "channel-width of clearance is required)"
                    )
        return problems

    def _free_plane_connected(self, occupied: set[Cell]) -> bool:
        """Whether all free cells form one 4-connected region.

        A disconnected routing plane makes some transports geometrically
        impossible, so such placements are treated as illegal outright.
        """
        total_free = self.grid.cell_count - len(occupied)
        if total_free <= 1:
            return True
        start = None
        for cell in self.grid.cells():
            if cell not in occupied:
                start = cell
                break
        assert start is not None
        seen = {start}
        stack = [start]
        while stack:
            cell = stack.pop()
            for neighbour in cell.neighbours():
                if (
                    neighbour not in seen
                    and self.grid.contains(neighbour)
                    and neighbour not in occupied
                ):
                    seen.add(neighbour)
                    stack.append(neighbour)
        return len(seen) == total_free

    def has_free_port(self, cid: str) -> bool:
        """Whether *cid*'s block keeps at least one free adjacent cell.

        Guaranteed ``True`` for legal placements (clearance + no-full-
        span imply it — see :meth:`is_legal`); exposed as a diagnostic
        for hand-built placements and the property tests.
        """
        block = self.block(cid)
        occupied = self.occupied_cells()
        block_cells = set(block.cells())
        for cell in block_cells:
            for neighbour in cell.neighbours():
                if (
                    self.grid.contains(neighbour)
                    and neighbour not in occupied
                    and neighbour not in block_cells
                ):
                    return True
        return False

    def occupied_cells(self) -> frozenset[Cell]:
        """Union of all component cells (routing obstacles).

        Memoised: the placement is immutable, and one synthesis reads
        this set many times — routing-grid construction for the
        proposed flow, the baseline flow, and the checker, plus every
        :meth:`ports` query of the routers — so it is built once and
        shared as a frozenset.
        """
        if self._occupied is None:
            occupied: set[Cell] = set()
            for block in self._blocks.values():
                occupied.update(block.cells())
            self._occupied = frozenset(occupied)
        return self._occupied

    def ports(self, cid: str) -> list[Cell]:
        """Free on-grid cells orthogonally adjacent to *cid*'s block.

        These are the cells where a flow channel may attach to the
        component.  Raises when the block is completely walled in — such
        a placement cannot be routed.
        """
        block = self.block(cid)
        block_cells = set(block.cells())
        occupied = self.occupied_cells()
        ports: list[Cell] = []
        seen: set[Cell] = set()
        for cell in block_cells:
            for neighbour in cell.neighbours():
                if neighbour in seen:
                    continue
                seen.add(neighbour)
                if (
                    self.grid.contains(neighbour)
                    and neighbour not in occupied
                    and neighbour not in block_cells
                ):
                    ports.append(neighbour)
        if not ports:
            raise PlacementError(
                f"component {cid} has no free adjacent cell to attach a channel"
            )
        return sorted(ports)

    def manhattan_distance(self, cid_a: str, cid_b: str) -> float:
        """Centre-to-centre Manhattan distance in cells (Eq. 3's ``mdis``)."""
        ax, ay = self.block(cid_a).centre()
        bx, by = self.block(cid_b).centre()
        return abs(ax - bx) + abs(ay - by)

    def bounding_box_cells(self) -> int:
        """Area of the bounding box around all blocks, in cells."""
        blocks = self.blocks()
        if not blocks:
            return 0
        min_x = min(b.x for b in blocks)
        min_y = min(b.y for b in blocks)
        max_x = max(b.x + b.width for b in blocks)
        max_y = max(b.y + b.height for b in blocks)
        return (max_x - min_x) * (max_y - min_y)

"""Incremental annealing workspace: in-place moves with delta energy.

The reference SA path (``engine="reference"``) builds a brand-new
:class:`~repro.place.placement.Placement` per trial — a full dict copy
in ``with_block``, an all-pairs ``is_legal()`` scan, and an Eq. 3
re-evaluation over *every* net — even though one move touches at most
two components.  :class:`PlacementWorkspace` replaces all three:

* **In-place apply/undo** — block positions live in one mutable dict;
  an accepted move mutates it, a rejected proposal mutates nothing, and
  :meth:`undo` restores the exact pre-move state (including the exact
  energy float, not a drifting ``energy - delta``).
* **O(1)-amortised legality** — a cell-level *occupancy index* maps
  every covered cell (as linear index ``y * width + x``) to its
  component.  A candidate block is checked by scanning only its
  one-cell-inflated rectangle (clearance ``spacing=1`` exactly as
  :meth:`PlacedComponent.overlaps`), so legality cost depends on the
  footprint, not on the number of components.  Below
  :data:`INDEX_SCAN_THRESHOLD` components the index is not even
  maintained — a plain loop of integer rectangle tests over the few
  other blocks is cheaper than hashing the inflated rectangle's cells.
* **Delta energy** — a per-component *net adjacency* is built once from
  the :class:`~repro.place.energy.ConnectionPriorities`; a proposal
  recomputes only the nets incident to the moved component(s).

Rejected proposals — the annealer's overwhelmingly common case at low
temperature — therefore cost only an inflated-rectangle scan plus the
incident nets, and allocate nothing but the proposal record.  Accepted
moves re-evaluate the energy with a tight full pass in the *identical*
term order and float expressions as
:func:`~repro.place.energy.placement_energy`, so :attr:`energy` is at
all times *bit-identical* to a from-scratch evaluation — never merely
"close".  That exactness is what lets a seeded incremental run make the
same accept/reject and best-so-far decisions as the reference engine
(see :mod:`repro.place.annealing`), and the incident-nets delta is
guaranteed to agree with the realised energy change within ``1e-9`` on
every accepted move (the property tests assert both).

Legality semantics are *exactly* those of :meth:`Placement.is_legal`:
bounds, the no-full-span rule, and pairwise clearance of one cell.  The
workspace requires — and preserves — a legal placement, so a proposal
only needs to validate the blocks it moves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlacementError
from repro.place.energy import ConnectionPriorities, placement_energy
from repro.place.placement import PlacedComponent, Placement

__all__ = ["PendingMove", "AppliedMove", "PlacementWorkspace"]

#: Component count from which the cell-level occupancy scan beats the
#: linear loop over blocks.  Below it, checking a candidate against
#: every other block (a handful of integer comparisons each) is cheaper
#: than hashing the ~(w+2)·(h+2) cells of the inflated rectangle; above
#: it, the footprint-bounded scan wins and keeps legality O(1) in the
#: number of components.  Both paths are exact — the choice only
#: affects speed, never decisions.
INDEX_SCAN_THRESHOLD = 12


@dataclass(slots=True)
class PendingMove:
    """A legal, not-yet-applied move and its estimated energy delta.

    ``changes`` holds one ``(current_block, new_x, new_y, new_width,
    new_height)`` tuple per moved component; the candidate
    :class:`PlacedComponent` objects are only materialised if the move
    is committed.  ``delta`` sums only the nets incident to the moved
    components; it agrees with the realised energy change within
    ``1e-9``.  Nothing in the workspace has changed yet; pass the
    proposal to :meth:`PlacementWorkspace.apply` (or the annealer's
    no-undo twin :meth:`PlacementWorkspace.commit`) to take it.
    """

    kind: str
    changes: tuple[tuple[PlacedComponent, int, int, int, int], ...]
    delta: float


@dataclass(slots=True)
class AppliedMove:
    """Undo token for one committed move.

    ``delta`` is the *realised* exact energy change (new minus old full
    evaluation), which may differ from the proposal's incident-nets
    estimate by float rounding noise (``<= 1e-9``).
    """

    kind: str
    replacements: tuple[tuple[PlacedComponent, PlacedComponent], ...]
    delta: float
    #: Workspace energy *before* the move — :meth:`undo` restores this
    #: exact float so apply/undo round-trips are bit-exact.
    energy_before: float


class PlacementWorkspace:
    """Mutable placement state for the incremental annealing engine."""

    def __init__(
        self, placement: Placement, priorities: ConnectionPriorities
    ) -> None:
        if not placement.is_legal():
            raise PlacementError(
                "the incremental workspace requires a legal starting placement"
            )
        self.grid = placement.grid
        self.priorities = priorities
        self._width = placement.grid.width
        self._height = placement.grid.height
        self._blocks: dict[str, PlacedComponent] = {
            cid: placement.block(cid) for cid in placement.components()
        }
        self._components: list[str] = sorted(self._blocks)
        self._use_index_scan = len(self._blocks) >= INDEX_SCAN_THRESHOLD
        #: Occupancy index: linear cell index (y * width + x) -> cid.
        #: Maintained only at/above :data:`INDEX_SCAN_THRESHOLD` — below
        #: it :meth:`_fits` never reads the index, so keeping it current
        #: would be pure overhead.
        self._owner: dict[int, str] = {}
        if self._use_index_scan:
            for block in self._blocks.values():
                self._occupy(block)
        #: Centre cache: component index -> centre coordinate, with the
        #: exact ``x + (width - 1) / 2.0`` floats of
        #: :meth:`PlacedComponent.centre` — list indexing is far cheaper
        #: than block attribute access in the energy loops, and the
        #: cached values are bit-identical to freshly computed ones.
        self._idx: dict[str, int] = {
            cid: i for i, cid in enumerate(self._components)
        }
        self._cx: list[float] = [
            b.x + (b.width - 1) / 2.0
            for b in (self._blocks[c] for c in self._components)
        ]
        self._cy: list[float] = [
            b.y + (b.height - 1) / 2.0
            for b in (self._blocks[c] for c in self._components)
        ]
        # Validates that every net's endpoints are placed, exactly as
        # the reference path would on its first evaluation — and before
        # the index-based net list below assumes the endpoints exist.
        self.energy: float = placement_energy(placement, priorities)
        #: Net list (index_a, index_b, priority) in the priorities dict's
        #: iteration order — the exact order ``placement_energy`` sums
        #: in, so :meth:`_exact_energy` reproduces its float result bit
        #: for bit.
        self._net_list: tuple[tuple[int, int, float], ...] = tuple(
            (self._idx[cid_a], self._idx[cid_b], priority)
            for (cid_a, cid_b), priority in priorities.priorities.items()
        )
        #: Net adjacency: cid -> ((other_index, priority), ...).
        adjacency: dict[str, list[tuple[int, float]]] = {
            cid: [] for cid in self._blocks
        }
        for (cid_a, cid_b), priority in priorities.priorities.items():
            if cid_a in adjacency and cid_b in adjacency:
                adjacency[cid_a].append((self._idx[cid_b], priority))
                adjacency[cid_b].append((self._idx[cid_a], priority))
        self._incident: dict[str, tuple[tuple[int, float], ...]] = {
            cid: tuple(pairs) for cid, pairs in adjacency.items()
        }

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def components(self) -> list[str]:
        """Sorted component ids (same list object every call — the id
        set never changes, only positions do)."""
        return self._components

    def block(self, cid: str) -> PlacedComponent:
        try:
            return self._blocks[cid]
        except KeyError:
            raise PlacementError(f"component {cid!r} is not placed") from None

    def snapshot_blocks(self) -> dict[str, PlacedComponent]:
        """A copy of the current block assignment (blocks are frozen)."""
        return dict(self._blocks)

    def snapshot(self) -> Placement:
        """An immutable :class:`Placement` of the current state."""
        return Placement(self.grid, self._blocks)

    def full_energy(self) -> float:
        """From-scratch Eq. 3 evaluation (the verification oracle)."""
        return placement_energy(self.snapshot(), self.priorities)

    # ------------------------------------------------------------------
    # Occupancy index
    # ------------------------------------------------------------------
    def _occupy(self, block: PlacedComponent) -> None:
        owner = self._owner
        width = self._width
        cid = block.cid
        x0 = block.x
        for y in range(block.y, block.y + block.height):
            base = y * width + x0
            for offset in range(block.width):
                owner[base + offset] = cid

    def _vacate(self, block: PlacedComponent) -> None:
        owner = self._owner
        width = self._width
        x0 = block.x
        for y in range(block.y, block.y + block.height):
            base = y * width + x0
            for offset in range(block.width):
                del owner[base + offset]

    def _fits(
        self, x: int, y: int, width: int, height: int,
        ignore_a: str, ignore_b: str | None = None,
    ) -> bool:
        """Bounds + no-full-span + clearance for one candidate block.

        Clearance is checked either by scanning the occupancy index over
        the one-cell-inflated rectangle or — below
        :data:`INDEX_SCAN_THRESHOLD` components — by a linear loop over
        the other blocks.  Both are equivalent to ``not
        candidate.overlaps(other, spacing=1)`` for every other block:
        two integer-aligned rectangles violate the clearance iff the
        other covers a cell of the candidate inflated by one cell on
        each side.
        """
        grid_w = self._width
        grid_h = self._height
        if x < 0 or y < 0:
            return False
        if x + width > grid_w or y + height > grid_h:
            return False
        if width >= grid_w or height >= grid_h:
            return False
        if not self._use_index_scan:
            x_end = x + width + 1
            y_end = y + height + 1
            for other in self._blocks.values():
                cid = other.cid
                if cid == ignore_a or cid == ignore_b:
                    continue
                if (
                    x_end > other.x
                    and other.x + other.width + 1 > x
                    and y_end > other.y
                    and other.y + other.height + 1 > y
                ):
                    return False
            return True
        get = self._owner.get
        x0 = x - 1 if x > 0 else 0
        y0 = y - 1 if y > 0 else 0
        x1 = x + width
        if x1 > grid_w - 1:
            x1 = grid_w - 1
        y1 = y + height
        if y1 > grid_h - 1:
            y1 = grid_h - 1
        for cy in range(y0, y1 + 1):
            base = cy * grid_w
            for cell in range(base + x0, base + x1 + 1):
                occupant = get(cell)
                if (
                    occupant is not None
                    and occupant != ignore_a
                    and occupant != ignore_b
                ):
                    return False
        return True

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------
    def _exact_energy(self) -> float:
        """Full Eq. 3 pass, bit-identical to ``placement_energy``.

        Iterates the nets in the same order and evaluates the same float
        expressions as the reference evaluation; the cached centres hold
        exactly the ``x + (width - 1) / 2.0`` floats a fresh evaluation
        would compute.
        """
        cx = self._cx
        cy = self._cy
        total = 0.0
        for ia, ib, priority in self._net_list:
            total += (abs(cx[ia] - cx[ib]) + abs(cy[ia] - cy[ib])) * priority
        return total

    def exact_delta(self, move: PendingMove) -> float:
        """The move's exact energy change (full-evaluation difference).

        Matches what the reference engine's ``candidate_energy -
        current_energy`` computes, bit for bit.  The annealer falls back
        to this when the incident-nets estimate is too close to zero to
        trust its sign.
        """
        # Write the candidate centres into the cache, evaluate, restore.
        cx = self._cx
        cy = self._cy
        idx = self._idx
        saved = []
        for old, x, y, w, h in move.changes:
            i = idx[old.cid]
            saved.append((i, cx[i], cy[i]))
            cx[i] = x + (w - 1) / 2.0
            cy[i] = y + (h - 1) / 2.0
        total = self._exact_energy()
        for i, ox, oy in saved:
            cx[i] = ox
            cy[i] = oy
        return total - self.energy

    def _delta_single(
        self, cid: str, new_x: int, new_y: int, new_w: int, new_h: int
    ) -> float:
        """Incident-nets energy delta of moving *cid* alone."""
        cx = self._cx
        cy = self._cy
        i = self._idx[cid]
        ox = cx[i]
        oy = cy[i]
        nx = new_x + (new_w - 1) / 2.0
        ny = new_y + (new_h - 1) / 2.0
        new_sum = 0.0
        old_sum = 0.0
        for oi, priority in self._incident[cid]:
            bx = cx[oi]
            by = cy[oi]
            new_sum += (abs(nx - bx) + abs(ny - by)) * priority
            old_sum += (abs(ox - bx) + abs(oy - by)) * priority
        return new_sum - old_sum

    def _delta_pair(
        self,
        old_a: PlacedComponent,
        old_b: PlacedComponent,
        ax: int, ay: int, bx_o: int, by_o: int,
    ) -> float:
        """Incident-nets delta of moving two components at once (swap).

        ``(ax, ay)`` / ``(bx_o, by_o)`` are the new origins of *old_a* /
        *old_b*; footprints are unchanged by a swap.
        """
        cx = self._cx
        cy = self._cy
        idx = self._idx
        ia = idx[old_a.cid]
        ib = idx[old_b.cid]
        oax = cx[ia]
        oay = cy[ia]
        obx = cx[ib]
        oby = cy[ib]
        nax = ax + (old_a.width - 1) / 2.0
        nay = ay + (old_a.height - 1) / 2.0
        nbx = bx_o + (old_b.width - 1) / 2.0
        nby = by_o + (old_b.height - 1) / 2.0
        new_sum = 0.0
        old_sum = 0.0
        for oi, priority in self._incident[old_a.cid]:
            if oi == ib:
                # The net between the moved pair: count it once, with
                # both endpoints at their new positions.
                new_sum += (abs(nax - nbx) + abs(nay - nby)) * priority
                old_sum += (abs(oax - obx) + abs(oay - oby)) * priority
                continue
            bx = cx[oi]
            by = cy[oi]
            new_sum += (abs(nax - bx) + abs(nay - by)) * priority
            old_sum += (abs(oax - bx) + abs(oay - by)) * priority
        for oi, priority in self._incident[old_b.cid]:
            if oi == ia:
                continue
            bx = cx[oi]
            by = cy[oi]
            new_sum += (abs(nbx - bx) + abs(nby - by)) * priority
            old_sum += (abs(obx - bx) + abs(oby - by)) * priority
        return new_sum - old_sum

    # ------------------------------------------------------------------
    # Move proposals (legality + delta; nothing is mutated)
    # ------------------------------------------------------------------
    def propose_translate(self, cid: str, x: int, y: int) -> PendingMove | None:
        """Translate *cid* to origin ``(x, y)``; ``None`` when illegal."""
        old = self.block(cid)
        if not self._fits(x, y, old.width, old.height, cid):
            return None
        delta = self._delta_single(cid, x, y, old.width, old.height)
        return PendingMove(
            "translate", ((old, x, y, old.width, old.height),), delta
        )

    def propose_rotate(self, cid: str) -> PendingMove | None:
        """Transpose *cid*'s footprint in place; ``None`` when illegal."""
        old = self.block(cid)
        width, height = old.height, old.width
        if not self._fits(old.x, old.y, width, height, cid):
            return None
        delta = self._delta_single(cid, old.x, old.y, width, height)
        return PendingMove("rotate", ((old, old.x, old.y, width, height),), delta)

    def propose_swap(self, cid_a: str, cid_b: str) -> PendingMove | None:
        """Exchange the origins of two components; ``None`` when illegal."""
        if cid_a == cid_b:
            return None
        old_a = self.block(cid_a)
        old_b = self.block(cid_b)
        if not self._fits(old_b.x, old_b.y, old_a.width, old_a.height, cid_a, cid_b):
            return None
        if not self._fits(old_a.x, old_a.y, old_b.width, old_b.height, cid_a, cid_b):
            return None
        # Clearance of the swapped pair against each other (the index
        # scan above ignored both).  Inline inflated-rectangle test ==
        # PlacedComponent.overlaps(spacing=1) on the moved blocks.
        if not (
            old_b.x + old_a.width + 1 <= old_a.x
            or old_a.x + old_b.width + 1 <= old_b.x
            or old_b.y + old_a.height + 1 <= old_a.y
            or old_a.y + old_b.height + 1 <= old_b.y
        ):
            return None
        delta = self._delta_pair(old_a, old_b, old_b.x, old_b.y, old_a.x, old_a.y)
        return PendingMove(
            "swap",
            (
                (old_a, old_b.x, old_b.y, old_a.width, old_a.height),
                (old_b, old_a.x, old_a.y, old_b.width, old_b.height),
            ),
            delta,
        )

    # ------------------------------------------------------------------
    # Apply / undo
    # ------------------------------------------------------------------
    def commit(self, move: PendingMove) -> None:
        """Commit a proposal without building an undo token.

        The annealer's fast path — identical state transition to
        :meth:`apply`, minus the :class:`AppliedMove` record.
        """
        blocks = self._blocks
        for old, _x, _y, _w, _h in move.changes:
            if blocks.get(old.cid) is not old:
                raise PlacementError(
                    f"stale move: block of {old.cid!r} changed since the "
                    "proposal was made"
                )
        use_index = self._use_index_scan
        if use_index:
            for old, _x, _y, _w, _h in move.changes:
                self._vacate(old)
        idx = self._idx
        cx = self._cx
        cy = self._cy
        for old, x, y, w, h in move.changes:
            new = PlacedComponent(old.cid, x, y, w, h)
            if use_index:
                self._occupy(new)
            blocks[old.cid] = new
            i = idx[old.cid]
            cx[i] = x + (w - 1) / 2.0
            cy[i] = y + (h - 1) / 2.0
        self.energy = self._exact_energy()

    def apply(self, move: PendingMove) -> AppliedMove:
        """Commit a proposal; returns the undo token.

        The workspace energy is refreshed with an exact full evaluation
        so it stays bit-identical to ``placement_energy`` of the new
        state (see the module docstring for why that matters).
        """
        energy_before = self.energy
        self.commit(move)
        replacements = tuple(
            (old, self._blocks[old.cid]) for old, _x, _y, _w, _h in move.changes
        )
        return AppliedMove(
            move.kind, replacements, self.energy - energy_before, energy_before
        )

    def undo(self, applied: AppliedMove) -> None:
        """Reverse a committed move, restoring the exact prior energy."""
        blocks = self._blocks
        for _old, new in applied.replacements:
            if blocks.get(new.cid) is not new:
                raise PlacementError(
                    f"cannot undo: block of {new.cid!r} changed after the move"
                )
        use_index = self._use_index_scan
        if use_index:
            for _old, new in applied.replacements:
                self._vacate(new)
        idx = self._idx
        cx = self._cx
        cy = self._cy
        for old, _new in applied.replacements:
            if use_index:
                self._occupy(old)
            blocks[old.cid] = old
            i = idx[old.cid]
            cx[i] = old.x + (old.width - 1) / 2.0
            cy[i] = old.y + (old.height - 1) / 2.0
        self.energy = applied.energy_before

    # ------------------------------------------------------------------
    # Invariant checks (test / paranoid-mode hooks)
    # ------------------------------------------------------------------
    def check_consistency(self, tolerance: float = 0.0) -> None:
        """Assert index + energy invariants against the from-scratch oracle.

        Raises :class:`PlacementError` when the occupancy index disagrees
        with the blocks, the placement is illegal, or the maintained
        energy differs from a full ``placement_energy`` recompute by more
        than *tolerance* (default: must be bit-exact).
        """
        if self._use_index_scan:
            expected_owner: dict[int, str] = {}
            for cid, block in self._blocks.items():
                for cell in block.cells():
                    expected_owner[cell.y * self._width + cell.x] = cid
            if expected_owner != self._owner:
                raise PlacementError("occupancy index out of sync with blocks")
        elif self._owner:
            raise PlacementError(
                "occupancy index should stay empty below the scan threshold"
            )
        for cid, block in self._blocks.items():
            i = self._idx[cid]
            if (
                self._cx[i] != block.x + (block.width - 1) / 2.0
                or self._cy[i] != block.y + (block.height - 1) / 2.0
            ):
                raise PlacementError(
                    f"centre cache out of sync for component {cid!r}"
                )
        placement = self.snapshot()
        if not placement.is_legal():
            raise PlacementError(
                "workspace holds an illegal placement: "
                + "; ".join(placement.violations())
            )
        exact = placement_energy(placement, self.priorities)
        if abs(exact - self.energy) > tolerance:
            raise PlacementError(
                f"incremental energy drifted: maintained {self.energy!r} "
                f"vs recomputed {exact!r}"
            )

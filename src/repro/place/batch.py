"""Numpy batch-move SA kernel (``engine="batch"``).

The incremental engine (:mod:`repro.place.incremental`) made a single
move trial cheap; this kernel makes *many* trials cheap at once.  Per
annealing step it:

1. draws ``K = batch_size`` candidate moves (kind, component, partner,
   position) from one vectorized RNG block;
2. validates all of them against the structure-of-arrays placement
   mirror — bounds, the no-full-span rule, and one-cell clearance as a
   ``(K, m)`` inflated-rectangle broadcast — exactly the
   :meth:`~repro.place.incremental.PlacementWorkspace._fits` semantics;
3. evaluates every legal candidate's incident-net energy delta as a
   gather + segment-sum over a CSR net adjacency;
4. applies Metropolis acceptance to the **greedily best** candidate
   (smallest delta): downhill accepts outright, uphill draws a single
   uniform against ``exp(-Δ/T)``.

**RNG-stream contract.**  The kernel consumes the annealer's seeded
``random.Random`` only to derive one 64-bit seed for an independent
``numpy.random.default_rng`` (PCG64) stream.  Per step the numpy stream
is consumed in a fixed order — kinds ``(K,)``, components ``(K,)``,
partners ``(K,)``, positions ``(K, 2)`` — regardless of which lanes
turn out legal, then at most one acceptance uniform (drawn only when
the best delta is non-negative).  Runs are therefore bit-reproducible
for a given ``(seed, batch_size)`` and independent of the host.  At
``batch_size=1`` the kernel does not approximate the python loop — it
**delegates** to :func:`repro.place.annealing._anneal_incremental`
verbatim, so ``engine="batch", batch_size=1`` is bit-identical to
``engine="incremental"`` (same trajectories, traces, and energies);
that is the degenerate case of the contract and the anchor of the
parity suite.

At ``K > 1`` there is deliberately no bit-level contract against the
serial engines (vectorized reductions sum in a different order, and
best-of-K is a different walk): the gates are *final energy never worse
than the incremental engine on the bench set* and *checker-clean*, both
pinned by tests and recorded in the BENCH artifact.

Energies reported outward remain exact: the returned best energy is a
full scalar :func:`~repro.place.energy.placement_energy` evaluation of
the returned placement, so downstream consumers see a true Eq. 3
value, not a vectorized approximation.
"""

from __future__ import annotations

import math
import random
from time import perf_counter

try:  # the kernel is numpy-only; batch_size=1 works without it
    import numpy as _np
except ImportError:  # pragma: no cover - the test image ships numpy
    _np = None

from repro.errors import PlacementError
from repro.obs.instrument import Instrumentation
from repro.place.annealing import (
    AnnealCheckpoint,
    AnnealingParameters,
    AnnealingResult,
    _anneal_incremental,
    _flush_final,
    _flush_step,
)
from repro.place.energy import ConnectionPriorities, placement_energy
from repro.place.placement import PlacedComponent, Placement

__all__ = ["BatchWorkspace", "anneal_batch", "numpy_rng_state", "resume_batch"]


def numpy_rng_state(np_seed: int) -> dict:
    """The PCG64 ``bit_generator.state`` a fresh stream would start in.

    :func:`repro.place.annealing.anneal_start` stores this in the
    checkpoint instead of the seed itself so every resume restores the
    *advanced* stream position, not the beginning.
    """
    if _np is None:  # pragma: no cover - exercised via subprocess test
        raise PlacementError(
            "engine='batch' with batch_size > 1 requires numpy; "
            "install it or use batch_size=1 / engine='incremental'"
        )
    return _np.random.default_rng(np_seed).bit_generator.state


class BatchWorkspace:
    """Structure-of-arrays mirror of a placement for the batch kernel.

    Block origins and footprints live in int64 arrays, centres in
    float64 (the exact ``x + (width - 1) / 2.0`` halves), and the net
    adjacency in CSR form (``inc_ptr`` / ``inc_other`` / ``inc_p``,
    both directions per net) — everything a step needs without touching
    a python object.
    """

    def __init__(
        self,
        placement: Placement,
        priorities: ConnectionPriorities,
        batch_size: int,
        np_seed: int,
        move_weights: tuple[float, float, float] | None = None,
    ) -> None:
        if _np is None:  # pragma: no cover - exercised via subprocess test
            raise PlacementError(
                "engine='batch' with batch_size > 1 requires numpy; "
                "install it or use batch_size=1 / engine='incremental'"
            )
        self.grid = placement.grid
        self.priorities = priorities
        self.k = batch_size
        self.width = placement.grid.width
        self.height = placement.grid.height
        cids = sorted(placement.components())
        self.cids = cids
        self.m = len(cids)
        idx = {cid: i for i, cid in enumerate(cids)}
        blocks = [placement.block(cid) for cid in cids]
        self.bx = _np.array([b.x for b in blocks], dtype=_np.int64)
        self.by = _np.array([b.y for b in blocks], dtype=_np.int64)
        self.bw = _np.array([b.width for b in blocks], dtype=_np.int64)
        self.bh = _np.array([b.height for b in blocks], dtype=_np.int64)
        self.cx = self.bx + (self.bw - 1) / 2.0
        self.cy = self.by + (self.bh - 1) / 2.0
        nets = list(priorities.priorities.items())
        self.net_a = _np.array(
            [idx[a] for (a, _b), _p in nets], dtype=_np.int64
        )
        self.net_b = _np.array(
            [idx[b] for (_a, b), _p in nets], dtype=_np.int64
        )
        self.net_p = _np.array([p for _ab, p in nets], dtype=_np.float64)
        # CSR incident adjacency: per component, (other, priority) of
        # every net touching it, both directions.
        incident: list[list[tuple[int, float]]] = [[] for _ in range(self.m)]
        for (a, b), p in nets:
            incident[idx[a]].append((idx[b], p))
            incident[idx[b]].append((idx[a], p))
        counts = [len(pairs) for pairs in incident]
        self.inc_ptr = _np.zeros(self.m + 1, dtype=_np.int64)
        _np.cumsum(counts, out=self.inc_ptr[1:])
        self.inc_other = _np.array(
            [o for pairs in incident for o, _p in pairs], dtype=_np.int64
        )
        self.inc_p = _np.array(
            [p for pairs in incident for _o, p in pairs], dtype=_np.float64
        )
        # Dense symmetric priority matrix (m is tens, not thousands):
        # P[a, b] is the a-b net priority or 0 — the swap-delta
        # correction term reads it per lane.
        self.net_matrix = _np.zeros((self.m, self.m), dtype=_np.float64)
        self.net_matrix[self.net_a, self.net_b] = self.net_p
        self.net_matrix[self.net_b, self.net_a] = self.net_p
        self.rng = _np.random.default_rng(np_seed)
        # Optional move-mix bias (translate/swap/rotate probabilities);
        # None keeps the uniform integers draw of the RNG-stream
        # contract, a weighted workspace is a different deterministic
        # walk (same rule as the serial sampler's weighted mode).
        if move_weights is None:
            self._kind_p = None
        else:
            w = _np.asarray(move_weights, dtype=_np.float64)
            self._kind_p = w / w.sum()
        self._lanes = _np.arange(batch_size)
        self._inf_k = _np.full(batch_size, _np.inf)
        #: Running energy: exact (scalar Eq. 3) at construction, then a
        #: vectorized full recompute after each accepted move.
        self.energy = placement_energy(placement, priorities)

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------
    def vector_energy(self) -> float:
        """Full Eq. 3 evaluation as one vectorized reduction."""
        cx = self.cx
        cy = self.cy
        a = self.net_a
        b = self.net_b
        return float(
            _np.sum(
                self.net_p
                * (_np.abs(cx[a] - cx[b]) + _np.abs(cy[a] - cy[b]))
            )
        )

    def snapshot_placement(self) -> Placement:
        """Immutable :class:`Placement` of the current array state."""
        return Placement(self.grid, self._blocks_from_arrays())

    def _blocks_from_arrays(
        self, arrays: tuple | None = None
    ) -> dict[str, PlacedComponent]:
        bx, by, bw, bh = arrays if arrays is not None else (
            self.bx, self.by, self.bw, self.bh
        )
        return {
            cid: PlacedComponent(
                cid, int(bx[i]), int(by[i]), int(bw[i]), int(bh[i])
            )
            for i, cid in enumerate(self.cids)
        }

    def check_consistency(self, tolerance: float = 1e-6) -> None:
        """Assert legality + energy against the from-scratch oracle."""
        placement = self.snapshot_placement()
        if not placement.is_legal():
            raise PlacementError(
                "batch workspace holds an illegal placement: "
                + "; ".join(placement.violations())
            )
        exact = placement_energy(placement, self.priorities)
        if abs(exact - self.energy) > tolerance:
            raise PlacementError(
                f"batch energy drifted: maintained {self.energy!r} vs "
                f"recomputed {exact!r}"
            )

    # ------------------------------------------------------------------
    # One annealing step (K candidates, at most one accept)
    # ------------------------------------------------------------------
    def step(self, temperature: float) -> tuple[int, bool]:
        """Propose K moves, evaluate all, Metropolis-accept the best.

        Returns ``(legal_candidates, accepted)`` — the number of legal
        candidates actually evaluated (the throughput unit surfaced as
        ``sa.moves_proposed``) and whether the best one was taken.
        """
        rng = self.rng
        k = self.k
        m = self.m
        if self._kind_p is None:
            kinds = rng.integers(0, 3, size=k)  # 0 tran., 1 swap, 2 rot.
        else:
            kinds = rng.choice(3, size=k, p=self._kind_p)
        comps = rng.integers(0, m, size=k)
        partners = rng.integers(0, m, size=k)
        u = rng.random((k, 2))

        bx, by, bw, bh = self.bx, self.by, self.bw, self.bh
        width = self.width
        height = self.height
        is_swap = kinds == 1
        is_rot = kinds == 2
        # Primary change: comps[j] moves to (x1, y1) with footprint
        # (w1, h1).  Translate keeps the footprint at a sampled origin,
        # rotate transposes in place, swap takes the partner's origin.
        w1 = _np.where(is_rot, bh[comps], bw[comps])
        h1 = _np.where(is_rot, bw[comps], bh[comps])
        range_x = _np.maximum(width - w1, 0)
        range_y = _np.maximum(height - h1, 0)
        tx = _np.minimum(
            (u[:, 0] * (range_x + 1)).astype(_np.int64), range_x
        )
        ty = _np.minimum(
            (u[:, 1] * (range_y + 1)).astype(_np.int64), range_y
        )
        x1 = _np.where(is_swap, bx[partners], _np.where(is_rot, bx[comps], tx))
        y1 = _np.where(is_swap, by[partners], _np.where(is_rot, by[comps], ty))
        # Secondary change (swap lanes only): the partner moves to the
        # primary component's *old* origin, keeping its own footprint.
        x2 = bx[comps]
        y2 = by[comps]
        w2 = bw[partners]
        h2 = bh[partners]

        # Legality: bounds + no-full-span + pairwise clearance of one
        # cell, mirroring PlacementWorkspace._fits.
        legal = ~(is_swap & (partners == comps))
        legal &= (x1 >= 0) & (y1 >= 0)
        legal &= (x1 + w1 <= width) & (y1 + h1 <= height)
        legal &= (w1 < width) & (h1 < height)
        swap_bounds = (
            (x2 + w2 <= width) & (y2 + h2 <= height)
            & (w2 < width) & (h2 < height)
        )
        legal &= swap_bounds | ~is_swap
        lanes = self._lanes
        # (K, m) inflated-rectangle overlap of the primary change
        # against every block, excluding the moved pair.
        ov1 = (
            (x1[:, None] < (bx + bw + 1)[None, :])
            & (bx[None, :] < (x1 + w1 + 1)[:, None])
            & (y1[:, None] < (by + bh + 1)[None, :])
            & (by[None, :] < (y1 + h1 + 1)[:, None])
        )
        ov1[lanes, comps] = False
        ov1[lanes[is_swap], partners[is_swap]] = False
        legal &= ~ov1.any(axis=1)
        if is_swap.any():
            ov2 = (
                (x2[:, None] < (bx + bw + 1)[None, :])
                & (bx[None, :] < (x2 + w2 + 1)[:, None])
                & (y2[:, None] < (by + bh + 1)[None, :])
                & (by[None, :] < (y2 + h2 + 1)[:, None])
            )
            ov2[lanes, comps] = False
            ov2[lanes, partners] = False
            legal &= ~ov2.any(axis=1) | ~is_swap
            # Clearance of the swapped pair against each other.
            pair_separated = (
                (x1 + w1 + 1 <= x2) | (x2 + w2 + 1 <= x1)
                | (y1 + h1 + 1 <= y2) | (y2 + h2 + 1 <= y1)
            )
            legal &= pair_separated | ~is_swap

        n_legal = int(_np.count_nonzero(legal))
        if n_legal == 0:
            return 0, False

        ncx1 = x1 + (w1 - 1) / 2.0
        ncy1 = y1 + (h1 - 1) / 2.0
        deltas = self._inf_k.copy()
        single = _np.nonzero(legal & ~is_swap)[0]
        swaps = _np.nonzero(legal & is_swap)[0]
        # One CSR gather for every legal lane: single lanes contribute
        # one moved component, swap lanes two (a to the partner's
        # origin, b to a's old origin), each evaluated against the
        # *current* centres; the shared a-b net is then corrected to
        # the both-endpoints-moved value (see _swap_correction).
        if swaps.size:
            a = comps[swaps]
            b = partners[swaps]
            nax = ncx1[swaps]
            nay = ncy1[swaps]
            nbx = x2[swaps] + (w2[swaps] - 1) / 2.0
            nby = y2[swaps] + (h2[swaps] - 1) / 2.0
            cat_comps = _np.concatenate((comps[single], a, b))
            cat_cx = _np.concatenate((ncx1[single], nax, nbx))
            cat_cy = _np.concatenate((ncy1[single], nay, nby))
            cat = self._single_deltas(cat_comps, cat_cx, cat_cy)
            ns, nw = single.size, swaps.size
            if ns:
                deltas[single] = cat[:ns]
            deltas[swaps] = (
                cat[ns:ns + nw] + cat[ns + nw:]
                + self._swap_correction(a, b, nax, nay, nbx, nby)
            )
        elif single.size:
            deltas[single] = self._single_deltas(
                comps[single], ncx1[single], ncy1[single]
            )

        best = int(_np.argmin(deltas))
        best_delta = float(deltas[best])
        if best_delta < 0:
            accept = True
        else:
            accept = rng.random() < math.exp(-best_delta / temperature)
        if accept:
            a = int(comps[best])
            self.bx[a] = x1[best]
            self.by[a] = y1[best]
            self.bw[a] = w1[best]
            self.bh[a] = h1[best]
            self.cx[a] = ncx1[best]
            self.cy[a] = ncy1[best]
            if is_swap[best]:
                b = int(partners[best])
                self.bx[b] = x2[best]
                self.by[b] = y2[best]
                self.cx[b] = x2[best] + (w2[best] - 1) / 2.0
                self.cy[b] = y2[best] + (h2[best] - 1) / 2.0
            self.energy = self.vector_energy()
        return n_legal, accept

    def _single_deltas(self, comps, new_cx, new_cy):
        """Incident-net deltas of single-component lanes, vectorized.

        CSR gather: concatenate every lane's incident slice, broadcast
        the lane's old/new centre over it, and segment-sum the per-net
        contributions back per lane with ``bincount``.
        """
        ptr = self.inc_ptr
        starts = ptr[comps]
        counts = ptr[comps + 1] - starts
        total = int(counts.sum())
        n = comps.shape[0]
        if total == 0:
            return _np.zeros(n)
        excl = _np.cumsum(counts) - counts
        flat = _np.repeat(starts - excl, counts) + _np.arange(total)
        segment = _np.repeat(_np.arange(n), counts)
        others = self.inc_other[flat]
        pr = self.inc_p[flat]
        ocx = self.cx[others]
        ocy = self.cy[others]
        nx = _np.repeat(new_cx, counts)
        ny = _np.repeat(new_cy, counts)
        ox = _np.repeat(self.cx[comps], counts)
        oy = _np.repeat(self.cy[comps], counts)
        contrib = pr * (
            (_np.abs(nx - ocx) + _np.abs(ny - ocy))
            - (_np.abs(ox - ocx) + _np.abs(oy - ocy))
        )
        return _np.bincount(segment, weights=contrib, minlength=n)

    def _swap_correction(self, a, b, nax, nay, nbx, nby):
        """Shared-net fixup making two single-move deltas a swap delta.

        Summing the independent single-move deltas of the pair counts
        the a-b net (when one exists) twice, each time against the
        partner's *old* centre.  The true swap contribution evaluates
        it once with both endpoints moved (mirroring
        ``PlacementWorkspace._delta_pair``), so per lane, with priority
        ``p = P[a, b]`` and Manhattan distance ``d``::

            correction = p * (d(na, nb) - d(na, ob))   # a-side: old-b -> new-b
                       - p * (d(nb, oa) - d(ob, oa))   # drop b-side's count

        Lanes whose pair shares no net have ``p = 0`` and are untouched.
        """
        oax = self.cx[a]
        oay = self.cy[a]
        obx = self.cx[b]
        oby = self.cy[b]
        p = self.net_matrix[a, b]
        d_nn = _np.abs(nax - nbx) + _np.abs(nay - nby)
        d_no = _np.abs(nax - obx) + _np.abs(nay - oby)
        d_bn = _np.abs(nbx - oax) + _np.abs(nby - oay)
        d_oo = _np.abs(obx - oax) + _np.abs(oby - oay)
        return p * ((d_nn - d_no) - (d_bn - d_oo))


def anneal_batch(
    current: Placement,
    priorities: ConnectionPriorities,
    params: AnnealingParameters,
    rng: random.Random,
    instrumentation: Instrumentation | None,
    verify: bool = False,
) -> AnnealingResult:
    """The batch engine's move loop (see the module docstring).

    ``batch_size=1`` delegates to the incremental loop — bit-identical
    to ``engine="incremental"`` by construction.  Larger batch sizes
    run the vectorized best-of-K kernel.
    """
    if params.batch_size == 1:
        return _anneal_incremental(
            current, priorities, params, rng, instrumentation, verify=verify
        )
    workspace = BatchWorkspace(
        current, priorities, params.batch_size, rng.getrandbits(64),
        move_weights=params.move_weights,
    )
    if instrumentation is not None:
        instrumentation.gauge("sa.batch_size", params.batch_size)
    current_energy = workspace.energy
    initial_energy = current_energy
    best_energy = current_energy
    best_arrays = (
        workspace.bx.copy(), workspace.by.copy(),
        workspace.bw.copy(), workspace.bh.copy(),
    )

    accepted = 0
    trials = 0
    trace: list[float] = []
    temperature = params.initial_temperature
    while temperature > params.min_temperature:
        step_started = perf_counter()
        kernel_seconds = 0.0
        step_accepted = 0
        step_trials = 0
        for _ in range(params.iterations_per_temperature):
            kernel_started = perf_counter()
            n_legal, took = workspace.step(temperature)
            kernel_seconds += perf_counter() - kernel_started
            step_trials += n_legal
            if took:
                step_accepted += 1
                if verify:
                    workspace.check_consistency()
                current_energy = workspace.energy
                if current_energy < best_energy:
                    best_energy = current_energy
                    best_arrays = (
                        workspace.bx.copy(), workspace.by.copy(),
                        workspace.bw.copy(), workspace.bh.copy(),
                    )
        accepted += step_accepted
        trials += step_trials
        trace.append(current_energy)
        if instrumentation is not None:
            instrumentation.observe("sa.batch_kernel_seconds", kernel_seconds)
        _flush_step(
            instrumentation, temperature, current_energy, best_energy,
            step_trials, step_accepted, perf_counter() - step_started,
        )
        temperature *= params.cooling_rate

    best = Placement(
        workspace.grid, workspace._blocks_from_arrays(best_arrays)
    )
    # Report a true scalar Eq. 3 energy, not the vectorized running
    # value — downstream consumers (multi-start reduction, bench
    # artifacts) compare energies across engines.
    best_energy = placement_energy(best, priorities)
    _flush_final(instrumentation, initial_energy, best_energy)
    return AnnealingResult(
        placement=best,
        energy=best_energy,
        initial_energy=initial_energy,
        accepted_moves=accepted,
        trials=trials,
        energy_trace=trace,
    )


def resume_batch(
    cp: AnnealCheckpoint,
    priorities: ConnectionPriorities,
    params: AnnealingParameters,
    until_iterations: int | None,
    instrumentation: Instrumentation | None,
) -> AnnealCheckpoint:
    """Advance a suspended batch anneal (see ``anneal_resume``).

    Continuity is exact: the PCG64 stream is restored from the stored
    ``bit_generator.state`` (the advanced position, not the seed), and
    the checkpoint's running energy overrides the workspace's
    construction-time scalar evaluation — the vectorized full recompute
    after an accept can differ from the scalar Eq. 3 sum in the last
    ulp, so carrying the stored value keeps a split run's acceptance
    decisions bit-identical to an uninterrupted :func:`anneal_batch`.
    A finished resume reports the exact scalar energy of the best
    placement outward, exactly like :func:`anneal_batch`.
    """
    workspace = BatchWorkspace(
        cp.placement, priorities, params.batch_size, np_seed=0,
        move_weights=params.move_weights,
    )
    workspace.rng.bit_generator.state = cp.np_rng_state
    workspace.energy = cp.current_energy
    if instrumentation is not None:
        instrumentation.gauge("sa.batch_size", params.batch_size)
    current_energy = cp.current_energy
    best_energy = cp.best_energy
    best_blocks = {
        cid: cp.best_placement.block(cid)
        for cid in cp.best_placement.components()
    }
    accepted = cp.accepted_moves
    trials = cp.trials
    trace = list(cp.energy_trace)
    temperature = cp.temperature
    steps_done = cp.steps_done
    iterations_done = cp.iterations_done
    while temperature > params.min_temperature and (
        until_iterations is None or iterations_done < until_iterations
    ):
        step_started = perf_counter()
        kernel_seconds = 0.0
        step_accepted = 0
        step_trials = 0
        for _ in range(params.iterations_per_temperature):
            kernel_started = perf_counter()
            n_legal, took = workspace.step(temperature)
            kernel_seconds += perf_counter() - kernel_started
            step_trials += n_legal
            if took:
                step_accepted += 1
                current_energy = workspace.energy
                if current_energy < best_energy:
                    best_energy = current_energy
                    best_blocks = workspace._blocks_from_arrays()
        accepted += step_accepted
        trials += step_trials
        trace.append(current_energy)
        if instrumentation is not None:
            instrumentation.observe("sa.batch_kernel_seconds", kernel_seconds)
        _flush_step(
            instrumentation, temperature, current_energy, best_energy,
            step_trials, step_accepted, perf_counter() - step_started,
        )
        temperature *= params.cooling_rate
        steps_done += 1
        iterations_done += params.iterations_per_temperature
    best_placement = Placement(workspace.grid, best_blocks)
    finished = temperature <= params.min_temperature
    if finished:
        # Outward energies are exact, same as anneal_batch's final
        # recompute; intermediate rungs compare the running vectorized
        # values, which is fine — they rank, they are not reported.
        best_energy = placement_energy(best_placement, priorities)
        _flush_final(instrumentation, cp.initial_energy, best_energy)
    return AnnealCheckpoint(
        engine=cp.engine,
        seed=cp.seed,
        temperature=temperature,
        steps_done=steps_done,
        iterations_done=iterations_done,
        rng_state=cp.rng_state,
        np_rng_state=workspace.rng.bit_generator.state,
        placement=workspace.snapshot_placement(),
        best_placement=best_placement,
        current_energy=current_energy,
        best_energy=best_energy,
        initial_energy=cp.initial_energy,
        accepted_moves=accepted,
        trials=trials,
        energy_trace=trace,
        finished=finished,
    )

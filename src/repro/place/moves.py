"""Transformation operations for the simulated-annealing placer.

Algorithm 2 (line 4) perturbs the current placement with "a series of
transformation operations, such as rotation, translation, etc.".  Three
moves are implemented:

* **translate** — relocate one component to a random legal origin;
* **swap** — exchange the origins of two components (legal only when
  both fit at each other's origin without overlap);
* **rotate** — transpose one component's footprint in place.

Each move either returns a new legal :class:`~repro.place.placement.Placement`
or ``None`` when the sampled move is illegal — the annealer simply
resamples.
"""

from __future__ import annotations

import random

from repro.place.placement import Placement

__all__ = ["random_move", "translate", "swap", "rotate", "random_placement"]


def _legal_or_none(candidate: Placement) -> Placement | None:
    return candidate if candidate.is_legal() else None


def translate(
    placement: Placement, rng: random.Random, cid: str | None = None
) -> Placement | None:
    """Move one (random) component to a uniformly sampled origin."""
    components = placement.components()
    if not components:
        return None
    cid = cid if cid is not None else rng.choice(components)
    block = placement.block(cid)
    max_x = placement.grid.width - block.width
    max_y = placement.grid.height - block.height
    if max_x < 0 or max_y < 0:
        return None
    new_block = block.moved_to(rng.randint(0, max_x), rng.randint(0, max_y))
    return _legal_or_none(placement.with_block(new_block))


def swap(
    placement: Placement,
    rng: random.Random,
    pair: tuple[str, str] | None = None,
) -> Placement | None:
    """Exchange the origins of two (random) components."""
    components = placement.components()
    if len(components) < 2:
        return None
    cid_a, cid_b = pair if pair is not None else rng.sample(components, 2)
    block_a = placement.block(cid_a)
    block_b = placement.block(cid_b)
    candidate = placement.with_blocks(
        block_a.moved_to(block_b.x, block_b.y),
        block_b.moved_to(block_a.x, block_a.y),
    )
    return _legal_or_none(candidate)


def rotate(
    placement: Placement, rng: random.Random, cid: str | None = None
) -> Placement | None:
    """Transpose one (random) component's footprint in place."""
    components = placement.components()
    if not components:
        return None
    cid = cid if cid is not None else rng.choice(components)
    rotated = placement.block(cid).rotated()
    return _legal_or_none(placement.with_block(rotated))


_MOVES = (translate, swap, rotate)


def random_move(
    placement: Placement, rng: random.Random, attempts: int = 20
) -> Placement | None:
    """Sample moves until one is legal (or give up after *attempts*)."""
    for _ in range(attempts):
        move = rng.choice(_MOVES)
        candidate = move(placement, rng)
        if candidate is not None:
            return candidate
    return None


def random_placement(
    grid, footprints: dict[str, tuple[int, int]], rng: random.Random,
    attempts_per_component: int = 200,
    whole_placement_attempts: int = 25,
) -> Placement | None:
    """Sample a random legal placement (Algorithm 2 line 1).

    Components are placed largest-first — the classic trick that makes
    rejection sampling succeed on tight grids — and the assembled
    placement must pass the full legality check (including the
    no-walled-in-component rule).  Returns ``None`` when no legal
    placement is found within the attempt budgets.
    """
    for _ in range(whole_placement_attempts):
        candidate = _random_placement_once(
            grid, footprints, rng, attempts_per_component
        )
        if candidate is not None and candidate.is_legal():
            return candidate
    return None


def _random_placement_once(
    grid, footprints: dict[str, tuple[int, int]], rng: random.Random,
    attempts_per_component: int,
) -> Placement | None:
    from repro.place.placement import PlacedComponent  # local to avoid cycle

    order = sorted(
        footprints.items(), key=lambda item: (-item[1][0] * item[1][1], item[0])
    )
    blocks: dict[str, PlacedComponent] = {}
    for cid, (width, height) in order:
        placed = None
        for _ in range(attempts_per_component):
            if rng.random() < 0.5:
                width, height = height, width
            max_x = grid.width - width
            max_y = grid.height - height
            if max_x < 0 or max_y < 0:
                continue
            candidate = PlacedComponent(
                cid, rng.randint(0, max_x), rng.randint(0, max_y), width, height
            )
            if all(not candidate.overlaps(b, spacing=1) for b in blocks.values()):
                placed = candidate
                break
        if placed is None:
            return None
        blocks[cid] = placed
    return Placement(grid, blocks)

"""Concrete component instances and their runtime bookkeeping.

Schedulers (both the paper's Algorithm 1 and the baseline BA) track, per
allocated component:

* which operation ran last and when (for Eq. 2's ready time),
* whether the last output fluid is *still inside* the component (the
  Case I test of Algorithm 1) and which consumers its *portions* still
  have to serve (an output with fan-out is split into one portion per
  consuming edge),
* the wash obligation left behind once the fluid fully leaves.

:class:`ComponentState` encapsulates exactly that state machine so the
two schedulers share identical storage semantics and differ only in
policy.  The removal modes distinguish the three ways a portion leaves a
component:

``transport``
    The portion is pumped out towards a consumer on another component.
    Residue remains; once the last portion leaves, Eq. 2 applies:
    ``ready = removal + wash(fluid)``.
``evict``
    The component is needed for an unrelated operation, so the portion is
    pushed out into distributed channel storage.  Residue and wash as for
    ``transport``.
``in_place``
    The portion is consumed by an operation executing *on this very
    component* — the DCSA trick that removes both the transport and the
    wash (the residue becomes an ingredient).  No wash is charged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.assay.fluids import Fluid
from repro.assay.graph import OperationType
from repro.errors import SchedulingError
from repro.units import Seconds, approx_ge

__all__ = ["ResidentFluid", "ComponentState", "build_component_states"]

RemovalMode = Literal["transport", "evict", "in_place"]

#: Portion key used for the output of a sink operation, which leaves the
#: chip through an outlet port instead of feeding another operation.
OUTLET = "<outlet>"


@dataclass
class ResidentFluid:
    """A fluid (or what is left of it) sitting inside a component.

    Attributes
    ----------
    producer_id:
        Operation that produced the fluid.
    fluid:
        The fluid itself (drives wash time on removal).
    since:
        Time the fluid settled in the component (end of the producing
        operation).
    portions:
        Consumer operation ids whose share of the fluid is still inside
        (plus :data:`OUTLET` for a sink output).
    last_departure:
        Latest committed departure time of any portion removed so far.
        Because the scheduler processes operations in priority order (not
        wall-clock order), a portion removed *earlier in processing* may
        depart *later in time*; the component stays physically occupied
        until this instant, and any new operation must start after it.
    last_mode:
        Removal mode of the departure at ``last_departure`` (ties prefer
        ``"in_place"``: a simultaneous in-place consumption means the
        component-side residue is eaten, so no wash is owed).
    """

    producer_id: str
    fluid: Fluid
    since: Seconds
    portions: set[str] = field(default_factory=set)
    last_departure: Seconds = 0.0
    last_mode: str = "none"

    def __post_init__(self) -> None:
        self.last_departure = max(self.last_departure, self.since)


@dataclass
class ComponentState:
    """Mutable scheduling state of a single allocated component."""

    cid: str
    op_type: OperationType
    #: Eq. 2 ready time: when the component may accept the next fluid.
    ready_time: Seconds = 0.0
    #: End of the most recent execution on this component.
    busy_until: Seconds = 0.0
    #: Fluid currently stored inside, if any.
    resident: ResidentFluid | None = None
    #: Ids of operations executed on this component, in order.
    executed_ops: list[str] = field(default_factory=list)
    #: Total busy seconds (sum of execution times) — Eq. 1's ``T_a``.
    busy_time: Seconds = 0.0
    #: Start of the first and end of the last operation — Eq. 1's window.
    first_start: Seconds | None = None
    last_end: Seconds | None = None
    #: Total component wash seconds charged on this component.
    wash_time_total: Seconds = 0.0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def holds_fluid(self) -> bool:
        """Whether any output-fluid portion is still inside the component."""
        return self.resident is not None and bool(self.resident.portions)

    def holds_portion(self, producer_id: str, consumer_id: str) -> bool:
        """Whether *producer_id*'s portion for *consumer_id* is inside."""
        return (
            self.resident is not None
            and self.resident.producer_id == producer_id
            and consumer_id in self.resident.portions
        )

    def available_from(self) -> Seconds:
        """Earliest time a new operation may *start* on this component,
        assuming any resident fluid is handled separately by the caller."""
        return max(self.ready_time, self.busy_until)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def begin_operation(self, op_id: str, start: Seconds, end: Seconds) -> None:
        """Record the execution of *op_id* on this component.

        The caller must have removed every resident portion first (either
        consumed in place or pushed to channel storage) and must respect
        ``ready_time``/``busy_until``; violations raise because they would
        silently corrupt Eq. 1 / Eq. 2 accounting.
        """
        if self.holds_fluid:
            assert self.resident is not None
            raise SchedulingError(
                f"component {self.cid}: operation {op_id} scheduled while "
                f"fluid of {self.resident.producer_id} still resides inside"
            )
        if not approx_ge(start, self.ready_time):
            raise SchedulingError(
                f"component {self.cid}: operation {op_id} starts at {start} "
                f"before ready time {self.ready_time}"
            )
        if not approx_ge(start, self.busy_until):
            raise SchedulingError(
                f"component {self.cid}: operation {op_id} starts at {start} "
                f"while busy until {self.busy_until}"
            )
        if end < start:
            raise SchedulingError(
                f"component {self.cid}: operation {op_id} ends before it starts"
            )
        self.resident = None
        self.executed_ops.append(op_id)
        self.busy_time += end - start
        self.busy_until = end
        if self.first_start is None:
            self.first_start = start
        self.last_end = end

    def settle_output(
        self,
        producer_id: str,
        fluid: Fluid,
        at: Seconds,
        consumers: set[str],
    ) -> None:
        """Mark *fluid* as stored inside the component from time *at*,
        split into one portion per consumer (``consumers`` may contain
        :data:`OUTLET`)."""
        if self.holds_fluid:
            assert self.resident is not None
            raise SchedulingError(
                f"component {self.cid}: cannot settle output of "
                f"{producer_id}, fluid of {self.resident.producer_id} "
                "already resides inside"
            )
        if not consumers:
            raise SchedulingError(
                f"component {self.cid}: output of {producer_id} settled "
                "with no portions"
            )
        self.resident = ResidentFluid(producer_id, fluid, at, set(consumers))

    def remove_portion(
        self,
        consumer_id: str,
        at: Seconds,
        mode: RemovalMode,
        wash_time: Seconds,
    ) -> ResidentFluid:
        """Remove one portion of the resident fluid at time *at*.

        When the last portion leaves, the component's ready time advances
        per Eq. 2 unless the final removal is ``in_place`` (the residue is
        consumed by the incoming operation, so no wash is due).  Returns
        the resident record for the caller's task bookkeeping.
        """
        resident = self.resident
        if resident is None or consumer_id not in resident.portions:
            raise SchedulingError(
                f"component {self.cid}: no portion for consumer "
                f"{consumer_id!r} to remove"
            )
        if not approx_ge(at, resident.since):
            raise SchedulingError(
                f"component {self.cid}: portion removed at {at}, before the "
                f"fluid settled at {resident.since}"
            )
        resident.portions.discard(consumer_id)
        if at > resident.last_departure + 1e-9:
            resident.last_departure = at
            resident.last_mode = mode
        elif abs(at - resident.last_departure) <= 1e-9:
            if mode == "in_place" or resident.last_mode == "none":
                resident.last_mode = mode
        if not resident.portions:
            self.resident = None
            if resident.last_mode == "in_place":
                self.ready_time = max(self.ready_time, resident.last_departure)
            else:
                self.ready_time = max(
                    self.ready_time, resident.last_departure + wash_time
                )
                self.wash_time_total += wash_time
        return resident

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def utilisation_window(self) -> Seconds:
        """Eq. 1's denominator ``T_le - T_fs`` (0 when never used)."""
        if self.first_start is None or self.last_end is None:
            return 0.0
        return self.last_end - self.first_start


def build_component_states(allocation) -> dict[str, ComponentState]:
    """Create fresh :class:`ComponentState` objects for an allocation.

    The *allocation* argument is an
    :class:`~repro.components.allocation.Allocation`; the import is kept
    out of the signature to avoid a circular import at type-checking time.
    """
    return {
        cid: ComponentState(cid=cid, op_type=op_type)
        for cid, op_type in allocation.iter_components()
    }

"""Component allocations in the paper's ``(Mixers, Heaters, Filters,
Detectors)`` notation.

Table I describes each benchmark's resources as a 4-tuple, e.g.
``(8,0,0,2)`` for CPA.  :class:`Allocation` wraps that tuple with named
access, arithmetic helpers and expansion into concrete component ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.assay.graph import OperationType
from repro.errors import AllocationError

__all__ = ["Allocation"]

_ORDER = (
    OperationType.MIX,
    OperationType.HEAT,
    OperationType.FILTER,
    OperationType.DETECT,
)


@dataclass(frozen=True)
class Allocation:
    """Number of allocated components of each type.

    The field order matches Table I's ``(Mixers, Heaters, Filters,
    Detectors)`` column.
    """

    mixers: int = 0
    heaters: int = 0
    filters: int = 0
    detectors: int = 0

    def __post_init__(self) -> None:
        for op_type in _ORDER:
            if self.count(op_type) < 0:
                raise AllocationError(
                    f"negative component count for {op_type.component_name}"
                )
        if self.total == 0:
            raise AllocationError("allocation provides no components at all")

    # ------------------------------------------------------------------
    def count(self, op_type: OperationType) -> int:
        """Number of allocated components serving *op_type*."""
        return {
            OperationType.MIX: self.mixers,
            OperationType.HEAT: self.heaters,
            OperationType.FILTER: self.filters,
            OperationType.DETECT: self.detectors,
        }[op_type]

    @property
    def total(self) -> int:
        """Total number of allocated components (the paper's ``|C|``)."""
        return self.mixers + self.heaters + self.filters + self.detectors

    def as_tuple(self) -> tuple[int, int, int, int]:
        """The Table I 4-tuple ``(Mixers, Heaters, Filters, Detectors)``."""
        return (self.mixers, self.heaters, self.filters, self.detectors)

    @classmethod
    def from_tuple(cls, counts: tuple[int, int, int, int]) -> "Allocation":
        """Build an allocation from the Table I 4-tuple."""
        if len(counts) != 4:
            raise AllocationError(
                f"allocation tuple must have 4 entries, got {len(counts)}"
            )
        return cls(*counts)

    def component_ids(self) -> list[str]:
        """Deterministic ids for every allocated component.

        Components are numbered per family starting at 1, in Table I
        order: ``Mixer1..MixerN, Heater1.., Filter1.., Detector1..``.
        """
        return [name for name, _ in self.iter_components()]

    def iter_components(self) -> Iterator[tuple[str, OperationType]]:
        """Yield ``(component_id, op_type)`` for every allocated component."""
        for op_type in _ORDER:
            family = op_type.component_name
            for index in range(1, self.count(op_type) + 1):
                yield f"{family}{index}", op_type

    def __str__(self) -> str:
        return f"({self.mixers},{self.heaters},{self.filters},{self.detectors})"

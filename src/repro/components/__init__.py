"""Component library, allocation, and per-component scheduling state."""

from repro.components.allocation import Allocation
from repro.components.instances import (
    ComponentState,
    ResidentFluid,
    build_component_states,
)
from repro.components.library import (
    DEFAULT_LIBRARY,
    ComponentLibrary,
    ComponentSpec,
)

__all__ = [
    "Allocation",
    "ComponentLibrary",
    "ComponentSpec",
    "ComponentState",
    "DEFAULT_LIBRARY",
    "ResidentFluid",
    "build_component_states",
]

"""The component library: per-family geometry and capabilities.

The paper's inputs include "a component library C" (Section III).  For the
physical stages we need each family's footprint on the placement grid;
the defaults below follow the visual proportions of Fig. 1/Fig. 4, where
mixers are the large ring structures and detectors/heaters are compact.

All footprints are expressed in grid cells; the grid pitch (mm per cell)
lives in :class:`~repro.place.grid.ChipGrid`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.assay.graph import OperationType
from repro.errors import AllocationError

__all__ = ["ComponentSpec", "ComponentLibrary", "DEFAULT_LIBRARY"]


@dataclass(frozen=True)
class ComponentSpec:
    """Geometry and metadata of one component family.

    Parameters
    ----------
    op_type:
        Operation family the component executes.
    width, height:
        Footprint in grid cells (before rotation).
    description:
        Short human-readable description for reports.
    """

    op_type: OperationType
    width: int
    height: int
    description: str = ""

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise AllocationError(
                f"{self.op_type.component_name}: footprint must be positive, "
                f"got {self.width}x{self.height}"
            )

    @property
    def area(self) -> int:
        """Footprint area in grid cells."""
        return self.width * self.height

    def rotated(self) -> "ComponentSpec":
        """The same spec with width/height exchanged (90° rotation)."""
        return ComponentSpec(
            op_type=self.op_type,
            width=self.height,
            height=self.width,
            description=self.description,
        )


class ComponentLibrary:
    """Mapping from operation type to :class:`ComponentSpec`.

    The library must be *complete*: a spec for every
    :class:`~repro.assay.graph.OperationType` (synthesis may touch any of
    them, and partial libraries were a recurring source of late failures
    in earlier biochip flows).
    """

    def __init__(self, specs: Mapping[OperationType, ComponentSpec]):
        missing = [t for t in OperationType if t not in specs]
        if missing:
            names = ", ".join(t.value for t in missing)
            raise AllocationError(f"component library missing specs for: {names}")
        for op_type, spec in specs.items():
            if spec.op_type != op_type:
                raise AllocationError(
                    f"library entry for {op_type.value} holds a spec for "
                    f"{spec.op_type.value}"
                )
        self._specs = dict(specs)

    def spec(self, op_type: OperationType) -> ComponentSpec:
        """The spec of the family serving *op_type*."""
        return self._specs[op_type]

    def __getitem__(self, op_type: OperationType) -> ComponentSpec:
        return self._specs[op_type]

    def footprint(self, op_type: OperationType) -> tuple[int, int]:
        """``(width, height)`` in grid cells for *op_type*'s family."""
        spec = self._specs[op_type]
        return spec.width, spec.height

    def max_dimension(self) -> int:
        """Largest single footprint dimension across all families."""
        return max(
            max(spec.width, spec.height) for spec in self._specs.values()
        )


#: Default geometry: mixers are the big ring mixers of Fig. 1 (3x2 cells);
#: heaters and filters are elongated (2x1); detectors are compact (1x1).
DEFAULT_LIBRARY = ComponentLibrary(
    {
        OperationType.MIX: ComponentSpec(
            OperationType.MIX, 3, 2, "ring mixer with peristaltic valves"
        ),
        OperationType.HEAT: ComponentSpec(
            OperationType.HEAT, 2, 1, "serpentine channel heater"
        ),
        OperationType.FILTER: ComponentSpec(
            OperationType.FILTER, 2, 1, "membrane filter stage"
        ),
        OperationType.DETECT: ComponentSpec(
            OperationType.DETECT, 1, 1, "optical detection window"
        ),
    }
)

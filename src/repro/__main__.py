"""Umbrella command: ``python -m repro <subcommand>``.

Subcommands:

* ``serve``        — run the synthesis service: HTTP/JSON job API with
  a persistent queue and content-addressed result cache; see
  :mod:`repro.serve` and ``docs/SERVICE.md``.  ``--shards N``
  supervises N sharded backends behind a routing front tier.
* ``shard``        — run just the digest-routing front tier over
  already-running backends; see :mod:`repro.serve.shard`.
* ``submit``       — submit jobs to a running server (and query stats,
  follow progress, or drain it); see :mod:`repro.serve.client`.
* ``stats``        — summarise the run ledger, optionally flagging
  regressions (``--baseline``) or only server-side runs (``--serve``);
  see :mod:`repro.obs.ledger`.
* ``trace2chrome`` — convert a ``--trace`` JSONL file to Chrome
  trace-event JSON for Perfetto; see :mod:`repro.obs.export`.
* anything else    — forwarded verbatim to the synthesis CLI
  (:mod:`repro.cli`), so ``python -m repro PCR --profile`` is
  ``repro-synthesize PCR --profile``.
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else list(argv)
    if args and args[0] == "serve":
        from repro.serve.server import run_serve

        return run_serve(args[1:])
    if args and args[0] == "shard":
        from repro.serve.shard import run_shard

        return run_shard(args[1:])
    if args and args[0] == "submit":
        from repro.serve.client import run_submit

        return run_submit(args[1:])
    if args and args[0] == "stats":
        from repro.obs.ledger import run_stats

        return run_stats(args[1:])
    if args and args[0] == "trace2chrome":
        from repro.obs.export import run_trace2chrome

        return run_trace2chrome(args[1:])
    from repro.cli import run

    return run(args)


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    raise SystemExit(main())

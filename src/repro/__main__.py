"""Umbrella command: ``python -m repro <subcommand>``.

Subcommands:

* ``stats``        — summarise the run ledger, optionally flagging
  regressions (``--baseline``); see :mod:`repro.obs.ledger`.
* ``trace2chrome`` — convert a ``--trace`` JSONL file to Chrome
  trace-event JSON for Perfetto; see :mod:`repro.obs.export`.
* anything else    — forwarded verbatim to the synthesis CLI
  (:mod:`repro.cli`), so ``python -m repro PCR --profile`` is
  ``repro-synthesize PCR --profile``.
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else list(argv)
    if args and args[0] == "stats":
        from repro.obs.ledger import run_stats

        return run_stats(args[1:])
    if args and args[0] == "trace2chrome":
        from repro.obs.export import run_trace2chrome

        return run_trace2chrome(args[1:])
    from repro.cli import run

    return run(args)


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    raise SystemExit(main())

"""Conventional dedicated-storage scheduling (the architecture DCSA
replaces — Section II-A).

Conventional FBMBs cache every intermediate fluid in a *dedicated
storage unit* behind multiplexer-like control valves, so that only one
fluid can enter or leave the unit at a time.  The paper lists the
consequences: constrained capacity, limited port bandwidth, and chip
area.  This module models that architecture so the DCSA advantage can
be quantified (ablation A4 in DESIGN.md):

* an operation's output leaves its component for the storage unit as
  soon as the (single, serialised) storage port is free — the component
  stays blocked until then, and is washed afterwards (Eq. 2);
* a consumer fetches each input back through the same serialised port,
  paying ``t_c`` per hop (component → storage, storage → component);
* the storage unit has a configurable *capacity*; when it is full, an
  output waits inside its component, blocking it further.

The scheduler reuses :class:`~repro.schedule.engine.SchedulerEngine`'s
dispatch and binding machinery; only the storage semantics change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.assay.graph import SequencingGraph
from repro.components.allocation import Allocation
from repro.components.instances import OUTLET, ComponentState
from repro.errors import SchedulingError
from repro.schedule.engine import (
    DEFAULT_TRANSPORT_TIME,
    SchedulerEngine,
    SchedulingPolicy,
)
from repro.schedule.schedule import Schedule
from repro.schedule.tasks import FluidMovement
from repro.units import Seconds

__all__ = ["DedicatedStorageScheduler", "schedule_assay_dedicated"]


@dataclass
class _StoragePort:
    """The multiplexed storage port: one access at a time, ``t_c`` each."""

    service_time: Seconds
    next_free: Seconds = 0.0
    accesses: int = 0

    def reserve(self, earliest: Seconds) -> Seconds:
        """Reserve the port at or after *earliest*; returns access start."""
        start = max(earliest, self.next_free)
        self.next_free = start + self.service_time
        self.accesses += 1
        return start


@dataclass
class _StoredFluid:
    """A fluid portion sitting in the dedicated storage unit."""

    producer: str
    consumer: str
    available_from: Seconds
    src_component: str
    entered_at: Seconds = field(default=0.0)


class DedicatedStorageScheduler(SchedulerEngine):
    """List scheduler with dedicated-storage semantics.

    Parameters mirror :class:`~repro.schedule.engine.SchedulerEngine`,
    plus the storage unit's *capacity* (number of fluid portions it can
    hold simultaneously; the paper's "constrained capacity").
    """

    def __init__(
        self,
        assay: SequencingGraph,
        allocation: Allocation,
        transport_time: Seconds = DEFAULT_TRANSPORT_TIME,
        capacity: int = 8,
    ) -> None:
        if capacity < 1:
            raise SchedulingError("storage capacity must be at least 1")
        super().__init__(
            assay, allocation, SchedulingPolicy.ours(), transport_time
        )
        self.capacity = capacity
        self._port = _StoragePort(service_time=transport_time)
        self._stored: dict[tuple[str, str], _StoredFluid] = {}
        #: Departure times of stored portions, for capacity accounting.
        self._storage_events: list[tuple[Seconds, int]] = []

    # ------------------------------------------------------------------
    # Storage semantics overrides
    # ------------------------------------------------------------------
    def _availability(self, state: ComponentState, op_id: str) -> Seconds:
        # No fluid ever resides in a component between operations in the
        # dedicated architecture, so plain Eq. 2 availability applies.
        return state.available_from()

    def _in_place_candidates(self, op_id: str) -> list[str]:
        # Outputs leave immediately — in-place reuse cannot happen.
        return []

    def _earliest_start(self, op_id: str, target: ComponentState) -> Seconds:
        start = self._availability(target, op_id)
        t_c = self.transport_time
        storage_parents = []
        for parent in self.assay.parents(op_id):
            record = self._stored[(parent, op_id)]
            storage_parents.append(record)
        # Each input exits through the serialised port (t_c per access)
        # and then travels t_c to the component.
        if storage_parents:
            base = max(
                max(r.available_from for r in storage_parents),
                self._port.next_free,
            )
            start = max(start, base + len(storage_parents) * t_c + t_c)
        return start

    def _schedule_operation(self, op_id, target=None):  # type: ignore[override]
        op = self.assay.operation(op_id)
        if target is None:
            target = self._select_component(op_id)
        start = self._earliest_start(op_id, target)
        t_c = self.transport_time

        # Fetch every input from storage: serialised port exits, last
        # one finishing t_c before the start.
        parents = sorted(self.assay.parents(op_id))
        for index, parent in enumerate(reversed(parents)):
            record = self._stored.pop((parent, op_id))
            exit_at = self._port.reserve(
                max(record.available_from, start - (index + 1) * t_c - t_c)
            )
            arrive = exit_at + t_c
            self._movements.append(
                FluidMovement(
                    producer=parent,
                    consumer=op_id,
                    fluid=self.assay.operation(parent).output_fluid,
                    src_component=record.src_component,
                    dst_component=target.cid,
                    depart=record.entered_at,
                    arrive=min(arrive, start),
                    consume=start,
                    evicted=True,
                )
            )
            self._storage_events.append((exit_at, -1))

        end = start + op.duration
        target.begin_operation(op_id, start, end)
        from repro.schedule.schedule import ScheduledOperation

        self._scheduled[op_id] = ScheduledOperation(
            op_id=op_id, component_id=target.cid, start=start, end=end
        )
        self._store_output(op_id, target, end)

    def _store_output(
        self, op_id: str, target: ComponentState, end: Seconds
    ) -> None:
        """Ship the finished output to the storage unit (or outlet)."""
        fluid = self.assay.operation(op_id).output_fluid
        children = self.assay.children(op_id)
        if not children:
            # Sink outputs leave through the outlet as in the DCSA flow.
            target.settle_output(op_id, fluid, end, {OUTLET})
            target.remove_portion(OUTLET, end, "transport", fluid.wash_time)
            return
        # Wait for the port *and* for free capacity.
        earliest = max(end, self._capacity_free_from(end))
        entry_at = self._port.reserve(earliest)
        target.settle_output(op_id, fluid, end, set(children))
        for child in children:
            target.remove_portion(child, entry_at, "transport", fluid.wash_time)
            self._stored[(op_id, child)] = _StoredFluid(
                producer=op_id,
                consumer=child,
                available_from=entry_at + self.transport_time,
                src_component=target.cid,
                entered_at=entry_at,
            )
            self._storage_events.append((entry_at, +1))
            # A child's portion is one capacity slot; a 2-consumer output
            # occupies two (it is split on entry).

    def _capacity_free_from(self, at: Seconds) -> Seconds:
        """Earliest time ≥ *at* when a capacity slot is free.

        Conservative sweep over the recorded entry/exit events; adequate
        for the ablation's instance sizes.
        """
        events = sorted(self._storage_events)
        level = 0
        last_ok = 0.0
        for time, delta in events:
            level += delta
            if level >= self.capacity:
                # Full from here until some exit; the next exit event
                # after this time frees a slot.
                exits = [t for t, d in events if d < 0 and t > time]
                last_ok = min(exits) if exits else time
        return max(at, last_ok)


def schedule_assay_dedicated(
    assay: SequencingGraph,
    allocation: Allocation,
    transport_time: Seconds = DEFAULT_TRANSPORT_TIME,
    capacity: int = 8,
) -> Schedule:
    """Schedule *assay* under the conventional dedicated-storage model.

    The returned schedule's movements all carry ``evicted=True`` (every
    intermediate fluid is cached — in the storage unit) and their cache
    times measure storage residence; the interesting comparison against
    :func:`~repro.schedule.list_scheduler.schedule_assay` is the
    makespan, which suffers from the serialised storage port.
    """
    engine = DedicatedStorageScheduler(
        assay, allocation, transport_time, capacity
    )
    return engine.run()

"""Exhaustive optimal scheduler for tiny instances (test oracle).

List scheduling is a heuristic; to quantify (and regression-test) how far
Algorithm 1 sits from the optimum we provide a branch-and-bound search
over *every* (dispatch order × binding) choice, running on the very same
:class:`~repro.schedule.engine.SchedulerEngine` semantics.  The state
space explodes combinatorially, so the search refuses instances beyond a
small size — it exists for validation, not production.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.assay.graph import SequencingGraph
from repro.components.allocation import Allocation
from repro.errors import SchedulingError
from repro.schedule.engine import (
    DEFAULT_TRANSPORT_TIME,
    SchedulerEngine,
    SchedulingPolicy,
)
from repro.schedule.schedule import Schedule
from repro.units import Seconds

__all__ = ["ExactResult", "schedule_assay_optimal"]

#: Hard cap on instance size; beyond this the search would not terminate
#: in reasonable time and the call is rejected up front.
MAX_OPERATIONS = 8


@dataclass(frozen=True)
class ExactResult:
    """Optimal schedule together with search statistics."""

    schedule: Schedule
    nodes_explored: int

    @property
    def makespan(self) -> Seconds:
        return self.schedule.makespan


class _SearchEngine(SchedulerEngine):
    """Engine exposing single forced decisions for the search driver."""

    def force(self, op_id: str, component_id: str) -> None:
        self._schedule_operation(op_id, self.components[component_id])

    @property
    def scheduled_ops(self) -> dict:
        return self._scheduled

    def finish(self) -> Schedule:
        return Schedule(
            assay=self.assay,
            allocation=self.allocation,
            transport_time=self.transport_time,
            operations=dict(self._scheduled),
            movements=list(self._movements),
            components=self.components,
        )


def schedule_assay_optimal(
    assay: SequencingGraph,
    allocation: Allocation,
    transport_time: Seconds = DEFAULT_TRANSPORT_TIME,
) -> ExactResult:
    """Find a makespan-optimal binding & schedule by exhaustive search.

    Raises :class:`SchedulingError` when the instance exceeds
    :data:`MAX_OPERATIONS` operations.
    """
    if len(assay) > MAX_OPERATIONS:
        raise SchedulingError(
            f"exact scheduler limited to {MAX_OPERATIONS} operations, "
            f"got {len(assay)}"
        )
    root = _SearchEngine(
        assay, allocation, SchedulingPolicy.ours(), transport_time
    )
    best: dict[str, object] = {"makespan": float("inf"), "schedule": None}
    stats = {"nodes": 0}

    def ready_ops(engine: _SearchEngine) -> list[str]:
        done = set(engine.scheduled_ops)
        return [
            op_id
            for op_id in assay.operation_ids
            if op_id not in done
            and all(p in done for p in assay.parents(op_id))
        ]

    def lower_bound(engine: _SearchEngine) -> Seconds:
        # Critical-path bound: any unscheduled op must still run for its
        # remaining longest path; scheduled ops bound from their ends.
        current = max(
            (rec.end for rec in engine.scheduled_ops.values()), default=0.0
        )
        pending = [
            engine.priorities[o]
            for o in assay.operation_ids
            if o not in engine.scheduled_ops
        ]
        return max([current] + pending)

    def recurse(engine: _SearchEngine) -> None:
        stats["nodes"] += 1
        if len(engine.scheduled_ops) == len(assay):
            makespan = max(rec.end for rec in engine.scheduled_ops.values())
            if makespan < best["makespan"]:
                best["makespan"] = makespan
                best["schedule"] = engine.finish()
            return
        if lower_bound(engine) >= best["makespan"]:
            return
        for op_id in ready_ops(engine):
            op_type = assay.operation(op_id).op_type
            for cid, ctype in allocation.iter_components():
                if ctype != op_type:
                    continue
                child = copy.deepcopy(engine)
                child.force(op_id, cid)
                recurse(child)

    recurse(root)
    schedule = best["schedule"]
    if schedule is None:  # pragma: no cover - search always finds a leaf
        raise SchedulingError("exact search found no schedule")
    return ExactResult(schedule=schedule, nodes_explored=stats["nodes"])

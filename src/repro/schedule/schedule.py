"""Schedule data model: the output of the binding & scheduling stage.

A :class:`Schedule` bundles, for one assay on one allocation:

* the binding function Φ and per-operation start/end times,
* every :class:`~repro.schedule.tasks.FluidMovement` (how each edge's
  fluid travelled: in place, direct transport, or evicted to distributed
  channel storage),
* the final per-component usage statistics,

and derives the paper's scheduling-side metrics: makespan, Eq. 1 resource
utilisation, total channel cache time (Fig. 8), and total component wash
time.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.assay.graph import SequencingGraph
from repro.components.allocation import Allocation
from repro.components.instances import ComponentState
from repro.errors import SchedulingError
from repro.schedule.tasks import FluidMovement, TransportTask
from repro.units import Seconds

__all__ = ["ScheduledOperation", "Schedule"]


@dataclass(frozen=True)
class ScheduledOperation:
    """Binding and timing of one operation."""

    op_id: str
    component_id: str
    start: Seconds
    end: Seconds

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SchedulingError(
                f"operation {self.op_id}: end {self.end} precedes start "
                f"{self.start}"
            )

    @property
    def duration(self) -> Seconds:
        return self.end - self.start


@dataclass
class Schedule:
    """Complete result of resource binding and scheduling."""

    assay: SequencingGraph
    allocation: Allocation
    transport_time: Seconds
    operations: dict[str, ScheduledOperation] = field(default_factory=dict)
    movements: list[FluidMovement] = field(default_factory=list)
    components: dict[str, ComponentState] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def operation(self, op_id: str) -> ScheduledOperation:
        """Scheduled record of *op_id* (raises when unscheduled)."""
        try:
            return self.operations[op_id]
        except KeyError:
            raise SchedulingError(f"operation {op_id!r} is not scheduled") from None

    def binding(self) -> dict[str, str]:
        """The binding function Φ: operation id → component id."""
        return {o: rec.component_id for o, rec in self.operations.items()}

    def operations_on(self, component_id: str) -> list[ScheduledOperation]:
        """Operations executed on *component_id*, ordered by start time."""
        records = [
            rec
            for rec in self.operations.values()
            if rec.component_id == component_id
        ]
        return sorted(records, key=lambda rec: (rec.start, rec.op_id))

    # ------------------------------------------------------------------
    # Metrics (Section II-C / V)
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> Seconds:
        """Completion time of the bioassay (execution time in Table I)."""
        if not self.operations:
            return 0.0
        return max(rec.end for rec in self.operations.values())

    def resource_utilisation(self) -> float:
        """Eq. 1: mean over components of busy time / active window.

        Computed from the operation records (not the engine's component
        state) so it remains correct after routing delays are retimed
        through the schedule.  Components that never execute an operation
        contribute 0, matching the equation's intent that idle allocated
        hardware is waste.
        """
        component_ids = [cid for cid, _ in self.allocation.iter_components()]
        if not component_ids:
            return 0.0
        total = 0.0
        for cid in component_ids:
            records = self.operations_on(cid)
            if not records:
                continue
            busy = sum(rec.duration for rec in records)
            window = records[-1].end - records[0].start
            if window > 0:
                total += busy / window
            elif busy == 0 and len(records) > 0:
                # Zero-duration operations only: fully utilised window.
                total += 1.0
        return total / len(component_ids)

    def total_cache_time(self) -> Seconds:
        """Sum of channel cache times over all movements (Fig. 8)."""
        return sum(m.cache_time for m in self.movements)

    def total_component_wash_time(self) -> Seconds:
        """Total wash seconds charged on components by Eq. 2."""
        return sum(s.wash_time_total for s in self.components.values())

    def transport_count(self) -> int:
        """Number of physical channel transports the router must realise."""
        return sum(1 for m in self.movements if not m.in_place)

    # ------------------------------------------------------------------
    # Routing interface
    # ------------------------------------------------------------------
    def transport_tasks(self) -> list[TransportTask]:
        """Physical transports, sorted by non-decreasing start time.

        This is exactly the task list Algorithm 2 (lines 11–18) consumes.
        Tasks whose consumer is the chip outlet are included: the fluid
        still travels through channels and washes must still be planned.
        """
        tasks = []
        for index, movement in enumerate(self.movements):
            if movement.in_place:
                continue
            tasks.append(movement.to_transport_task(f"tk{index}"))
        tasks.sort(key=lambda t: (t.depart, t.task_id))
        return tasks

    def concurrency_of(self, task: TransportTask, tasks: Iterable[TransportTask]) -> int:
        """Number of other transports overlapping *task* in time.

        This is Eq. 4's ``nt_k`` for the placement stage's connection
        priorities.  Linear in the task count — use
        :meth:`concurrencies` to get every task's count at once; this
        per-task form is kept as the oracle for spot checks.
        """
        return sum(
            1
            for other in tasks
            if other.task_id != task.task_id and task.overlaps(other)
        )

    def concurrencies(
        self, tasks: Iterable[TransportTask] | None = None
    ) -> dict[str, int]:
        """Eq. 4's ``nt_k`` for every transport task, in one sorted pass.

        Equivalent to calling :meth:`concurrency_of` per task (the test
        suite asserts equality) but ``O(T log T)`` instead of ``O(T²)``:
        a task's overlap count is the complement of the tasks that end
        no later than it starts plus those that start no earlier than it
        ends, read off two sorted endpoint arrays with binary search.

        Zero-length occupations need care: ``[t, t]`` overlaps nothing
        at its own point (the strict ``<`` comparisons in
        :meth:`TransportTask.overlaps`), and such a task lands in *both*
        complement sets, so it is added back once.
        """
        task_list = self.transport_tasks() if tasks is None else list(tasks)
        occupations = [task.occupation for task in task_list]
        starts = sorted(start for start, _ in occupations)
        ends = sorted(end for _, end in occupations)
        zero_points = Counter(
            start for start, end in occupations if start == end
        )
        n = len(task_list)
        result: dict[str, int] = {}
        for task, (start, end) in zip(task_list, occupations):
            starts_after = n - bisect_left(starts, end)
            ends_before = bisect_right(ends, start)
            counted_twice = zero_points[start] if start == end else 0
            count = n - starts_after - ends_before + counted_twice
            if start < end:
                count -= 1  # a non-degenerate task overlaps itself
            result[task.task_id] = count
        return result

"""Makespan lower bounds for binding & scheduling.

Two classical bounds, adapted to the DCSA cost model:

* **critical-path bound** — no schedule can beat the longest
  dependency chain.  Under DCSA an edge can be free (in-place reuse)
  *only* when producer and consumer have the same operation type, so
  edges between different types always pay ``t_c``; the bound uses that
  refinement.
* **load bound** — for each component family, the total execution time
  of its operations divided by the number of allocated components; no
  family can finish its workload faster.

The list scheduler's makespan must dominate both (regression- and
property-tested), and the ratio to the bound quantifies scheduling
quality without running the exponential exact search.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.assay.graph import SequencingGraph
from repro.components.allocation import Allocation
from repro.units import Seconds

__all__ = ["MakespanBounds", "makespan_lower_bounds"]


@dataclass(frozen=True)
class MakespanBounds:
    """The individual bounds and their maximum."""

    critical_path: Seconds
    load: Seconds

    @property
    def best(self) -> Seconds:
        """The tightest (largest) lower bound."""
        return max(self.critical_path, self.load)


def _critical_path_bound(
    assay: SequencingGraph, transport_time: Seconds
) -> Seconds:
    """Longest path where cross-type edges always pay ``t_c``.

    Same-type edges may be free (in-place reuse), so they contribute 0 —
    a valid relaxation of every feasible schedule.
    """
    longest: dict[str, Seconds] = {}
    best = 0.0
    for op_id in reversed(assay.topological_order()):
        op = assay.operation(op_id)
        tail = 0.0
        for child_id in assay.children(op_id):
            child = assay.operation(child_id)
            hop = 0.0 if child.op_type == op.op_type else transport_time
            tail = max(tail, hop + longest[child_id])
        longest[op_id] = op.duration + tail
        best = max(best, longest[op_id])
    return best


def _load_bound(assay: SequencingGraph, allocation: Allocation) -> Seconds:
    """Per-family workload divided by allocated component count."""
    totals: dict = {}
    for op in assay.operations:
        totals[op.op_type] = totals.get(op.op_type, 0.0) + op.duration
    bound = 0.0
    for op_type, work in totals.items():
        count = allocation.count(op_type)
        if count > 0:
            bound = max(bound, work / count)
    return bound


def makespan_lower_bounds(
    assay: SequencingGraph,
    allocation: Allocation,
    transport_time: Seconds = 2.0,
) -> MakespanBounds:
    """Compute both lower bounds for *assay* on *allocation*."""
    return MakespanBounds(
        critical_path=_critical_path_bound(assay, transport_time),
        load=_load_bound(assay, allocation),
    )

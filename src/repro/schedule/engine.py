"""The shared binding & scheduling engine.

Both schedulers in the paper's evaluation run on the same storage
semantics — operations execute on components, outputs stay inside until
transported/evicted, Eq. 2 governs wash-induced ready times — and differ
only in *policy*:

* **Ours (Algorithm 1)** processes ready operations in non-increasing
  priority order and binds with the Case I / Case II strategy of
  Section IV-A.
* **BA (baseline)** processes ready operations in ready-time (FIFO) order
  and always binds to the qualified component with the earliest ready
  time.

:class:`SchedulingPolicy` captures the two policy knobs;
:class:`SchedulerEngine` is the event-driven list scheduler that enforces
the shared semantics.  The concrete public entry points live in
:mod:`repro.schedule.list_scheduler` and
:mod:`repro.schedule.baseline_scheduler`.

Timeline semantics (documented here once, relied on everywhere):

* A fluid portion *still inside* a producer's component departs as late
  as possible (``start - t_c``), so a direct transport caches nothing.
* A portion *evicted* to distributed channel storage departs when its
  component is rebound; it reaches the vicinity of its (future) consumer
  ``t_c`` later and then waits in the channel — that wait is the Fig. 8
  cache time.
* A sink operation's output is collected through an outlet adjacent to
  its component at the operation's end; the component still owes the
  Eq. 2 wash but no routed transport is generated.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Literal

from repro.assay.graph import SequencingGraph
from repro.components.allocation import Allocation
from repro.components.instances import (
    OUTLET,
    ComponentState,
    build_component_states,
)
from repro.errors import SchedulingError
from repro.obs.instrument import Instrumentation
from repro.schedule.priority import compute_priorities
from repro.schedule.schedule import Schedule, ScheduledOperation
from repro.schedule.tasks import FluidMovement
from repro.units import Seconds
from repro.assay.validation import check_assay

__all__ = ["OrderPolicy", "BindingPolicy", "SchedulingPolicy", "SchedulerEngine"]

#: Paper default for the constant inter-component transport time ``t_c``.
DEFAULT_TRANSPORT_TIME: Seconds = 2.0


class OrderPolicy(str, Enum):
    """How the ready queue is drained.

    ``PRIORITY`` is Algorithm 1's list scheduling: at every step the
    operation that can start earliest is committed, and ties are broken
    by non-increasing priority (longest path to sink) so that, whenever
    several operations compete for the same instant, the one dominating
    the completion time goes first.  Committing in non-decreasing start
    order keeps the schedule *time-causal*: an operation never grabs a
    component that an earlier-starting operation will need.

    ``FIFO`` processes operations strictly in data-ready order (ties by
    id) — the baseline's dispatch.
    """

    #: Earliest achievable start, ties by Algorithm-1 priority — ours.
    PRIORITY = "priority"
    #: Non-decreasing ready time (first-come, first-served) — BA.
    FIFO = "fifo"


class BindingPolicy(str, Enum):
    """How a component is selected for a dequeued operation."""

    #: Case I (reuse the parent's component holding the hardest-to-wash
    #: fluid) with Case II (earliest ready) as fallback — Algorithm 1.
    DCSA = "dcsa"
    #: Always earliest-ready (Case II only) — BA.
    EARLIEST_READY = "earliest_ready"


@dataclass(frozen=True)
class SchedulingPolicy:
    """Bundle of the two policy knobs distinguishing Ours from BA."""

    order: OrderPolicy
    binding: BindingPolicy

    @classmethod
    def ours(cls) -> "SchedulingPolicy":
        """The paper's Algorithm 1."""
        return cls(OrderPolicy.PRIORITY, BindingPolicy.DCSA)

    @classmethod
    def baseline(cls) -> "SchedulingPolicy":
        """The paper's baseline algorithm (BA)."""
        return cls(OrderPolicy.FIFO, BindingPolicy.EARLIEST_READY)


# Where a not-yet-delivered fluid portion currently is.
_PortionLocation = (
    tuple[Literal["component"], str]
    | tuple[Literal["channel"], float, str]
)


class SchedulerEngine:
    """Event-driven list scheduler with DCSA storage semantics.

    One engine instance performs one scheduling run; use
    :func:`repro.schedule.list_scheduler.schedule_assay` or
    :func:`repro.schedule.baseline_scheduler.schedule_assay_baseline`
    rather than instantiating this directly.
    """

    def __init__(
        self,
        assay: SequencingGraph,
        allocation: Allocation,
        policy: SchedulingPolicy,
        transport_time: Seconds = DEFAULT_TRANSPORT_TIME,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        if transport_time < 0:
            raise SchedulingError(
                f"transport time must be non-negative, got {transport_time}"
            )
        check_assay(assay, allocation)
        self.assay = assay
        self.allocation = allocation
        self.policy = policy
        self.transport_time = transport_time
        self.instrumentation = instrumentation
        self.components: dict[str, ComponentState] = build_component_states(
            allocation
        )
        self.priorities = compute_priorities(assay, transport_time)
        # Per-edge portion tracking: (producer, consumer) -> location.
        self._portions: dict[tuple[str, str], _PortionLocation] = {}
        self._scheduled: dict[str, ScheduledOperation] = {}
        self._movements: list[FluidMovement] = []
        self._ready_time: dict[str, Seconds] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> Schedule:
        """Execute the full list-scheduling loop and return the schedule."""
        pending_parents = {
            op_id: len(self.assay.parents(op_id))
            for op_id in self.assay.operation_ids
        }
        ready = [o for o, count in pending_parents.items() if count == 0]
        for op_id in ready:
            self._ready_time[op_id] = 0.0

        instr = self.instrumentation
        while ready:
            if instr is not None:
                instr.gauge("schedule.ready_queue_depth", len(ready))
            op_id = self._dequeue(ready)
            self._schedule_operation(op_id)
            for child in self.assay.children(op_id):
                pending_parents[child] -= 1
                if pending_parents[child] == 0:
                    self._ready_time[child] = max(
                        self._scheduled[p].end
                        for p in self.assay.parents(child)
                    )
                    ready.append(child)

        if len(self._scheduled) != len(self.assay):
            missing = set(self.assay.operation_ids) - set(self._scheduled)
            raise SchedulingError(
                f"internal error: operations never became ready: {missing}"
            )
        return Schedule(
            assay=self.assay,
            allocation=self.allocation,
            transport_time=self.transport_time,
            operations=dict(self._scheduled),
            movements=list(self._movements),
            components=self.components,
        )

    # ------------------------------------------------------------------
    # Queue policy
    # ------------------------------------------------------------------
    def _dequeue(self, ready: list[str]) -> str:
        """Pop the next operation according to the order policy."""
        if self.policy.order is OrderPolicy.PRIORITY:
            # Time-causal list scheduling: earliest achievable start
            # first; among simultaneous candidates, highest priority.
            chosen = min(
                ready,
                key=lambda o: (
                    self._plan(o)[1],
                    -self.priorities[o],
                    o,
                ),
            )
        else:
            chosen = min(ready, key=lambda o: (self._ready_time[o], o))
        ready.remove(chosen)
        return chosen

    # ------------------------------------------------------------------
    # Binding policy
    # ------------------------------------------------------------------
    def _candidates(self, op_id: str) -> list[ComponentState]:
        op = self.assay.operation(op_id)
        return [
            state
            for state in self.components.values()
            if state.op_type == op.op_type
        ]

    def _availability(self, state: ComponentState, op_id: str) -> Seconds:
        """Earliest start time *op_id* could achieve on this component,
        considering only the component itself (not fluid arrivals)."""
        if not state.holds_fluid:
            return state.available_from()
        resident = state.resident
        assert resident is not None
        if op_id in resident.portions:
            # A parent's portion waits inside: consume in place, no wash.
            # Portions already committed to depart later block until then.
            return max(state.busy_until, resident.last_departure)
        # Unrelated fluid must be evicted and the residue washed first;
        # the wash can only follow the *latest* departure of any portion.
        wash = resident.fluid.wash_time
        return max(state.busy_until, resident.last_departure + wash)

    def _select_component(self, op_id: str) -> ComponentState:
        """Apply the binding policy (Case I / Case II of Algorithm 1)."""
        if self.policy.binding is BindingPolicy.DCSA:
            in_place = self._in_place_candidates(op_id)
            if in_place:
                # Case I: keep the fluid with the lowest diffusion
                # coefficient (hardest to wash) in place.  Equal
                # coefficients tie-break on the start time the operation
                # would actually achieve there, then on the parent id.
                def case1_key(parent: str) -> tuple[float, Seconds, str]:
                    fluid = self.assay.operation(parent).output_fluid
                    cid = self._scheduled[parent].component_id
                    return (
                        fluid.diffusion_coefficient,
                        self._earliest_start(op_id, self.components[cid]),
                        parent,
                    )

                parent = min(in_place, key=case1_key)
                return self.components[self._scheduled[parent].component_id]
            # Case II for ours: earliest *achievable start* (component
            # availability and fluid arrivals together), so an idle but
            # far-from-ready candidate never beats one the operation can
            # actually use sooner.  Start-time ties prefer components not
            # holding another operation's fluid: every avoided eviction
            # is a fluid that need not wait in channel storage.
            return min(
                self._candidates(op_id),
                key=lambda s: (
                    self._earliest_start(op_id, s),
                    1 if s.holds_fluid and op_id not in s.resident.portions else 0,
                    self._availability(s, op_id),
                    s.cid,
                ),
            )
        # BA: the qualified component with the earliest ready time.
        return min(
            self._candidates(op_id),
            key=lambda s: (self._availability(s, op_id), s.cid),
        )

    def _plan(self, op_id: str) -> tuple[ComponentState, Seconds]:
        """The component the policy would bind *op_id* to right now, and
        the start time it would achieve there (no state is modified)."""
        target = self._select_component(op_id)
        return target, self._earliest_start(op_id, target)

    def _earliest_start(self, op_id: str, target: ComponentState) -> Seconds:
        """Start time *op_id* achieves on *target* in the current state."""
        start = self._availability(target, op_id)
        t_c = self.transport_time
        for parent in self.assay.parents(op_id):
            location = self._portions[(parent, op_id)]
            if location[0] == "component":
                cid = location[1]
                since = self._fluid_since(cid, parent)
                if cid == target.cid:
                    start = max(start, since)
                else:
                    start = max(start, since + t_c)
            else:  # in channel storage since its eviction
                _, departed, _src = location
                start = max(start, departed + t_c)
        return start

    def _in_place_candidates(self, op_id: str) -> list[str]:
        """The paper's ``O'_s``: same-type parents whose output portion for
        *op_id* still resides inside their component."""
        op = self.assay.operation(op_id)
        candidates = []
        for parent in self.assay.parents(op_id):
            parent_op = self.assay.operation(parent)
            if parent_op.op_type != op.op_type:
                continue
            cid = self._scheduled[parent].component_id
            if self.components[cid].holds_portion(parent, op_id):
                candidates.append(parent)
        return candidates

    # ------------------------------------------------------------------
    # Scheduling one operation
    # ------------------------------------------------------------------
    def _schedule_operation(
        self, op_id: str, target: ComponentState | None = None
    ) -> None:
        op = self.assay.operation(op_id)
        if target is None:
            target = self._select_component(op_id)
        elif target.op_type != op.op_type:
            raise SchedulingError(
                f"operation {op_id} ({op.op_type.value}) cannot run on "
                f"{target.cid}"
            )
        # Earliest start imposed by the component (incl. eviction wash)
        # and by each incoming fluid portion.
        start = self._earliest_start(op_id, target)

        # Commit: evict an unrelated resident fluid, then pull in parents.
        self._evict_unrelated_resident(target, op_id, start)
        for parent in sorted(self.assay.parents(op_id)):
            self._deliver_portion(parent, op_id, target, start)

        end = start + op.duration
        target.begin_operation(op_id, start, end)
        self._scheduled[op_id] = ScheduledOperation(
            op_id=op_id, component_id=target.cid, start=start, end=end
        )
        self._settle_output(op_id, target, end)
        if self.instrumentation is not None:
            self.instrumentation.count("schedule.operations")
            self.instrumentation.event(
                "schedule.op",
                op_id=op_id,
                component=target.cid,
                start=start,
                end=end,
            )

    def _fluid_since(self, cid: str, producer: str) -> Seconds:
        state = self.components[cid]
        resident = state.resident
        if resident is None or resident.producer_id != producer:
            raise SchedulingError(
                f"internal error: fluid of {producer} expected inside {cid}"
            )
        return resident.since

    def _evict_unrelated_resident(
        self, target: ComponentState, op_id: str, start: Seconds
    ) -> None:
        """Push a non-parent resident fluid into channel storage.

        The eviction is timed so the Eq. 2 wash completes exactly at
        *start* (``depart = start - wash``), minimising the fluid's
        channel cache time without delaying the operation.
        """
        resident = target.resident
        if resident is None or op_id in resident.portions:
            return
        wash = resident.fluid.wash_time
        depart = max(resident.since, start - wash)
        for consumer in sorted(resident.portions):
            target.remove_portion(consumer, depart, "evict", wash)
            self._portions[(resident.producer_id, consumer)] = (
                "channel",
                depart,
                target.cid,
            )
            if self.instrumentation is not None:
                self.instrumentation.count("schedule.evictions")

    def _deliver_portion(
        self, parent: str, op_id: str, target: ComponentState, start: Seconds
    ) -> None:
        """Create the movement bringing ``out(parent)`` to *target* for the
        start of *op_id*, updating portion state and source components."""
        fluid = self.assay.operation(parent).output_fluid
        location = self._portions[(parent, op_id)]
        t_c = self.transport_time

        if location[0] == "channel":
            _, departed, src_cid = location
            arrive = departed + t_c
            movement = FluidMovement(
                producer=parent,
                consumer=op_id,
                fluid=fluid,
                src_component=src_cid,
                dst_component=target.cid,
                depart=departed,
                arrive=arrive,
                consume=start,
                evicted=True,
            )
        else:
            src_cid = location[1]
            source = self.components[src_cid]
            if src_cid == target.cid:
                # Sibling portions of the same output (other consumers of
                # this parent) must vacate before the operation starts;
                # they are identical fluid, so no wash is owed — the
                # remainder is consumed by the operation itself.
                resident = source.resident
                assert resident is not None
                for sibling in sorted(resident.portions - {op_id}):
                    source.remove_portion(sibling, start, "evict", 0.0)
                    self._portions[(parent, sibling)] = (
                        "channel",
                        start,
                        src_cid,
                    )
                source.remove_portion(op_id, start, "in_place", 0.0)
                movement = FluidMovement(
                    producer=parent,
                    consumer=op_id,
                    fluid=fluid,
                    src_component=src_cid,
                    dst_component=target.cid,
                    depart=start,
                    arrive=start,
                    consume=start,
                    in_place=True,
                )
            else:
                since = self._fluid_since(src_cid, parent)
                depart = max(since, start - t_c)
                source.remove_portion(op_id, depart, "transport", fluid.wash_time)
                movement = FluidMovement(
                    producer=parent,
                    consumer=op_id,
                    fluid=fluid,
                    src_component=src_cid,
                    dst_component=target.cid,
                    depart=depart,
                    arrive=depart + t_c,
                    consume=start,
                )
        self._movements.append(movement)
        del self._portions[(parent, op_id)]
        if self.instrumentation is not None:
            self.instrumentation.count("schedule.movements")
            if movement.in_place:
                self.instrumentation.count("schedule.in_place_bindings")

    def _settle_output(
        self, op_id: str, target: ComponentState, end: Seconds
    ) -> None:
        """Store the finished operation's output inside its component.

        Sink outputs leave immediately through an adjacent outlet: the
        wash is still owed, but no routed transport is generated.
        """
        fluid = self.assay.operation(op_id).output_fluid
        children = self.assay.children(op_id)
        if children:
            target.settle_output(op_id, fluid, end, set(children))
            for child in children:
                self._portions[(op_id, child)] = ("component", target.cid)
        else:
            target.settle_output(op_id, fluid, end, {OUTLET})
            target.remove_portion(OUTLET, end, "transport", fluid.wash_time)

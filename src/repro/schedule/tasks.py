"""Fluid movements and transportation tasks.

Scheduling decides *when* fluids move; placement/routing later decides
*where*.  The interface between the two stages is the
:class:`TransportTask`: one physical channel transport per fluidic
dependency whose producer and consumer do not share a component (plus one
per evicted fluid that later returns to its own component).

A :class:`FluidMovement` is the scheduler-side record for every edge of
the sequencing graph, including the in-place case that needs no channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.assay.fluids import Fluid
from repro.errors import SchedulingError
from repro.units import Seconds, approx_ge

__all__ = ["FluidMovement", "TransportTask"]


@dataclass(frozen=True)
class FluidMovement:
    """How the output of *producer* reached *consumer*.

    Timeline (all in seconds)::

        depart            arrive                 consume
          |---- t_c --------|--- channel cache ----|
        leaves src        reaches dst           enters dst

    For an in-place consumption (``in_place=True``) the three timestamps
    coincide with the consumer's start time and no channel is used.

    Attributes
    ----------
    producer, consumer:
        Operation ids of the sequencing-graph edge served by this
        movement.  ``consumer`` is ``"<outlet>"`` for a sink output
        leaving the chip.
    fluid:
        The transported fluid.
    src_component, dst_component:
        Component ids.  Equal for in-place movements; they may *also* be
        equal for a physical movement when an evicted fluid later returns
        to the component it came from.
    evicted:
        ``True`` when the fluid was pushed into channel storage because
        its component was rebound to another operation before the
        consumer was ready (the paper's distributed-channel-storage case).
    """

    producer: str
    consumer: str
    fluid: Fluid
    src_component: str
    dst_component: str
    depart: Seconds
    arrive: Seconds
    consume: Seconds
    in_place: bool = False
    evicted: bool = False

    def __post_init__(self) -> None:
        if not approx_ge(self.arrive, self.depart):
            raise SchedulingError(
                f"movement {self.producer}->{self.consumer}: arrives at "
                f"{self.arrive} before departing at {self.depart}"
            )
        if not approx_ge(self.consume, self.arrive):
            raise SchedulingError(
                f"movement {self.producer}->{self.consumer}: consumed at "
                f"{self.consume} before arriving at {self.arrive}"
            )
        if self.in_place and self.cache_time > 0:
            raise SchedulingError(
                f"movement {self.producer}->{self.consumer}: in-place "
                "movements cannot cache in channels"
            )

    @property
    def cache_time(self) -> Seconds:
        """Time the fluid spends cached in channel storage (Fig. 8 metric)."""
        return self.consume - self.arrive

    @property
    def transport_time(self) -> Seconds:
        """Time the fluid spends moving through channels."""
        return self.arrive - self.depart

    def to_transport_task(self, task_id: str) -> "TransportTask":
        """Materialise the routing-stage task for this movement.

        Raises for in-place movements, which have no physical channel.
        """
        if self.in_place:
            raise SchedulingError(
                f"movement {self.producer}->{self.consumer} is in-place; "
                "it has no transport task"
            )
        return TransportTask(
            task_id=task_id,
            producer=self.producer,
            consumer=self.consumer,
            fluid=self.fluid,
            src_component=self.src_component,
            dst_component=self.dst_component,
            depart=self.depart,
            arrive=self.arrive,
            consume=self.consume,
        )


@dataclass(frozen=True)
class TransportTask:
    """A physical channel transport to be realised by the router.

    The routed path's cells are occupied from ``depart`` until
    ``consume + wash_time`` — movement, distributed-channel cache, and the
    wash of the residue left behind (this encodes all three conflict types
    of Section II-C.2).
    """

    task_id: str
    producer: str
    consumer: str
    fluid: Fluid
    src_component: str
    dst_component: str
    depart: Seconds
    arrive: Seconds
    consume: Seconds

    @property
    def cache_time(self) -> Seconds:
        """Channel cache duration carried by this task."""
        return self.consume - self.arrive

    @property
    def wash_time(self) -> Seconds:
        """Wash duration of the residue this task leaves in its channels."""
        return self.fluid.wash_time

    @property
    def occupation(self) -> tuple[Seconds, Seconds]:
        """Full time slot ``[depart, consume]``: transport followed by the
        distributed-channel cache.  Claimed on the *cache cell* — the
        path cell where the fluid plug actually waits.

        Following the paper's model, the wash of the residue is *not*
        part of the occupation interval: Eq. 5 blocks cells only for the
        transport/cache occupation, while washing is steered through the
        cell weights (Algorithm 2, line 16) and accounted separately
        (Fig. 9)."""
        return (self.depart, self.consume)

    @property
    def transit_occupation(self) -> tuple[Seconds, Seconds]:
        """Time slot ``[depart, arrive]`` claimed on the remaining path
        cells: the fluid clears them once it reaches the destination's
        vicinity."""
        return (self.depart, self.arrive)

    def overlaps(self, other: "TransportTask") -> bool:
        """Whether the two tasks' full occupation slots intersect in time."""
        a_start, a_end = self.occupation
        b_start, b_end = other.occupation
        return a_start < b_end and b_start < a_end

"""Retiming a schedule after routing-induced postponements.

The baseline's construction-by-correction router resolves channel
conflicts by *postponing* transportation tasks.  A postponed arrival
delays the consuming operation, which delays everything downstream (both
through fluidic dependencies and through component occupancy).  This
module recomputes all start times for a **fixed** binding and a **fixed**
per-component execution order, given per-edge extra transport delays —
i.e. it answers "what does the bioassay's completion time become once the
routed reality is applied to the scheduled plan?".

The recomputation is a longest-path relaxation over the union of two
precedence relations:

* fluidic: ``start(child) ≥ end(parent) + t_c + delay(edge)`` for moved
  fluids (``≥ end(parent)`` for in-place ones), and
* structural: consecutive operations on the same component keep their
  order and their wash gaps.

Both relations are acyclic for a valid schedule, so a topological sweep
suffices.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import SchedulingError
from repro.schedule.schedule import Schedule, ScheduledOperation
from repro.units import Seconds

__all__ = ["retime_with_delays"]


def retime_with_delays(
    schedule: Schedule, edge_delays: dict[tuple[str, str], Seconds]
) -> Schedule:
    """Return a new schedule with routing delays propagated through.

    Parameters
    ----------
    schedule:
        The planned schedule (binding and per-component order are kept).
    edge_delays:
        Extra transport delay, in seconds, per ``(producer, consumer)``
        edge; missing edges default to 0.  Negative delays are rejected.

    Notes
    -----
    Movements and component statistics are *not* regenerated — the result
    is meant for makespan/utilisation accounting of the baseline after
    conflict correction, not as input to another routing pass.
    """
    for edge, delay in edge_delays.items():
        if delay < 0:
            raise SchedulingError(f"negative delay for edge {edge}: {delay}")

    assay = schedule.assay
    t_c = schedule.transport_time

    # Wash gap required between consecutive ops on one component, taken
    # from the original schedule's realised gaps: keep the same slack
    # structure (in-place chains keep zero gap).
    predecessor_on: dict[str, tuple[str, Seconds] | None] = {}
    for cid, _ in schedule.allocation.iter_components():
        records = schedule.operations_on(cid)
        for earlier, later in zip(records, records[1:]):
            gap = later.start - earlier.end
            predecessor_on[later.op_id] = (earlier.op_id, gap)
        if records:
            predecessor_on.setdefault(records[0].op_id, None)

    movement_by_edge = {
        (m.producer, m.consumer): m for m in schedule.movements
    }

    # Build the combined precedence graph and sweep it topologically.
    succ: dict[str, list[str]] = defaultdict(list)
    indegree: dict[str, int] = {o: 0 for o in assay.operation_ids}
    for parent, child in assay.edges:
        succ[parent].append(child)
        indegree[child] += 1
    for op_id, entry in predecessor_on.items():
        if entry is not None:
            prev_op, _gap = entry
            succ[prev_op].append(op_id)
            indegree[op_id] += 1

    new_start: dict[str, Seconds] = {}
    new_end: dict[str, Seconds] = {}
    queue = [o for o, deg in indegree.items() if deg == 0]
    processed = 0
    while queue:
        queue.sort()
        op_id = queue.pop(0)
        processed += 1
        op = assay.operation(op_id)
        earliest = 0.0
        for parent in assay.parents(op_id):
            movement = movement_by_edge.get((parent, op_id))
            travel = 0.0 if movement is not None and movement.in_place else t_c
            delay = edge_delays.get((parent, op_id), 0.0)
            earliest = max(earliest, new_end[parent] + travel + delay)
        entry = predecessor_on.get(op_id)
        if entry is not None:
            prev_op, gap = entry
            earliest = max(earliest, new_end[prev_op] + gap)
        # Never start earlier than originally planned: the plan already
        # encodes wash/eviction timing we are not re-deriving here.
        earliest = max(earliest, schedule.operation(op_id).start)
        new_start[op_id] = earliest
        new_end[op_id] = earliest + op.duration
        for nxt in succ[op_id]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                queue.append(nxt)

    if processed != len(assay):
        raise SchedulingError(
            "retiming precedence graph is cyclic — the input schedule is "
            "internally inconsistent"
        )

    operations = {
        op_id: ScheduledOperation(
            op_id=op_id,
            component_id=schedule.operation(op_id).component_id,
            start=new_start[op_id],
            end=new_end[op_id],
        )
        for op_id in assay.operation_ids
    }
    return Schedule(
        assay=assay,
        allocation=schedule.allocation,
        transport_time=t_c,
        operations=operations,
        movements=list(schedule.movements),
        components=schedule.components,
    )

"""Resource binding and scheduling (Section IV-A of the paper)."""

from repro.schedule.baseline_scheduler import schedule_assay_baseline
from repro.schedule.bounds import MakespanBounds, makespan_lower_bounds
from repro.schedule.engine import (
    DEFAULT_TRANSPORT_TIME,
    BindingPolicy,
    OrderPolicy,
    SchedulerEngine,
    SchedulingPolicy,
)
from repro.schedule.dedicated import (
    DedicatedStorageScheduler,
    schedule_assay_dedicated,
)
from repro.schedule.exact import ExactResult, schedule_assay_optimal
from repro.schedule.list_scheduler import schedule_assay
from repro.schedule.priority import compute_priorities, critical_operations
from repro.schedule.retiming import retime_with_delays
from repro.schedule.schedule import Schedule, ScheduledOperation
from repro.schedule.tasks import FluidMovement, TransportTask
from repro.schedule.validate import validate_schedule

__all__ = [
    "BindingPolicy",
    "DEFAULT_TRANSPORT_TIME",
    "DedicatedStorageScheduler",
    "ExactResult",
    "MakespanBounds",
    "FluidMovement",
    "OrderPolicy",
    "Schedule",
    "ScheduledOperation",
    "SchedulerEngine",
    "SchedulingPolicy",
    "TransportTask",
    "compute_priorities",
    "critical_operations",
    "makespan_lower_bounds",
    "retime_with_delays",
    "schedule_assay",
    "schedule_assay_baseline",
    "schedule_assay_dedicated",
    "schedule_assay_optimal",
    "validate_schedule",
]

"""The paper's baseline algorithm (BA), scheduling side.

Section V: BA "binds each ready operation to a qualified component that
has the earliest ready time".  It runs on the same storage semantics as
Algorithm 1 (so comparisons are apples-to-apples) but drains the ready
queue in FIFO order and never exploits the Case I in-place reuse.
"""

from __future__ import annotations

from repro.assay.graph import SequencingGraph
from repro.components.allocation import Allocation
from repro.obs.instrument import Instrumentation
from repro.schedule.engine import (
    DEFAULT_TRANSPORT_TIME,
    SchedulerEngine,
    SchedulingPolicy,
)
from repro.schedule.schedule import Schedule
from repro.units import Seconds

__all__ = ["schedule_assay_baseline"]


def schedule_assay_baseline(
    assay: SequencingGraph,
    allocation: Allocation,
    transport_time: Seconds = DEFAULT_TRANSPORT_TIME,
    instrumentation: Instrumentation | None = None,
) -> Schedule:
    """Bind and schedule *assay* with the baseline (earliest-ready) policy.

    Signature and result type match
    :func:`repro.schedule.list_scheduler.schedule_assay`, so the two can
    be swapped freely in experiment harnesses.
    """
    engine = SchedulerEngine(
        assay,
        allocation,
        SchedulingPolicy.baseline(),
        transport_time,
        instrumentation=instrumentation,
    )
    return engine.run()

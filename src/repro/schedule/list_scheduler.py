"""Algorithm 1: DCSA-aware resource binding and scheduling (ours).

The public entry point :func:`schedule_assay` runs the priority-driven
list scheduler with the Case I / Case II binding strategy of
Section IV-A on the shared engine of :mod:`repro.schedule.engine`.
"""

from __future__ import annotations

from repro.assay.graph import SequencingGraph
from repro.components.allocation import Allocation
from repro.obs.instrument import Instrumentation
from repro.schedule.engine import (
    DEFAULT_TRANSPORT_TIME,
    SchedulerEngine,
    SchedulingPolicy,
)
from repro.schedule.schedule import Schedule
from repro.units import Seconds

__all__ = ["schedule_assay"]


def schedule_assay(
    assay: SequencingGraph,
    allocation: Allocation,
    transport_time: Seconds = DEFAULT_TRANSPORT_TIME,
    instrumentation: Instrumentation | None = None,
) -> Schedule:
    """Bind and schedule *assay* onto *allocation* with Algorithm 1.

    Parameters
    ----------
    assay:
        The bioassay's sequencing graph.
    allocation:
        Numbers of allocated mixers/heaters/filters/detectors.
    transport_time:
        The constant inter-component transport time ``t_c`` (paper
        default 2.0 s).
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation` receiving the
        scheduler's counters (operations, evictions, movements) and the
        ready-queue depth gauge.

    Returns
    -------
    Schedule
        Binding Φ, per-operation timing, and all fluid movements
        (including distributed-channel cache intervals).
    """
    engine = SchedulerEngine(
        assay,
        allocation,
        SchedulingPolicy.ours(),
        transport_time,
        instrumentation=instrumentation,
    )
    return engine.run()

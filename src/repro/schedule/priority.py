"""Operation priorities for Algorithm 1 (list scheduling).

The priority of an operation is "the length of the longest path from the
operation to the sink" of the sequencing graph, where a path's length is
the sum of the execution times of its operations plus one transport time
``t_c`` per traversed edge.  (The paper's example: with ``t_c = 2`` the
priority of ``o1`` in Fig. 2(a) is 21 along ``o1→o5→o7→o10→sink``.)

Operations with larger priorities dominate the bioassay's completion time
and are scheduled first.
"""

from __future__ import annotations

from repro.assay.graph import SequencingGraph
from repro.units import Seconds

__all__ = ["compute_priorities", "critical_operations"]


def compute_priorities(
    graph: SequencingGraph, transport_time: Seconds
) -> dict[str, Seconds]:
    """Longest path length from each operation to a sink.

    Computed in a single reverse-topological sweep, so the cost is
    ``O(|O| + |E|)``.
    """
    priority: dict[str, Seconds] = {}
    for op_id in reversed(graph.topological_order()):
        op = graph.operation(op_id)
        tails = [
            transport_time + priority[child] for child in graph.children(op_id)
        ]
        priority[op_id] = op.duration + (max(tails) if tails else 0.0)
    return priority


def critical_operations(
    graph: SequencingGraph, transport_time: Seconds
) -> list[str]:
    """Operation ids on (one of) the critical path(s), source to sink.

    Useful for diagnostics: these are the operations whose delays move the
    makespan one-for-one.
    """
    priority = compute_priorities(graph, transport_time)
    # Start from the source with the highest priority and greedily follow
    # children that preserve the longest-path recurrence.
    sources = graph.sources()
    if not sources:
        return []
    current = max(sources, key=lambda o: (priority[o], o))
    path = [current]
    while graph.children(current):
        op = graph.operation(current)
        best_child = None
        for child in sorted(graph.children(current)):
            expected = op.duration + transport_time + priority[child]
            if abs(expected - priority[current]) < 1e-9:
                best_child = child
                break
        if best_child is None:  # pragma: no cover - defensive
            break
        path.append(best_child)
        current = best_child
    return path

"""Independent validity checking of schedules.

The engine asserts its invariants as it goes, but a defence-in-depth
validator that replays a finished :class:`~repro.schedule.schedule.Schedule`
against the problem definition catches whole-schedule inconsistencies and
gives the property-based tests a single oracle to call.

Checked invariants (see DESIGN.md §7):

1. every operation is scheduled exactly once, on a component of its type;
2. operations on one component never overlap in time;
3. every sequencing-graph edge is served by exactly one fluid movement
   whose timeline is consistent (``depart ≥ producer end``,
   ``arrive − depart ∈ {0, t_c}``, ``consume == consumer start``);
4. Eq. 2 wash gaps: after an output fully leaves a component (other than
   by in-place consumption), the next operation starts no earlier than
   removal + wash time.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import ValidationError
from repro.schedule.schedule import Schedule
from repro.units import approx_eq, approx_ge

__all__ = ["validate_schedule"]


def validate_schedule(schedule: Schedule) -> None:
    """Raise :class:`ValidationError` on the first violated invariant."""
    _check_bindings(schedule)
    _check_component_exclusivity(schedule)
    _check_movements(schedule)
    _check_wash_gaps(schedule)


def _check_bindings(schedule: Schedule) -> None:
    assay = schedule.assay
    scheduled_ids = set(schedule.operations)
    expected_ids = set(assay.operation_ids)
    if scheduled_ids != expected_ids:
        missing = expected_ids - scheduled_ids
        extra = scheduled_ids - expected_ids
        raise ValidationError(
            f"schedule/assay mismatch: missing={sorted(missing)}, "
            f"extra={sorted(extra)}"
        )
    types = {
        cid: op_type for cid, op_type in schedule.allocation.iter_components()
    }
    for op_id, record in schedule.operations.items():
        op = assay.operation(op_id)
        if record.component_id not in types:
            raise ValidationError(
                f"operation {op_id} bound to unknown component "
                f"{record.component_id!r}"
            )
        if types[record.component_id] != op.op_type:
            raise ValidationError(
                f"operation {op_id} ({op.op_type.value}) bound to "
                f"{record.component_id}, a {types[record.component_id].value} "
                "component"
            )
        if not approx_eq(record.end - record.start, op.duration):
            raise ValidationError(
                f"operation {op_id}: scheduled duration "
                f"{record.end - record.start} differs from {op.duration}"
            )


def _check_component_exclusivity(schedule: Schedule) -> None:
    for cid, _ in schedule.allocation.iter_components():
        records = schedule.operations_on(cid)
        for earlier, later in zip(records, records[1:]):
            if not approx_ge(later.start, earlier.end):
                raise ValidationError(
                    f"component {cid}: operations {earlier.op_id} and "
                    f"{later.op_id} overlap "
                    f"([{earlier.start},{earlier.end}] vs "
                    f"[{later.start},{later.end}])"
                )


def _check_movements(schedule: Schedule) -> None:
    assay = schedule.assay
    t_c = schedule.transport_time
    served: dict[tuple[str, str], int] = defaultdict(int)
    for movement in schedule.movements:
        key = (movement.producer, movement.consumer)
        served[key] += 1
        producer_end = schedule.operation(movement.producer).end
        consumer = schedule.operation(movement.consumer)
        if not approx_ge(movement.depart, producer_end):
            raise ValidationError(
                f"movement {key}: departs at {movement.depart} before the "
                f"producer finishes at {producer_end}"
            )
        if not approx_eq(movement.consume, consumer.start):
            raise ValidationError(
                f"movement {key}: consumed at {movement.consume}, but the "
                f"consumer starts at {consumer.start}"
            )
        expected_travel = 0.0 if movement.in_place else t_c
        if not approx_eq(movement.transport_time, expected_travel):
            raise ValidationError(
                f"movement {key}: transport takes {movement.transport_time}, "
                f"expected {expected_travel}"
            )
        if movement.in_place and movement.src_component != movement.dst_component:
            raise ValidationError(
                f"movement {key}: flagged in-place across two components"
            )
        if movement.src_component != schedule.operation(movement.producer).component_id:
            raise ValidationError(
                f"movement {key}: source component {movement.src_component} "
                "is not the producer's binding"
            )
        if movement.dst_component != consumer.component_id:
            raise ValidationError(
                f"movement {key}: destination {movement.dst_component} is "
                "not the consumer's binding"
            )
    for edge in assay.edges:
        if served[edge] != 1:
            raise ValidationError(
                f"edge {edge}: served by {served[edge]} movements, expected 1"
            )
    if sum(served.values()) != len(assay.edges):
        raise ValidationError("movements exist for non-edges")


def _check_wash_gaps(schedule: Schedule) -> None:
    # Reconstruct, per component, when each operation's output fully left
    # and whether the final departure was an in-place consumption.
    leave_time: dict[str, float] = {}
    leave_in_place: dict[str, bool] = {}
    for movement in schedule.movements:
        current = leave_time.get(movement.producer)
        if current is None or movement.depart > current:
            leave_time[movement.producer] = movement.depart
            leave_in_place[movement.producer] = movement.in_place
        elif approx_eq(movement.depart, current) and movement.in_place:
            # Simultaneous sibling eviction + in-place consumption: the
            # engine charges no wash, mirror that here.
            leave_in_place[movement.producer] = True

    for cid, _ in schedule.allocation.iter_components():
        records = schedule.operations_on(cid)
        for earlier, later in zip(records, records[1:]):
            op = schedule.assay.operation(earlier.op_id)
            if not schedule.assay.children(earlier.op_id):
                # Sink output: collected at end through the outlet, wash owed.
                departed, in_place = earlier.end, False
            else:
                if earlier.op_id not in leave_time:
                    raise ValidationError(
                        f"component {cid}: output of {earlier.op_id} never "
                        f"left, yet {later.op_id} runs afterwards"
                    )
                departed = leave_time[earlier.op_id]
                in_place = leave_in_place[earlier.op_id]
            required = departed if in_place else departed + op.wash_time
            if not approx_ge(later.start, required):
                raise ValidationError(
                    f"component {cid}: {later.op_id} starts at {later.start} "
                    f"but the residue of {earlier.op_id} is only washed by "
                    f"{required}"
                )

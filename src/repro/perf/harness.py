"""Benchmark timing harness: pipeline runs per placement engine.

Each measured run executes the *full* proposed flow
(:func:`~repro.core.synthesizer.synthesize_problem`) so the timings are
the ones users see, and reads the per-phase durations from
``SynthesisResult.phase_times`` — the same :mod:`repro.obs` span
measurements the ``--profile`` report shows.  Runs are repeated and the
**median** per phase is reported, with the min/max spread kept
alongside: a single sample (or even the min alone) makes speedup gates
flaky on noisy machines, while the median plus spread both damps
outliers and makes the noise level itself visible in the committed
artifact.

The harness also records the best placement energy of every run: the
incremental and reference engines are bit-compatible (see
:mod:`repro.place.annealing`), so equal seeds must give equal energies
— the comparison carries that check alongside the speedup, making a
silent divergence impossible to miss in the committed artifact.

Two further measurements feed the ``BENCH_*.json`` artifact:

* :func:`measure_jobs_scaling` — wall-clock of the whole suite at
  several ``--jobs`` levels (the process-pool fan-out of
  :mod:`repro.parallel`), normalised against the serial run.
* :func:`measure_multistart` — best-of-``restarts`` placement energy
  versus the single-run energy, which can never be worse because
  restart 0 keeps the base seed.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from statistics import median

from repro.benchmarks.registry import SCALE_ORDER, TABLE1_ORDER, get_benchmark
from repro.core.problem import SynthesisParameters, SynthesisProblem
from repro.core.synthesizer import synthesize_problem
from repro.obs.instrument import Instrumentation
from repro.parallel.pool import run_tasks
from repro.place.annealing import PLACEMENT_ENGINES
from repro.place.energy import build_connection_priorities, placement_energy
from repro.route.router import DEFAULT_ROUTE_ENGINE, ROUTE_ENGINES

__all__ = [
    "BenchRun",
    "BenchComparison",
    "RouteBenchComparison",
    "run_engine",
    "run_suite",
    "run_route_suite",
    "measure_jobs_scaling",
    "measure_multistart",
    "measure_placement_throughput",
    "measure_portfolio",
]


@dataclass(frozen=True)
class BenchRun:
    """Timing of one benchmark under one placement engine."""

    benchmark: str
    engine: str
    seed: int
    repeats: int
    #: Best placement energy of the seeded run (engine-independent by
    #: the parity guarantee).
    placement_energy: float
    #: Median per-phase wall-clock seconds over the repeats.
    phase_times: dict[str, float]
    #: Median end-to-end wall-clock seconds over the repeats.
    total_time: float
    #: Fastest/slowest observation per phase (the repeat spread).
    phase_min: dict[str, float] = field(default_factory=dict)
    phase_max: dict[str, float] = field(default_factory=dict)
    total_min: float | None = None
    total_max: float | None = None
    #: Design-rule violations found by :mod:`repro.check`; ``None`` when
    #: the run was not audited (``check="off"``).
    violations: int | None = None
    #: Routing engine the run used (see :mod:`repro.route.flat`).
    route_engine: str = DEFAULT_ROUTE_ENGINE
    #: SHA-256 over every routed path's ``(task_id, cells, slot,
    #: postponement)`` — equal digests mean byte-identical routing.
    paths_digest: str | None = None
    #: Number of transport tasks the router had to postpone, and the
    #: summed slide distance (seconds) of those postponements.
    postponed_tasks: int = 0
    postponement_total: float = 0.0
    #: Percentile summary of per-search A* latency across all repeats
    #: (the ``astar.search_seconds`` histogram: count/mean/p50/p90/p99/
    #: max); ``None`` on legacy artifacts.
    route_search_seconds: dict | None = None
    #: SA move totals over all repeats (the ``sa.moves_*`` counters)
    #: and the resulting placement throughput — legal candidate moves
    #: evaluated per second of placement phase; ``None`` on legacy
    #: artifacts.
    moves_proposed: int = 0
    moves_accepted: int = 0
    moves_per_second: float | None = None

    @property
    def place_time(self) -> float:
        return self.phase_times.get("place", 0.0)

    @property
    def route_time(self) -> float:
        return self.phase_times.get("route", 0.0)


@dataclass(frozen=True)
class BenchComparison:
    """Reference vs incremental engine on one benchmark."""

    benchmark: str
    reference: BenchRun
    incremental: BenchRun

    @property
    def place_speedup(self) -> float:
        """Placement-phase speedup of the incremental engine."""
        if self.incremental.place_time <= 0:
            return float("inf")
        return self.reference.place_time / self.incremental.place_time

    @property
    def total_speedup(self) -> float:
        """End-to-end pipeline speedup of the incremental engine."""
        if self.incremental.total_time <= 0:
            return float("inf")
        return self.reference.total_time / self.incremental.total_time

    @property
    def energies_match(self) -> bool:
        """Whether both engines reached the identical best energy."""
        return self.reference.placement_energy == self.incremental.placement_energy


@dataclass(frozen=True)
class RouteBenchComparison:
    """Reference vs flat routing engine on one benchmark."""

    benchmark: str
    reference: BenchRun
    flat: BenchRun

    @property
    def route_speedup(self) -> float:
        """Routing-phase speedup of the flat engine."""
        if self.flat.route_time <= 0:
            return float("inf")
        return self.reference.route_time / self.flat.route_time

    @property
    def total_speedup(self) -> float:
        """End-to-end pipeline speedup of the flat engine."""
        if self.flat.total_time <= 0:
            return float("inf")
        return self.reference.total_time / self.flat.total_time

    @property
    def paths_match(self) -> bool:
        """Whether both engines produced byte-identical routing.

        Compares the SHA-256 digests over every routed path's
        ``(task_id, cells, slot, postponement)``.
        """
        return (
            self.reference.paths_digest is not None
            and self.reference.paths_digest == self.flat.paths_digest
        )


def _paths_digest(routing) -> str:
    """SHA-256 fingerprint of every routed path, in routing order.

    Covers exactly the observable routing outcome — task identity, the
    cell sequence, the claimed occupation slot, and any postponement —
    so two runs share a digest iff their routing is byte-identical.
    """
    digest = hashlib.sha256()
    for path in routing.paths:
        record = (
            path.task.task_id,
            tuple((c.x, c.y) for c in path.cells),
            (path.slot.start, path.slot.end),
            path.postponement,
        )
        digest.update(repr(record).encode("utf-8"))
    return digest.hexdigest()


def run_engine(
    name: str,
    engine: str,
    seed: int = 1,
    repeats: int = 3,
    check: str = "off",
    route_engine: str = DEFAULT_ROUTE_ENGINE,
) -> BenchRun:
    """Time benchmark *name* under *engine*; median over *repeats* runs.

    With ``check="report"`` every measured run is also audited by the
    independent design-rule checker and the violation count is recorded
    (the ``check`` phase then shows up in the phase timings — identical
    for both engines, so speedup comparisons stay fair).
    *route_engine* selects the routing engine the same way the
    ``--route-engine`` CLI flag does; the run records a digest of every
    routed path so engine comparisons can assert byte-identical routing.
    """
    if engine not in PLACEMENT_ENGINES:
        raise ValueError(
            f"unknown placement engine {engine!r}; "
            f"expected one of {PLACEMENT_ENGINES}"
        )
    if route_engine not in ROUTE_ENGINES:
        raise ValueError(
            f"unknown route engine {route_engine!r}; "
            f"expected one of {ROUTE_ENGINES}"
        )
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    case = get_benchmark(name)
    params = SynthesisParameters(
        seed=seed, placement_engine=engine, route_engine=route_engine,
        check=check,
    )
    problem = SynthesisProblem(
        assay=case.assay, allocation=case.allocation, parameters=params
    )
    phase_samples: dict[str, list[float]] = {}
    total_samples: list[float] = []
    energy = 0.0
    violations: int | None = None
    paths_digest: str | None = None
    postponed_tasks = 0
    postponement_total = 0.0
    # One NullSink instrumentation across all repeats: no events flow,
    # but the in-memory aggregates — including the A* search-latency
    # histogram — accumulate every repeat's samples.
    instrumentation = Instrumentation()
    for _ in range(repeats):
        result = synthesize_problem(problem, instrumentation=instrumentation)
        if result.check_report is not None:
            violations = result.check_report.error_count
        for phase, duration in result.phase_times.items():
            phase_samples.setdefault(phase, []).append(duration)
        total_samples.append(result.metrics.cpu_time)
        # Deterministic across repeats (same seed); recomputing from the
        # result keeps the check independent of the annealer's own
        # energy bookkeeping.
        priorities = build_connection_priorities(
            result.schedule, beta=params.beta, gamma=params.gamma
        )
        energy = placement_energy(result.placement, priorities)
        paths_digest = _paths_digest(result.routing)
        postponed = [p.postponement for p in result.routing.paths if p.postponement > 0]
        postponed_tasks = len(postponed)
        postponement_total = sum(postponed)
    search_latency = instrumentation.histogram("astar.search_seconds")
    moves_proposed = int(instrumentation.counters.get("sa.moves_proposed", 0))
    moves_accepted = int(instrumentation.counters.get("sa.moves_accepted", 0))
    place_seconds = sum(phase_samples.get("place", []))
    return BenchRun(
        benchmark=name,
        engine=engine,
        seed=seed,
        repeats=repeats,
        placement_energy=energy,
        phase_times={p: median(s) for p, s in phase_samples.items()},
        total_time=median(total_samples),
        phase_min={p: min(s) for p, s in phase_samples.items()},
        phase_max={p: max(s) for p, s in phase_samples.items()},
        total_min=min(total_samples),
        total_max=max(total_samples),
        violations=violations,
        route_engine=route_engine,
        paths_digest=paths_digest,
        postponed_tasks=postponed_tasks,
        postponement_total=postponement_total,
        route_search_seconds=(
            search_latency.summary() if search_latency is not None else None
        ),
        moves_proposed=moves_proposed,
        moves_accepted=moves_accepted,
        moves_per_second=(
            moves_proposed / place_seconds if place_seconds > 0 else None
        ),
    )


def _engine_worker(payload: tuple[str, str, int, int, str]) -> BenchRun:
    """Pool entry point: one (benchmark, engine) timing task."""
    name, engine, seed, repeats, check = payload
    return run_engine(name, engine, seed=seed, repeats=repeats, check=check)


def run_suite(
    names: tuple[str, ...] | list[str] = TABLE1_ORDER,
    seed: int = 1,
    repeats: int = 3,
    jobs: int = 1,
    check: str = "off",
) -> list[BenchComparison]:
    """Time every benchmark under both engines, paired for comparison.

    ``jobs > 1`` fans the per-(benchmark, engine) syntheses out over a
    process pool; pairing happens in submission order, so the returned
    comparisons are identical for every job count.  Note that pooled
    *timings* are only meaningful when the machine has idle cores —
    concurrent workers contend for CPU, which is why the scaling
    measurement (:func:`measure_jobs_scaling`) reports wall-clock of
    the whole suite rather than per-run times.
    """
    tasks = [
        (name, engine, seed, repeats, check)
        for name in names
        for engine in ("reference", "incremental")
    ]
    runs = run_tasks(_engine_worker, tasks, jobs=jobs)
    comparisons = []
    for i in range(0, len(runs), 2):
        comparisons.append(
            BenchComparison(
                benchmark=runs[i].benchmark,
                reference=runs[i],
                incremental=runs[i + 1],
            )
        )
    return comparisons


def _route_worker(payload: tuple[str, str, int, int, str]) -> BenchRun:
    """Pool entry point: one (benchmark, route_engine) timing task."""
    name, route_engine, seed, repeats, check = payload
    return run_engine(
        name, "incremental", seed=seed, repeats=repeats, check=check,
        route_engine=route_engine,
    )


def run_route_suite(
    names: tuple[str, ...] | list[str] = SCALE_ORDER,
    seed: int = 1,
    repeats: int = 3,
    jobs: int = 1,
    check: str = "off",
    fast_engine: str = "flat2",
) -> list[RouteBenchComparison]:
    """Time every benchmark under reference vs *fast_engine* routing.

    The placement engine is pinned to ``incremental`` on both sides so
    the comparison isolates the routing phase; the scale tier
    (:data:`~repro.benchmarks.registry.SCALE_ORDER`) is the default
    name set because that is where routing dominates the pipeline.
    *fast_engine* (``"flat2"`` by default, ``"flat"`` for the
    first-generation kernel) fills each comparison's ``flat`` side.
    Each comparison carries the path digests of both runs, so a parity
    break surfaces as ``paths_match=False`` in the committed artifact.
    """
    tasks = [
        (name, route_engine, seed, repeats, check)
        for name in names
        for route_engine in ("reference", fast_engine)
    ]
    runs = run_tasks(_route_worker, tasks, jobs=jobs)
    comparisons = []
    for i in range(0, len(runs), 2):
        comparisons.append(
            RouteBenchComparison(
                benchmark=runs[i].benchmark,
                reference=runs[i],
                flat=runs[i + 1],
            )
        )
    return comparisons


def measure_jobs_scaling(
    names: tuple[str, ...] | list[str],
    jobs_levels: tuple[int, ...] | list[int] = (1, 2, 4),
    seed: int = 1,
    repeats: int = 1,
) -> list[dict]:
    """Wall-clock the suite at each ``--jobs`` level.

    Returns one row per level: the end-to-end wall-clock seconds of
    :func:`run_suite` and the speedup versus the first (serial) level.
    The host CPU count is recorded with the rows — fan-out cannot beat
    the serial run on a single-core machine, and the artifact should
    say so rather than mislead.
    """
    rows: list[dict] = []
    baseline: float | None = None
    for jobs in jobs_levels:
        started = time.perf_counter()
        run_suite(names, seed=seed, repeats=repeats, jobs=jobs)
        wall = time.perf_counter() - started
        if baseline is None:
            baseline = wall
        rows.append(
            {
                "jobs": jobs,
                "wall_s": round(wall, 6),
                "speedup_vs_serial": round(baseline / wall, 3) if wall > 0 else None,
                "cpu_count": os.cpu_count(),
            }
        )
    return rows


def measure_multistart(
    names: tuple[str, ...] | list[str],
    restarts: int = 4,
    seed: int = 1,
    jobs: int = 1,
) -> list[dict]:
    """Best-of-*restarts* placement energy versus the single run.

    Because restart 0 reuses the base seed (see
    :func:`repro.parallel.multistart_seeds`), the multi-start energy is
    ≤ the single-run energy by construction; the row records both plus
    the relative improvement.
    """
    rows: list[dict] = []
    for name in names:
        case = get_benchmark(name)
        energies: dict[int, float] = {}
        for n in (1, restarts):
            params = SynthesisParameters(seed=seed, restarts=n, jobs=jobs)
            problem = SynthesisProblem(
                assay=case.assay, allocation=case.allocation, parameters=params
            )
            result = synthesize_problem(problem)
            priorities = build_connection_priorities(
                result.schedule, beta=params.beta, gamma=params.gamma
            )
            energies[n] = placement_energy(result.placement, priorities)
        single, multi = energies[1], energies[restarts]
        rows.append(
            {
                "benchmark": name,
                "seed": seed,
                "restarts": restarts,
                "single_energy": single,
                "multistart_energy": multi,
                "improvement_pct": (
                    round((single - multi) / single * 100.0, 3)
                    if single > 0
                    else 0.0
                ),
                "non_degraded": multi <= single,
            }
        )
    return rows


def measure_placement_throughput(
    names: tuple[str, ...] | list[str],
    seed: int = 1,
    batch_size: int = 64,
) -> list[dict]:
    """Raw SA move throughput of every placement engine, per benchmark.

    Times :func:`~repro.place.annealing.anneal_placement` alone (no
    routing, no pipeline overhead) so the rows measure the kernels, not
    the phases.  The throughput unit is *legal candidate moves
    evaluated per second* — ``AnnealingResult.trials`` over the
    annealing wall-clock.  Each row also records the final energy and
    whether the batch engine's energy is never worse than the
    serial engines' (which share one energy by the parity guarantee);
    the batch engine runs at *batch_size* candidates per step, recorded
    in the row.
    """
    from dataclasses import replace as _replace

    from repro.place.annealing import anneal_placement
    from repro.schedule.list_scheduler import schedule_assay

    rows: list[dict] = []
    for name in names:
        case = get_benchmark(name)
        params = SynthesisParameters(seed=seed)
        problem = SynthesisProblem(
            assay=case.assay, allocation=case.allocation, parameters=params
        )
        schedule = schedule_assay(
            problem.assay, problem.allocation, params.transport_time
        )
        priorities = build_connection_priorities(
            schedule, beta=params.beta, gamma=params.gamma
        )
        grid = problem.resolved_grid()
        footprints = problem.footprints()
        annealing = params.annealing()
        measured: dict[str, dict] = {}
        for engine in PLACEMENT_ENGINES:
            engine_params = (
                _replace(annealing, batch_size=batch_size)
                if engine == "batch"
                else annealing
            )
            started = time.perf_counter()
            result = anneal_placement(
                grid, footprints, priorities,
                parameters=engine_params, seed=seed, engine=engine,
            )
            wall = time.perf_counter() - started
            measured[engine] = {
                "trials": result.trials,
                "seconds": round(wall, 6),
                "moves_per_second": (
                    round(result.trials / wall, 1) if wall > 0 else None
                ),
                "energy": result.energy,
            }
        reference_rate = measured["reference"]["moves_per_second"] or 0.0
        batch_rate = measured["batch"]["moves_per_second"] or 0.0
        rows.append(
            {
                "benchmark": name,
                "seed": seed,
                "batch_size": batch_size,
                "engines": measured,
                "batch_vs_reference": (
                    round(batch_rate / reference_rate, 2)
                    if reference_rate
                    else None
                ),
                "batch_never_worse": (
                    measured["batch"]["energy"]
                    <= measured["incremental"]["energy"]
                ),
            }
        )
    return rows


def measure_portfolio(
    names: tuple[str, ...] | list[str],
    arms: int = 8,
    rungs: int = 3,
    seed: int = 1,
    determinism_jobs: tuple[int, ...] = (1, 4),
    check: bool = True,
) -> list[dict]:
    """Portfolio racing versus equal-budget multi-start, per benchmark.

    The comparison holds the **total move budget** fixed, counted in
    candidate evaluations (batch arms evaluate ``K`` candidates per
    iteration and get ``budget // K`` iterations): with halving kills
    over *rungs* rungs, an ``n``-arm race plans — for the default
    ``rungs=3`` and even ``n`` — exactly ``n/2`` full schedules'
    worth of candidates.  The multi-start side therefore runs
    ``restarts = n/2`` classic full anneals.  Both sides are measured
    at ``jobs=1`` with ``time.process_time`` so the figures are pure
    CPU seconds, unaffected by pool scheduling.

    Efficiency is ``(E_init - E_best) / cpu_seconds`` with a **shared**
    ``E_init``: the base-seed random initial placement's energy, which
    is by construction both arm 0's and restart 0's starting point —
    so the two efficiencies divide the same numerator scale and the
    ratio is meaningful.

    Each row additionally verifies the racer's determinism contract
    (identical winner energy and blocks across *determinism_jobs*) and,
    with *check* on, runs the full portfolio pipeline under the strict
    independent checker (``checker_clean`` records the verdict).
    """
    import random as random_module
    from dataclasses import replace as _replace

    from repro.parallel.multistart import anneal_multistart
    from repro.parallel.portfolio import race_portfolio, resolve_arms
    from repro.place.energy import placement_energy as _placement_energy
    from repro.place.moves import random_placement
    from repro.schedule.list_scheduler import schedule_assay

    rows: list[dict] = []
    for name in names:
        case = get_benchmark(name)
        params = SynthesisParameters(seed=seed)
        problem = SynthesisProblem(
            assay=case.assay, allocation=case.allocation, parameters=params
        )
        schedule = schedule_assay(
            problem.assay, problem.allocation, params.transport_time
        )
        priorities = build_connection_priorities(
            schedule, beta=params.beta, gamma=params.gamma
        )
        grid = problem.resolved_grid()
        footprints = problem.footprints()
        annealing = params.annealing()
        arm_set = resolve_arms(arms, base_seed=seed)

        # Shared efficiency reference: the base-seed random initial
        # placement both solvers start restart/arm 0 from.
        initial = random_placement(grid, footprints, random_module.Random(seed))
        init_ref = _placement_energy(initial, priorities)

        raced = race_portfolio(
            grid, footprints, priorities, arm_set,
            parameters=annealing, rungs=rungs, jobs=1,
        )
        portfolio_cpu = raced.summary["total_cpu_seconds"]
        portfolio_candidates = sum(
            a["candidates"] for a in raced.summary["arms"]
        )
        portfolio_eff = (
            (init_ref - raced.result.energy) / portfolio_cpu
            if portfolio_cpu > 0 else 0.0
        )

        restarts = max(1, arms // 2)
        cpu_started = time.process_time()
        multi = anneal_multistart(
            grid, footprints, priorities,
            parameters=annealing, base_seed=seed,
            restarts=restarts, jobs=1, engine="incremental",
        )
        multistart_cpu = time.process_time() - cpu_started
        multistart_candidates = restarts * annealing.total_iterations
        multistart_eff = (
            (init_ref - multi.energy) / multistart_cpu
            if multistart_cpu > 0 else 0.0
        )

        deterministic = True
        baseline_blocks = raced.result.placement.blocks()
        for jobs in determinism_jobs:
            again = race_portfolio(
                grid, footprints, priorities, arm_set,
                parameters=annealing, rungs=rungs, jobs=jobs,
            )
            if (
                again.result.energy != raced.result.energy
                or again.result.placement.blocks() != baseline_blocks
                or again.summary["winner"] != raced.summary["winner"]
            ):
                deterministic = False

        checker_clean = None
        if check:
            strict_problem = SynthesisProblem(
                assay=case.assay,
                allocation=case.allocation,
                parameters=_replace(
                    params, portfolio=arms, rungs=rungs, check="strict"
                ),
            )
            from repro.errors import CheckError

            try:
                synthesize_problem(strict_problem)
            except CheckError:
                checker_clean = False
            else:
                checker_clean = True

        rows.append(
            {
                "benchmark": name,
                "seed": seed,
                "arms": arms,
                "rungs": rungs,
                "restarts_equal_budget": restarts,
                "initial_energy_ref": init_ref,
                "portfolio": {
                    "energy": raced.result.energy,
                    "cpu_seconds": round(portfolio_cpu, 6),
                    "candidates": portfolio_candidates,
                    "efficiency": round(portfolio_eff, 3),
                    "winner": raced.summary["winner"],
                    "winner_spec": raced.summary["winner_spec"],
                    "kills": {
                        a["arm_id"]: a["killed_at_rung"]
                        for a in raced.summary["arms"]
                    },
                },
                "multistart": {
                    "energy": multi.energy,
                    "cpu_seconds": round(multistart_cpu, 6),
                    "candidates": multistart_candidates,
                    "efficiency": round(multistart_eff, 3),
                },
                "efficiency_ratio": (
                    round(portfolio_eff / multistart_eff, 3)
                    if multistart_eff > 0 else None
                ),
                "portfolio_better": portfolio_eff > multistart_eff,
                "deterministic_across_jobs": deterministic,
                "determinism_jobs": list(determinism_jobs),
                "checker_clean": checker_clean,
            }
        )
    return rows

"""Benchmark timing harness: one pipeline run per placement engine.

Each measured run executes the *full* proposed flow
(:func:`~repro.core.synthesizer.synthesize_problem`) so the timings are
the ones users see, and reads the per-phase durations from
``SynthesisResult.phase_times`` — the same :mod:`repro.obs` span
measurements the ``--profile`` report shows.  Runs are repeated and the
*minimum* per phase is kept, the standard way to suppress scheduler
noise when benchmarking (the minimum is the cleanest observation of the
code's actual cost).

The harness also records the best placement energy of every run: the
incremental and reference engines are bit-compatible (see
:mod:`repro.place.annealing`), so equal seeds must give equal energies
— the comparison carries that check alongside the speedup, making a
silent divergence impossible to miss in the committed artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmarks.registry import TABLE1_ORDER, get_benchmark
from repro.core.problem import SynthesisParameters, SynthesisProblem
from repro.core.synthesizer import synthesize_problem
from repro.place.annealing import PLACEMENT_ENGINES
from repro.place.energy import build_connection_priorities, placement_energy

__all__ = ["BenchRun", "BenchComparison", "run_engine", "run_suite"]


@dataclass(frozen=True)
class BenchRun:
    """Timing of one benchmark under one placement engine."""

    benchmark: str
    engine: str
    seed: int
    repeats: int
    #: Best placement energy of the seeded run (engine-independent by
    #: the parity guarantee).
    placement_energy: float
    #: Minimum per-phase wall-clock seconds over the repeats.
    phase_times: dict[str, float]
    #: Minimum end-to-end wall-clock seconds over the repeats.
    total_time: float

    @property
    def place_time(self) -> float:
        return self.phase_times.get("place", 0.0)

    @property
    def route_time(self) -> float:
        return self.phase_times.get("route", 0.0)


@dataclass(frozen=True)
class BenchComparison:
    """Reference vs incremental engine on one benchmark."""

    benchmark: str
    reference: BenchRun
    incremental: BenchRun

    @property
    def place_speedup(self) -> float:
        """Placement-phase speedup of the incremental engine."""
        if self.incremental.place_time <= 0:
            return float("inf")
        return self.reference.place_time / self.incremental.place_time

    @property
    def total_speedup(self) -> float:
        """End-to-end pipeline speedup of the incremental engine."""
        if self.incremental.total_time <= 0:
            return float("inf")
        return self.reference.total_time / self.incremental.total_time

    @property
    def energies_match(self) -> bool:
        """Whether both engines reached the identical best energy."""
        return self.reference.placement_energy == self.incremental.placement_energy


def run_engine(
    name: str,
    engine: str,
    seed: int = 1,
    repeats: int = 3,
) -> BenchRun:
    """Time benchmark *name* under *engine*; min over *repeats* runs."""
    if engine not in PLACEMENT_ENGINES:
        raise ValueError(
            f"unknown placement engine {engine!r}; "
            f"expected one of {PLACEMENT_ENGINES}"
        )
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    case = get_benchmark(name)
    params = SynthesisParameters(seed=seed, placement_engine=engine)
    problem = SynthesisProblem(
        assay=case.assay, allocation=case.allocation, parameters=params
    )
    best_phases: dict[str, float] = {}
    best_total = float("inf")
    energy = 0.0
    for _ in range(repeats):
        result = synthesize_problem(problem)
        for phase, duration in result.phase_times.items():
            if duration < best_phases.get(phase, float("inf")):
                best_phases[phase] = duration
        best_total = min(best_total, result.metrics.cpu_time)
        # Deterministic across repeats (same seed); recomputing from the
        # result keeps the check independent of the annealer's own
        # energy bookkeeping.
        priorities = build_connection_priorities(
            result.schedule, beta=params.beta, gamma=params.gamma
        )
        energy = placement_energy(result.placement, priorities)
    return BenchRun(
        benchmark=name,
        engine=engine,
        seed=seed,
        repeats=repeats,
        placement_energy=energy,
        phase_times=best_phases,
        total_time=best_total,
    )


def run_suite(
    names: tuple[str, ...] | list[str] = TABLE1_ORDER,
    seed: int = 1,
    repeats: int = 3,
) -> list[BenchComparison]:
    """Time every benchmark under both engines, paired for comparison."""
    comparisons = []
    for name in names:
        reference = run_engine(name, "reference", seed=seed, repeats=repeats)
        incremental = run_engine(name, "incremental", seed=seed, repeats=repeats)
        comparisons.append(
            BenchComparison(
                benchmark=name, reference=reference, incremental=incremental
            )
        )
    return comparisons

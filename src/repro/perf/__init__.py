"""Performance measurement harness for the synthesis pipeline.

The paper's evaluation (Table I) reports runtime as a first-class
metric, and every optimisation PR needs before/after numbers against
the same yardstick.  This package is that yardstick:

* :mod:`repro.perf.harness` runs benchmarks through the full pipeline
  once per placement engine, reading the per-phase wall-clock times the
  :mod:`repro.obs` spans already measure, and pairs the runs into
  engine comparisons;
* :mod:`repro.perf.report` renders the comparison table and the
  machine-readable JSON artifact (``BENCH_*.json``) committed at the
  repo root, which successive PRs append their trajectory to.

Run it via ``python -m repro.experiments bench`` (see
``docs/PERFORMANCE.md``).
"""

from repro.perf.harness import (
    BenchComparison,
    BenchRun,
    measure_jobs_scaling,
    measure_multistart,
    run_engine,
    run_suite,
)
from repro.perf.report import (
    comparisons_to_payload,
    render_bench_table,
    render_multistart_table,
    render_scaling_table,
    write_bench_json,
)

__all__ = [
    "BenchComparison",
    "BenchRun",
    "comparisons_to_payload",
    "measure_jobs_scaling",
    "measure_multistart",
    "render_bench_table",
    "render_multistart_table",
    "render_scaling_table",
    "run_engine",
    "run_suite",
    "write_bench_json",
]

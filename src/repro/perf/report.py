"""Rendering of benchmark comparisons: text table and JSON artifact.

The JSON payload is the schema of the committed ``BENCH_*.json``
artifacts — one file per optimisation PR, so the perf trajectory of the
codebase is recorded in-tree next to the code that produced it.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Iterable

from repro.perf.harness import BenchComparison

__all__ = [
    "comparisons_to_payload",
    "render_bench_table",
    "write_bench_json",
]


def comparisons_to_payload(
    comparisons: Iterable[BenchComparison],
    label: str,
    quick: bool = False,
) -> dict:
    """Machine-readable bench result (the ``BENCH_*.json`` schema)."""
    comparisons = list(comparisons)
    rows = []
    for comparison in comparisons:
        rows.append(
            {
                "benchmark": comparison.benchmark,
                "seed": comparison.reference.seed,
                "repeats": comparison.reference.repeats,
                "reference": _run_payload(comparison.reference),
                "incremental": _run_payload(comparison.incremental),
                "place_speedup": round(comparison.place_speedup, 3),
                "total_speedup": round(comparison.total_speedup, 3),
                "energies_match": comparison.energies_match,
            }
        )
    return {
        "label": label,
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": rows,
        "max_place_speedup": (
            round(max(c.place_speedup for c in comparisons), 3)
            if comparisons
            else None
        ),
        "all_energies_match": all(c.energies_match for c in comparisons),
    }


def _run_payload(run) -> dict:
    return {
        "engine": run.engine,
        "placement_energy": run.placement_energy,
        "place_s": round(run.place_time, 6),
        "route_s": round(run.route_time, 6),
        "total_s": round(run.total_time, 6),
    }


def write_bench_json(path: Path, payload: dict) -> None:
    """Write the payload as stable, diff-friendly JSON."""
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def render_bench_table(comparisons: Iterable[BenchComparison]) -> str:
    """Aligned before/after comparison table, one row per benchmark."""
    header = (
        f"{'Benchmark':12s} {'ref place':>10s} {'inc place':>10s} "
        f"{'speedup':>8s} {'ref total':>10s} {'inc total':>10s} "
        f"{'speedup':>8s}  {'energy':s}"
    )
    lines = [header, "-" * len(header)]
    for c in comparisons:
        energy = "match" if c.energies_match else "MISMATCH"
        lines.append(
            f"{c.benchmark:12s} "
            f"{c.reference.place_time:9.3f}s {c.incremental.place_time:9.3f}s "
            f"{c.place_speedup:7.2f}x "
            f"{c.reference.total_time:9.3f}s {c.incremental.total_time:9.3f}s "
            f"{c.total_speedup:7.2f}x  {energy}"
        )
    return "\n".join(lines)

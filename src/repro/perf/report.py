"""Rendering of benchmark comparisons: text table and JSON artifact.

The JSON payload is the schema of the committed ``BENCH_*.json``
artifacts — one file per optimisation PR, so the perf trajectory of the
codebase is recorded in-tree next to the code that produced it.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Iterable

from repro.perf.harness import BenchComparison, RouteBenchComparison

__all__ = [
    "comparisons_to_payload",
    "portfolio_rows_to_payload",
    "route_comparisons_to_payload",
    "render_bench_table",
    "render_multistart_table",
    "render_portfolio_table",
    "render_route_table",
    "render_scaling_table",
    "render_throughput_table",
    "write_bench_json",
]


def comparisons_to_payload(
    comparisons: Iterable[BenchComparison],
    label: str,
    quick: bool = False,
    jobs: int = 1,
    jobs_scaling: list[dict] | None = None,
    multistart: list[dict] | None = None,
    placement_throughput: list[dict] | None = None,
) -> dict:
    """Machine-readable bench result (the ``BENCH_*.json`` schema).

    *jobs_scaling* and *multistart* attach the optional parallel-layer
    sections (see :func:`repro.perf.harness.measure_jobs_scaling` and
    :func:`~repro.perf.harness.measure_multistart`); *jobs* records the
    worker count the engine comparison itself ran under;
    *placement_throughput* attaches the raw SA moves/sec section (see
    :func:`~repro.perf.harness.measure_placement_throughput`).
    """
    comparisons = list(comparisons)
    rows = []
    for comparison in comparisons:
        rows.append(
            {
                "benchmark": comparison.benchmark,
                "seed": comparison.reference.seed,
                "repeats": comparison.reference.repeats,
                "statistic": "median",
                "reference": _run_payload(comparison.reference),
                "incremental": _run_payload(comparison.incremental),
                "place_speedup": round(comparison.place_speedup, 3),
                "total_speedup": round(comparison.total_speedup, 3),
                "energies_match": comparison.energies_match,
            }
        )
    payload = {
        "label": label,
        "quick": quick,
        "jobs": jobs,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "benchmarks": rows,
        "max_place_speedup": (
            round(max(c.place_speedup for c in comparisons), 3)
            if comparisons
            else None
        ),
        "all_energies_match": all(c.energies_match for c in comparisons),
    }
    if jobs_scaling is not None:
        payload["jobs_scaling"] = jobs_scaling
    if multistart is not None:
        payload["multistart"] = multistart
        payload["multistart_non_degraded"] = all(
            row["non_degraded"] for row in multistart
        )
    _attach_throughput(payload, placement_throughput)
    return payload


def _attach_throughput(
    payload: dict, placement_throughput: list[dict] | None
) -> None:
    """Attach the ``--throughput`` section and its summary keys."""
    if placement_throughput is None:
        return
    payload["placement_throughput"] = placement_throughput
    payload["batch_never_worse"] = all(
        row["batch_never_worse"] for row in placement_throughput
    )
    ratios = [
        row["batch_vs_reference"]
        for row in placement_throughput
        if row.get("batch_vs_reference")
    ]
    payload["max_batch_vs_reference"] = max(ratios) if ratios else None


def route_comparisons_to_payload(
    comparisons: Iterable[RouteBenchComparison],
    label: str,
    quick: bool = False,
    jobs: int = 1,
    placement_throughput: list[dict] | None = None,
) -> dict:
    """Machine-readable routing-engine bench result.

    Same artifact family as :func:`comparisons_to_payload`, but the
    paired engines are the routing ones (reference vs the fast engine,
    recorded per row as ``fast_engine``) and the parity column is the
    path digest instead of the placement energy.  The fast run stays
    under the ``flat`` key for schema continuity with the earlier
    route-tier artifacts.
    """
    comparisons = list(comparisons)
    rows = []
    for comparison in comparisons:
        rows.append(
            {
                "benchmark": comparison.benchmark,
                "seed": comparison.reference.seed,
                "repeats": comparison.reference.repeats,
                "statistic": "median",
                "fast_engine": comparison.flat.route_engine,
                "reference": _route_run_payload(comparison.reference),
                "flat": _route_run_payload(comparison.flat),
                "route_speedup": round(comparison.route_speedup, 3),
                "total_speedup": round(comparison.total_speedup, 3),
                "paths_match": comparison.paths_match,
            }
        )
    speedups = sorted(c.route_speedup for c in comparisons)
    payload = {
        "label": label,
        "kind": "route_engine",
        "quick": quick,
        "jobs": jobs,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "benchmarks": rows,
        "median_route_speedup": (
            round(speedups[len(speedups) // 2], 3) if speedups else None
        ),
        "max_route_speedup": (
            round(speedups[-1], 3) if speedups else None
        ),
        "all_paths_match": all(c.paths_match for c in comparisons),
    }
    _attach_throughput(payload, placement_throughput)
    return payload


def portfolio_rows_to_payload(
    rows: list[dict],
    label: str,
    quick: bool = False,
) -> dict:
    """Machine-readable portfolio-racing bench result.

    Same artifact family as :func:`comparisons_to_payload`, but the
    paired solvers are the successive-halving portfolio race and the
    equal-candidate-budget multi-start
    (see :func:`repro.perf.harness.measure_portfolio`).  The summary
    keys are the CI gates: every row must beat multi-start on
    energy-per-CPU-second, be bit-identical across ``--jobs`` levels,
    and pass the strict design-rule checker.
    """
    return {
        "label": label,
        "kind": "portfolio",
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "benchmarks": rows,
        "all_portfolio_better": all(r["portfolio_better"] for r in rows),
        "all_deterministic_across_jobs": all(
            r["deterministic_across_jobs"] for r in rows
        ),
        "all_checker_clean": all(
            r["checker_clean"] is not False for r in rows
        ),
        "min_efficiency_ratio": (
            min(
                (r["efficiency_ratio"] for r in rows
                 if r["efficiency_ratio"] is not None),
                default=None,
            )
        ),
    }


def render_portfolio_table(rows: Iterable[dict]) -> str:
    """Portfolio race vs equal-budget multi-start, one row per benchmark.

    ``e/cpu-s`` is the improvement over the shared random initial
    energy divided by CPU seconds (``time.process_time`` summed over
    workers plus the shared greedy-init construction); the verdict
    asserts the race side is strictly more efficient, deterministic
    across job counts, and — when audited — checker-clean.
    """
    header = (
        f"{'Benchmark':12s} {'race E':>10s} {'multi E':>10s} "
        f"{'race cpu':>9s} {'multi cpu':>10s} {'race e/cpu':>11s} "
        f"{'multi e/cpu':>12s} {'ratio':>6s}  {'winner':14s} {'verdict':s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        p, m = row["portfolio"], row["multistart"]
        ok = (
            row["portfolio_better"]
            and row["deterministic_across_jobs"]
            and row["checker_clean"] is not False
        )
        ratio = row["efficiency_ratio"]
        lines.append(
            f"{row['benchmark']:12s} "
            f"{p['energy']:>10.1f} {m['energy']:>10.1f} "
            f"{p['cpu_seconds']:>8.3f}s {m['cpu_seconds']:>9.3f}s "
            f"{p['efficiency']:>11.1f} {m['efficiency']:>12.1f} "
            f"{(f'{ratio:.2f}x' if ratio is not None else '-'):>6s}  "
            f"{p['winner_spec']:14s} {'ok' if ok else 'FAIL'}"
        )
    return "\n".join(lines)


def _route_run_payload(run) -> dict:
    payload = {
        "route_engine": run.route_engine,
        "route_s": round(run.route_time, 6),
        "total_s": round(run.total_time, 6),
        "paths_digest": run.paths_digest,
        "postponed_tasks": run.postponed_tasks,
        "postponement_total_s": round(run.postponement_total, 6),
    }
    if run.total_min is not None and run.total_max is not None:
        payload["total_min_s"] = round(run.total_min, 6)
        payload["total_max_s"] = round(run.total_max, 6)
    if run.phase_min:
        payload["route_min_s"] = round(run.phase_min.get("route", 0.0), 6)
        payload["route_max_s"] = round(run.phase_max.get("route", 0.0), 6)
    if run.violations is not None:
        payload["violations"] = run.violations
    if run.route_search_seconds is not None:
        payload["route_search_seconds"] = run.route_search_seconds
    return payload


def _run_payload(run) -> dict:
    payload = {
        "engine": run.engine,
        "placement_energy": run.placement_energy,
        "place_s": round(run.place_time, 6),
        "route_s": round(run.route_time, 6),
        "total_s": round(run.total_time, 6),
    }
    if run.total_min is not None and run.total_max is not None:
        payload["total_min_s"] = round(run.total_min, 6)
        payload["total_max_s"] = round(run.total_max, 6)
    if run.phase_min:
        payload["place_min_s"] = round(run.phase_min.get("place", 0.0), 6)
        payload["place_max_s"] = round(run.phase_max.get("place", 0.0), 6)
    if run.violations is not None:
        payload["violations"] = run.violations
    if run.route_search_seconds is not None:
        payload["route_search_seconds"] = run.route_search_seconds
    if run.moves_per_second is not None:
        payload["moves_proposed"] = run.moves_proposed
        payload["moves_accepted"] = run.moves_accepted
        payload["moves_per_second"] = round(run.moves_per_second, 1)
    return payload


def write_bench_json(path: Path, payload: dict) -> None:
    """Write the payload as stable, diff-friendly JSON."""
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def render_scaling_table(rows: Iterable[dict]) -> str:
    """Wall-clock per ``--jobs`` level (see ``measure_jobs_scaling``)."""
    rows = list(rows)
    header = f"{'jobs':>4s} {'wall (s)':>10s} {'speedup':>8s}"
    lines = [header, "-" * len(header)]
    for row in rows:
        speedup = row.get("speedup_vs_serial")
        lines.append(
            f"{row['jobs']:>4d} {row['wall_s']:>9.3f}s "
            f"{(f'{speedup:.2f}x' if speedup else '-'):>8s}"
        )
    if rows:
        lines.append(f"(host cpu_count = {rows[0].get('cpu_count')})")
    return "\n".join(lines)


def render_multistart_table(rows: Iterable[dict]) -> str:
    """Single-run vs best-of-restarts energy per benchmark."""
    header = (
        f"{'Benchmark':12s} {'restarts':>8s} {'single E':>10s} "
        f"{'best-of-N E':>11s} {'impr %':>7s}  {'verdict':s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        verdict = "ok" if row["non_degraded"] else "DEGRADED"
        lines.append(
            f"{row['benchmark']:12s} {row['restarts']:>8d} "
            f"{row['single_energy']:>10.4f} {row['multistart_energy']:>11.4f} "
            f"{row['improvement_pct']:>7.2f}  {verdict}"
        )
    return "\n".join(lines)


def render_route_table(comparisons: Iterable[RouteBenchComparison]) -> str:
    """Routing-engine comparison table, one row per benchmark.

    The ``paths`` column asserts byte-identical routing (digest
    equality); ``postponed`` shows how many tasks the router had to
    slide, identical on both sides by the parity guarantee; ``p99``
    is the fast engine's per-search A* latency (the
    ``astar.search_seconds`` histogram), shown when recorded.
    """
    comparisons = list(comparisons)
    with_latency = any(
        c.flat.route_search_seconds is not None for c in comparisons
    )
    fast = comparisons[0].flat.route_engine if comparisons else "flat"
    header = (
        f"{'Benchmark':12s} {'ref route':>10s} {fast + ' route':>12s} "
        f"{'speedup':>8s} {'ref total':>10s} {fast + ' total':>12s} "
        f"{'speedup':>8s}  {'paths':5s}  {'postponed':>9s}"
    )
    if with_latency:
        header += f"  {'p99 search':>11s}"
    lines = [header, "-" * len(header)]
    for c in comparisons:
        paths = "match" if c.paths_match else "DIFF!"
        line = (
            f"{c.benchmark:12s} "
            f"{c.reference.route_time:9.3f}s {c.flat.route_time:11.3f}s "
            f"{c.route_speedup:7.2f}x "
            f"{c.reference.total_time:9.3f}s {c.flat.total_time:11.3f}s "
            f"{c.total_speedup:7.2f}x  {paths:5s}  "
            f"{c.flat.postponed_tasks:>9d}"
        )
        if with_latency:
            summary = c.flat.route_search_seconds
            p99 = summary.get("p99") if summary else None
            line += (
                f"  {p99 * 1e3:>9.3f}ms" if p99 is not None else f"  {'-':>11s}"
            )
        lines.append(line)
    return "\n".join(lines)


def render_throughput_table(rows: Iterable[dict]) -> str:
    """Raw SA placement throughput per engine, one row per benchmark.

    Rows come from
    :func:`repro.perf.harness.measure_placement_throughput`: moves/sec
    is legal candidate moves evaluated per second of annealing
    wall-clock, ``batch xN`` names the batch engine's candidates per
    step, and the verdict asserts the batch energy never landed above
    the serial engines' shared energy.
    """
    rows = list(rows)
    batch_label = (
        f"batch x{rows[0]['batch_size']} mv/s" if rows else "batch mv/s"
    )
    header = (
        f"{'Benchmark':12s} {'ref mv/s':>10s} {'inc mv/s':>10s} "
        f"{batch_label:>16s} {'vs ref':>7s} {'batch E':>10s}  {'verdict':s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        engines = row["engines"]
        ratio = row.get("batch_vs_reference")
        verdict = "ok" if row["batch_never_worse"] else "DEGRADED"
        lines.append(
            f"{row['benchmark']:12s} "
            f"{engines['reference']['moves_per_second']:>10.0f} "
            f"{engines['incremental']['moves_per_second']:>10.0f} "
            f"{engines['batch']['moves_per_second']:>16.0f} "
            f"{(f'{ratio:.1f}x' if ratio else '-'):>7s} "
            f"{engines['batch']['energy']:>10.3f}  {verdict}"
        )
    return "\n".join(lines)


def render_bench_table(comparisons: Iterable[BenchComparison]) -> str:
    """Aligned before/after comparison table, one row per benchmark.

    A ``viol`` column (design-rule violations found by ``repro.check``)
    is appended when the suite ran with the checker enabled.
    """
    comparisons = list(comparisons)
    with_check = any(
        c.reference.violations is not None
        or c.incremental.violations is not None
        for c in comparisons
    )
    header = (
        f"{'Benchmark':12s} {'ref place':>10s} {'inc place':>10s} "
        f"{'speedup':>8s} {'ref total':>10s} {'inc total':>10s} "
        f"{'speedup':>8s}  {'energy':s}"
    )
    if with_check:
        header += f"  {'viol':>4s}"
    lines = [header, "-" * len(header)]
    for c in comparisons:
        energy = "match" if c.energies_match else "MISMATCH"
        line = (
            f"{c.benchmark:12s} "
            f"{c.reference.place_time:9.3f}s {c.incremental.place_time:9.3f}s "
            f"{c.place_speedup:7.2f}x "
            f"{c.reference.total_time:9.3f}s {c.incremental.total_time:9.3f}s "
            f"{c.total_speedup:7.2f}x  {energy}"
        )
        if with_check:
            counts = {c.reference.violations, c.incremental.violations}
            counts.discard(None)
            shown = "-" if not counts else str(max(counts))
            line += f"  {shown:>4s}"
        lines.append(line)
    return "\n".join(lines)

"""Shared timed execution of the three-stage synthesis flow.

Both end-to-end flows — the proposed one (:mod:`repro.core.synthesizer`)
and the baseline (:mod:`repro.core.baseline`) — run the same skeleton:
schedule, place, route, derive metrics.  :func:`execute_flow` is that
skeleton with instrumentation built in: each stage runs inside an
:class:`~repro.obs.Instrumentation` span, the per-phase wall-clock
durations land in ``SynthesisResult.phase_times``, and the reported
``cpu_time`` is the single root-span measurement (the former
copy-pasted ``perf_counter`` blocks of the two flows both route through
here).

``cpu_time`` is read at the end of the root span, after the metrics
phase, so ``sum(phase_times.values()) <= cpu_time`` always holds — the
guard the test-suite asserts.

Under the parallel execution layer (:mod:`repro.parallel`) the place
stage may fan restarts out to worker processes; the ``place`` span —
and hence ``phase_times["place"]`` — then measures the parent's
wall-clock across dispatch *and* reduction, which is the end-to-end
figure users experience, while the workers' own CPU shows up in the
merged SA counters rather than the span tree.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.core.metrics import compute_metrics
from repro.core.problem import SynthesisProblem
from repro.core.solution import SynthesisResult
from repro.obs.instrument import Instrumentation
from repro.place.placement import Placement
from repro.route.router import RoutingResult
from repro.schedule.schedule import Schedule

__all__ = ["execute_flow"]

#: Stage callables supplied by each flow.  Every stage receives the
#: instrumentation so it can forward it into its algorithm kernel.
ScheduleStage = Callable[[SynthesisProblem, Instrumentation], Schedule]
PlaceStage = Callable[[SynthesisProblem, Schedule, Instrumentation], Placement]
RouteStage = Callable[
    [SynthesisProblem, Schedule, Placement, Instrumentation], RoutingResult
]


def execute_flow(
    problem: SynthesisProblem,
    algorithm: str,
    schedule_stage: ScheduleStage,
    place_stage: PlaceStage,
    route_stage: RouteStage,
    instrumentation: Instrumentation | None = None,
) -> SynthesisResult:
    """Run schedule → place → route → metrics under phase spans.

    Parameters
    ----------
    problem:
        The prepared synthesis problem.
    algorithm:
        Tag recorded on the result (``"ours"`` / ``"baseline"``).
    schedule_stage, place_stage, route_stage:
        The flow-specific stage implementations.
    instrumentation:
        Optional shared instrumentation; ``None`` builds a private one
        with the zero-overhead :class:`~repro.obs.NullSink` so phase
        times are measured either way.
    """
    instr = instrumentation if instrumentation is not None else Instrumentation()
    phase_times: dict[str, float] = {}

    def finish_phase(name: str, timer) -> None:
        # Phase durations feed both the result's phase_times and the
        # phase.* histograms (the ledger's per-phase distribution).
        duration = timer.duration or 0.0
        phase_times[name] = duration
        instr.observe(f"phase.{name}_seconds", duration)

    with instr.span("synthesize") as flow:
        with instr.span("schedule") as timer:
            schedule = schedule_stage(problem, instr)
        finish_phase("schedule", timer)
        with instr.span("place") as timer:
            placement = place_stage(problem, schedule, instr)
        finish_phase("place", timer)
        with instr.span("route") as timer:
            routing = route_stage(problem, schedule, placement, instr)
        finish_phase("route", timer)
        with instr.span("metrics") as timer:
            metrics = compute_metrics(schedule, routing, instrumentation=instr)
        finish_phase("metrics", timer)
        check_report = None
        if problem.parameters.check != "off":
            # Imported here so that ``check off`` runs never pay for the
            # checker modules (the NullSink-overhead guarantee).
            from repro.check import check_result

            with instr.span("check") as timer:
                check_report = check_result(
                    SynthesisResult(
                        problem=problem,
                        algorithm=algorithm,
                        schedule=schedule,
                        placement=placement,
                        routing=routing,
                        metrics=metrics,
                    )
                )
            finish_phase("check", timer)
            instr.count("check.violations", check_report.error_count)
        cpu_time = flow.elapsed()
    result = SynthesisResult(
        problem=problem,
        algorithm=algorithm,
        schedule=schedule,
        placement=placement,
        routing=routing,
        metrics=replace(metrics, cpu_time=cpu_time),
        phase_times=phase_times,
        check_report=check_report,
    )
    if (
        check_report is not None
        and not check_report.ok
        and problem.parameters.check == "strict"
    ):
        from repro.errors import CheckError

        raise CheckError(
            f"strict check failed for {problem.assay.name!r} "
            f"[{algorithm}]: {check_report.error_count} violation(s)\n"
            + check_report.render(),
            report=check_report,
        )
    return result

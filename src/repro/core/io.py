"""Solution (de)serialisation: archive a synthesis run as JSON.

A :class:`~repro.core.solution.SynthesisResult` holds live objects;
:func:`result_to_dict` flattens it into a versioned JSON document with
everything a downstream tool (or a reviewer) needs: the assay, the
binding and timing, the placement, every routed path, and the metrics.
:func:`load_solution` reads the document back into a lightweight
:class:`SolutionRecord` for inspection and comparison — it does not
rebuild live scheduler/router state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.assay.io import assay_from_dict, assay_to_dict
from repro.core.solution import SynthesisResult
from repro.errors import ValidationError

__all__ = ["result_to_dict", "dump_solution", "SolutionRecord", "load_solution"]

_FORMAT = "repro-solution"
_VERSION = 1


def result_to_dict(result: SynthesisResult) -> dict[str, Any]:
    """Flatten *result* into a JSON-compatible document."""
    schedule = result.schedule
    placement = result.placement
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "algorithm": result.algorithm,
        "assay": assay_to_dict(schedule.assay),
        "allocation": list(result.problem.allocation.as_tuple()),
        "transport_time": schedule.transport_time,
        "grid": {
            "width": placement.grid.width,
            "height": placement.grid.height,
            "pitch_mm": placement.grid.pitch_mm,
        },
        "operations": [
            {
                "id": record.op_id,
                "component": record.component_id,
                "start": record.start,
                "end": record.end,
            }
            for record in sorted(
                schedule.operations.values(), key=lambda r: (r.start, r.op_id)
            )
        ],
        "movements": [
            {
                "producer": m.producer,
                "consumer": m.consumer,
                "src": m.src_component,
                "dst": m.dst_component,
                "depart": m.depart,
                "arrive": m.arrive,
                "consume": m.consume,
                "in_place": m.in_place,
                "evicted": m.evicted,
            }
            for m in schedule.movements
        ],
        "placement": [
            {
                "component": block.cid,
                "x": block.x,
                "y": block.y,
                "width": block.width,
                "height": block.height,
            }
            for block in placement.blocks()
        ],
        "routes": [
            {
                "task": path.task.task_id,
                "producer": path.task.producer,
                "consumer": path.task.consumer,
                "cells": [[c.x, c.y] for c in path.cells],
                "slot": [path.slot.start, path.slot.end],
                "postponement": path.postponement,
            }
            for path in result.routing.paths
        ],
        "metrics": result.metrics.as_dict(),
    }


def dump_solution(result: SynthesisResult, path: str | Path) -> None:
    """Write the flattened solution document to *path*."""
    Path(path).write_text(
        json.dumps(result_to_dict(result), indent=2) + "\n", encoding="utf-8"
    )


@dataclass(frozen=True)
class SolutionRecord:
    """Read-back view of an archived solution."""

    algorithm: str
    assay_name: str
    operation_count: int
    binding: dict[str, str]
    makespan: float
    metrics: dict[str, float]
    placement: dict[str, tuple[int, int, int, int]]
    route_count: int

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SolutionRecord":
        if data.get("format") != _FORMAT:
            raise ValidationError(
                f"not a {_FORMAT} document (format={data.get('format')!r})"
            )
        if data.get("version") != _VERSION:
            raise ValidationError(f"unsupported version: {data.get('version')!r}")
        assay = assay_from_dict(data["assay"])
        operations = data["operations"]
        return cls(
            algorithm=data["algorithm"],
            assay_name=assay.name,
            operation_count=len(assay),
            binding={op["id"]: op["component"] for op in operations},
            makespan=max((op["end"] for op in operations), default=0.0),
            metrics=dict(data["metrics"]),
            placement={
                entry["component"]: (
                    entry["x"], entry["y"], entry["width"], entry["height"]
                )
                for entry in data["placement"]
            },
            route_count=len(data["routes"]),
        )


def load_solution(path: str | Path) -> SolutionRecord:
    """Read an archived solution written by :func:`dump_solution`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return SolutionRecord.from_dict(data)

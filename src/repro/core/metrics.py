"""Evaluation metrics (Table I columns, Fig. 8, Fig. 9).

All metrics are derived from the three synthesis artefacts (schedule,
placement, routing) so both algorithms are measured by *identical* code:

* **execution time** — makespan of the schedule after routing delays are
  retimed through it;
* **resource utilisation** — Eq. 1 over the allocated components;
* **total channel length** — distinct cells used by any routed path ×
  grid pitch (shared segments count once);
* **total cache time** — Σ channel-cache durations of all fluid
  movements (Fig. 8);
* **total channel wash time** — replaying each cell's usage history: a
  wash of the previous residue is charged whenever a *different* fluid
  reuses the cell, plus one final cleanup wash per dirty cell (Fig. 9).
  Routing the same fluid repeatedly through a shared channel therefore
  washes once — the sharing benefit the conflict-aware router exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.instrument import Instrumentation
from repro.route.router import RoutingResult
from repro.schedule.retiming import retime_with_delays
from repro.schedule.schedule import Schedule
from repro.units import Millimetres, Seconds

__all__ = ["SynthesisMetrics", "compute_metrics", "channel_wash_time", "improvement"]


@dataclass(frozen=True)
class SynthesisMetrics:
    """The paper's per-benchmark evaluation numbers."""

    execution_time: Seconds
    resource_utilisation: float
    total_channel_length_mm: Millimetres
    total_cache_time: Seconds
    total_channel_wash_time: Seconds
    total_component_wash_time: Seconds
    transport_count: int
    total_postponement: Seconds
    cpu_time: Seconds = 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary for report writers."""
        return {
            "execution_time_s": self.execution_time,
            "resource_utilisation": self.resource_utilisation,
            "total_channel_length_mm": self.total_channel_length_mm,
            "total_cache_time_s": self.total_cache_time,
            "total_channel_wash_time_s": self.total_channel_wash_time,
            "total_component_wash_time_s": self.total_component_wash_time,
            "transport_count": float(self.transport_count),
            "total_postponement_s": self.total_postponement,
            "cpu_time_s": self.cpu_time,
        }


def channel_wash_time(
    routing: RoutingResult,
    instrumentation: Instrumentation | None = None,
) -> Seconds:
    """Fig. 9 metric: total wash time charged on flow channels.

    For every cell, usage events are replayed in slot order; consecutive
    uses by different fluids charge the earlier fluid's wash, and the
    final residue of each used cell charges one cleanup wash.

    *instrumentation* receives a ``wash.events`` counter (one per wash
    charged) and a ``wash.total_time`` gauge.
    """
    assert routing.grid is not None
    total = 0.0
    washes = 0
    for _cell, events in routing.grid.usage_history().items():
        ordered = sorted(events, key=lambda e: (e.slot.start, e.task_id))
        for earlier, later in zip(ordered, ordered[1:]):
            if earlier.fluid.name != later.fluid.name:
                total += earlier.fluid.wash_time
                washes += 1
        total += ordered[-1].fluid.wash_time
        washes += 1
    if instrumentation is not None:
        instrumentation.count("wash.events", washes)
        instrumentation.gauge("wash.total_time", total)
    return total


def compute_metrics(
    schedule: Schedule,
    routing: RoutingResult,
    cpu_time: Seconds = 0.0,
    instrumentation: Instrumentation | None = None,
) -> SynthesisMetrics:
    """Derive all evaluation metrics for one synthesis run.

    Routing postponements (if any) are propagated through the schedule
    with :func:`~repro.schedule.retiming.retime_with_delays` before the
    makespan is read — the reported execution time is therefore the
    *realised* one, not the optimistic planned one.
    """
    delays = routing.postponements()
    realised = retime_with_delays(schedule, delays) if delays else schedule
    return SynthesisMetrics(
        execution_time=realised.makespan,
        resource_utilisation=realised.resource_utilisation(),
        total_channel_length_mm=routing.total_length_mm(),
        total_cache_time=schedule.total_cache_time(),
        total_channel_wash_time=channel_wash_time(routing, instrumentation),
        total_component_wash_time=schedule.total_component_wash_time(),
        transport_count=schedule.transport_count(),
        total_postponement=routing.total_postponement,
        cpu_time=cpu_time,
    )


def improvement(ours: float, baseline: float) -> float:
    """Relative improvement of *ours* over *baseline*, in percent.

    Matches Table I's ``Imp (%)`` convention: positive when ours is
    smaller (execution time, channel length).  For utilisation the paper
    reports the increase, so callers flip the operands.
    """
    if baseline == 0:
        return 0.0
    return (baseline - ours) / baseline * 100.0

"""Allocation exploration: how many components does an assay need?

The paper takes the component allocation as *given* (Table I's column
3).  Upstream of that sits architectural synthesis (Minhass et al. [6],
the paper's reference for the top-down flow): choosing the allocation
itself.  This module implements a marginal-gain exploration over the
allocation space using the DCSA scheduler as the evaluation engine:

* start from the minimal feasible allocation (one component per
  operation type the assay uses);
* repeatedly add the single component whose addition shrinks the
  schedule makespan the most (ties prefer cheaper components — smaller
  footprint area);
* stop when no addition helps or the component budget is exhausted.

The full trajectory is returned, and :func:`pareto_front` filters it to
the non-dominated (total components, makespan) points a designer would
actually choose from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.assay.graph import OperationType, SequencingGraph
from repro.components.allocation import Allocation
from repro.components.library import DEFAULT_LIBRARY, ComponentLibrary
from repro.errors import AllocationError
from repro.schedule.list_scheduler import schedule_assay
from repro.units import Seconds

__all__ = ["AllocationPoint", "ExplorationResult", "explore_allocations", "pareto_front"]


@dataclass(frozen=True)
class AllocationPoint:
    """One evaluated allocation."""

    allocation: Allocation
    makespan: Seconds
    utilisation: float

    @property
    def total_components(self) -> int:
        return self.allocation.total


@dataclass(frozen=True)
class ExplorationResult:
    """The greedy exploration trajectory (first point = minimal)."""

    assay_name: str
    trajectory: tuple[AllocationPoint, ...]

    @property
    def best(self) -> AllocationPoint:
        """The fastest allocation found (ties: fewer components)."""
        return min(
            self.trajectory,
            key=lambda p: (p.makespan, p.total_components),
        )

    def knee(self, tolerance: float = 0.05) -> AllocationPoint:
        """The smallest allocation within *tolerance* of the best
        makespan — usually the allocation a designer should pick."""
        target = self.best.makespan * (1.0 + tolerance)
        candidates = [p for p in self.trajectory if p.makespan <= target]
        return min(candidates, key=lambda p: (p.total_components, p.makespan))


def _minimal_allocation(assay: SequencingGraph) -> Allocation:
    counts = assay.count_by_type()
    kwargs = {
        "mixers": 1 if counts[OperationType.MIX] else 0,
        "heaters": 1 if counts[OperationType.HEAT] else 0,
        "filters": 1 if counts[OperationType.FILTER] else 0,
        "detectors": 1 if counts[OperationType.DETECT] else 0,
    }
    if not any(kwargs.values()):
        raise AllocationError("assay uses no known operation type")
    return Allocation(**kwargs)


def _increment(allocation: Allocation, op_type: OperationType) -> Allocation:
    counts = dict(
        mixers=allocation.mixers,
        heaters=allocation.heaters,
        filters=allocation.filters,
        detectors=allocation.detectors,
    )
    key = {
        OperationType.MIX: "mixers",
        OperationType.HEAT: "heaters",
        OperationType.FILTER: "filters",
        OperationType.DETECT: "detectors",
    }[op_type]
    counts[key] += 1
    return Allocation(**counts)


def _evaluate(
    assay: SequencingGraph,
    allocation: Allocation,
    transport_time: Seconds,
) -> AllocationPoint:
    schedule = schedule_assay(assay, allocation, transport_time)
    return AllocationPoint(
        allocation=allocation,
        makespan=schedule.makespan,
        utilisation=schedule.resource_utilisation(),
    )


def explore_allocations(
    assay: SequencingGraph,
    max_components: int = 16,
    transport_time: Seconds = 2.0,
    library: ComponentLibrary = DEFAULT_LIBRARY,
) -> ExplorationResult:
    """Greedy marginal-gain exploration of the allocation space.

    Each step evaluates one extra component of every used type (via a
    full DCSA scheduling run) and keeps the one with the largest
    makespan reduction; exploration stops when nothing improves or the
    *max_components* budget is reached.
    """
    used_types = [t for t in OperationType if assay.count_by_type()[t] > 0]
    current = _minimal_allocation(assay)
    trajectory = [_evaluate(assay, current, transport_time)]
    while trajectory[-1].total_components < max_components:
        candidates = []
        for op_type in used_types:
            grown = _increment(current, op_type)
            point = _evaluate(assay, grown, transport_time)
            area = library.spec(op_type).area
            candidates.append((point.makespan, area, op_type.value, point))
        candidates.sort()
        best_makespan, _area, _name, best_point = candidates[0]
        if best_makespan >= trajectory[-1].makespan - 1e-9:
            break
        current = best_point.allocation
        trajectory.append(best_point)
    return ExplorationResult(
        assay_name=assay.name, trajectory=tuple(trajectory)
    )


def pareto_front(result: ExplorationResult) -> tuple[AllocationPoint, ...]:
    """Non-dominated (total components, makespan) points, cheap first."""
    points = sorted(
        result.trajectory, key=lambda p: (p.total_components, p.makespan)
    )
    front: list[AllocationPoint] = []
    best_makespan = float("inf")
    for point in points:
        if point.makespan < best_makespan - 1e-9:
            front.append(point)
            best_makespan = point.makespan
    return tuple(front)

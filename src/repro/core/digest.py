"""Content addressing of synthesis problems.

The storage-aware synthesis flow is deterministic for a fixed
``(assay, allocation, parameters)`` triple, which makes its inputs
perfectly *content-addressable*: two problems with equal digests are
guaranteed to synthesize bit-identically, so a digest can stand in for
"the same run" everywhere — the run ledger groups records by it for
regression baselines (:mod:`repro.obs.ledger`), and the synthesis
service (:mod:`repro.serve`) uses it as the key of its result cache so
identical submissions are served from cache instead of re-synthesized.

The digest is SHA-256 over the canonical JSON (sorted keys, compact
separators) of the assay document, the allocation tuple, the grid, and
every synthesis parameter except those in
:data:`DIGEST_EXCLUDED_PARAMETERS` — currently only ``jobs``, because
parallelism redistributes the same deterministic work without changing
any answer and must therefore not split otherwise-identical runs into
different digests.

This module is the single home of that definition.  It originally
lived in :mod:`repro.obs.ledger`, which still re-exports
:func:`problem_digest` for backwards compatibility; the byte-level
canonicalisation is pinned by tests so digests written by older
ledgers stay comparable forever.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields as dataclass_fields
from typing import Any

__all__ = [
    "DIGEST_EXCLUDED_PARAMETERS",
    "canonical_json",
    "problem_document",
    "problem_digest",
    "text_digest",
]

#: Parameters excluded from the digest: ``jobs`` only redistributes the
#: same deterministic work across processes.
DIGEST_EXCLUDED_PARAMETERS = frozenset({"jobs"})


def canonical_json(document: Any) -> str:
    """The one true serialisation digests are computed over.

    Sorted keys and compact separators make the text a pure function of
    the document's value; round-tripping through :func:`json.loads` and
    back reproduces it byte for byte (floats serialise via ``repr``,
    which round-trips exactly).
    """
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def text_digest(text: str | bytes) -> str:
    """SHA-256 hex digest of a string (UTF-8) or byte string."""
    if isinstance(text, str):
        text = text.encode("utf-8")
    return hashlib.sha256(text).hexdigest()


def problem_document(problem: Any) -> dict[str, Any]:
    """The canonical JSON-compatible document a problem digests to."""
    from repro.assay.io import assay_to_dict

    # Every parameter field is a scalar, so plain attribute access
    # serialises identically to ``dataclasses.asdict`` without its
    # per-field deepcopy (which dominated the service accept path).
    parameters = {
        f.name: getattr(problem.parameters, f.name)
        for f in dataclass_fields(problem.parameters)
        if f.name not in DIGEST_EXCLUDED_PARAMETERS
    }
    grid = problem.grid
    return {
        "assay": assay_to_dict(problem.assay),
        "allocation": list(problem.allocation.as_tuple()),
        "parameters": parameters,
        "grid": None if grid is None else [grid.width, grid.height, grid.pitch_mm],
    }


def problem_digest(problem: Any) -> str:
    """SHA-256 content address of (assay, allocation, parameters-jobs).

    Two problems share a digest exactly when the pipeline is guaranteed
    to produce bit-identical results for them, so ledger records and
    cached service results with equal digests are directly
    interchangeable.
    """
    return text_digest(canonical_json(problem_document(problem)))

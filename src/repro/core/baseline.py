"""The baseline algorithm (BA) end-to-end flow (Section V).

BA composes the naive counterpart of every stage:

1. **Binding & scheduling** — earliest-ready binding, FIFO dispatch;
2. **Placement** — deterministic construction-by-correction (shelf
   packing + pairwise-swap wirelength correction, unit net priorities);
3. **Routing** — plain shortest paths corrected by postponing
   conflicting tasks.

Routing postponements feed back into the reported execution time via
:func:`~repro.schedule.retiming.retime_with_delays` (inside
:func:`~repro.core.metrics.compute_metrics`), which is precisely the
degradation mechanism the paper describes for BA in Section II-C.2.
"""

from __future__ import annotations

import time

from repro.assay.graph import SequencingGraph
from repro.components.allocation import Allocation
from repro.core.metrics import compute_metrics
from repro.core.problem import SynthesisParameters, SynthesisProblem
from repro.core.solution import SynthesisResult
from repro.place.greedy import greedy_placement
from repro.route.baseline_router import route_tasks_baseline
from repro.schedule.baseline_scheduler import schedule_assay_baseline
from repro.schedule.validate import validate_schedule

__all__ = ["synthesize_baseline", "synthesize_problem_baseline"]


def synthesize_problem_baseline(problem: SynthesisProblem) -> SynthesisResult:
    """Run the baseline flow on a prepared problem."""
    params = problem.parameters
    started = time.perf_counter()

    schedule = schedule_assay_baseline(
        problem.assay, problem.allocation, params.transport_time
    )
    validate_schedule(schedule)

    tasks = schedule.transport_tasks()
    nets = sorted(
        {
            (min(t.src_component, t.dst_component), max(t.src_component, t.dst_component))
            for t in tasks
            if t.src_component != t.dst_component
        }
    )
    placement = greedy_placement(problem.resolved_grid(), problem.footprints(), nets)

    routing = route_tasks_baseline(placement, tasks)

    cpu_time = time.perf_counter() - started
    metrics = compute_metrics(schedule, routing, cpu_time=cpu_time)
    return SynthesisResult(
        problem=problem,
        algorithm="baseline",
        schedule=schedule,
        placement=placement,
        routing=routing,
        metrics=metrics,
    )


def synthesize_baseline(
    assay: SequencingGraph,
    allocation: Allocation,
    parameters: SynthesisParameters | None = None,
) -> SynthesisResult:
    """Convenience wrapper: build the problem and run the baseline flow."""
    params = parameters or SynthesisParameters()
    problem = SynthesisProblem(
        assay=assay, allocation=allocation, parameters=params
    )
    return synthesize_problem_baseline(problem)

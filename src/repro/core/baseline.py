"""The baseline algorithm (BA) end-to-end flow (Section V).

BA composes the naive counterpart of every stage:

1. **Binding & scheduling** — earliest-ready binding, FIFO dispatch;
2. **Placement** — deterministic construction-by-correction (shelf
   packing + pairwise-swap wirelength correction, unit net priorities);
3. **Routing** — plain shortest paths corrected by postponing
   conflicting tasks.

Routing postponements feed back into the reported execution time via
:func:`~repro.schedule.retiming.retime_with_delays` (inside
:func:`~repro.core.metrics.compute_metrics`), which is precisely the
degradation mechanism the paper describes for BA in Section II-C.2.

Timing and telemetry run through the same
:func:`~repro.core.pipeline.execute_flow` driver as the proposed flow,
so ``--profile`` / ``--trace`` and ``phase_times`` work identically for
both algorithms.
"""

from __future__ import annotations

from repro.assay.graph import SequencingGraph
from repro.components.allocation import Allocation
from repro.core.pipeline import execute_flow
from repro.core.problem import SynthesisParameters, SynthesisProblem
from repro.core.solution import SynthesisResult
from repro.obs.instrument import Instrumentation
from repro.place.greedy import greedy_placement
from repro.route.baseline_router import route_tasks_baseline
from repro.schedule.baseline_scheduler import schedule_assay_baseline
from repro.schedule.validate import validate_schedule

__all__ = ["synthesize_baseline", "synthesize_problem_baseline"]


def synthesize_problem_baseline(
    problem: SynthesisProblem,
    instrumentation: Instrumentation | None = None,
) -> SynthesisResult:
    """Run the baseline flow on a prepared problem."""
    params = problem.parameters

    def schedule_stage(problem: SynthesisProblem, instr: Instrumentation):
        schedule = schedule_assay_baseline(
            problem.assay,
            problem.allocation,
            params.transport_time,
            instrumentation=instr,
        )
        validate_schedule(schedule)
        return schedule

    def place_stage(problem, schedule, instr: Instrumentation):
        tasks = schedule.transport_tasks()
        nets = sorted(
            {
                (min(t.src_component, t.dst_component), max(t.src_component, t.dst_component))
                for t in tasks
                if t.src_component != t.dst_component
            }
        )
        return greedy_placement(problem.resolved_grid(), problem.footprints(), nets)

    def route_stage(problem, schedule, placement, instr: Instrumentation):
        return route_tasks_baseline(
            placement,
            schedule.transport_tasks(),
            instrumentation=instr,
            engine=params.route_engine,
        )

    return execute_flow(
        problem,
        "baseline",
        schedule_stage,
        place_stage,
        route_stage,
        instrumentation=instrumentation,
    )


def synthesize_baseline(
    assay: SequencingGraph,
    allocation: Allocation,
    parameters: SynthesisParameters | None = None,
    instrumentation: Instrumentation | None = None,
) -> SynthesisResult:
    """Convenience wrapper: build the problem and run the baseline flow."""
    params = parameters or SynthesisParameters()
    problem = SynthesisProblem(
        assay=assay, allocation=allocation, parameters=params
    )
    return synthesize_problem_baseline(problem, instrumentation=instrumentation)

"""The proposed top-down synthesis flow (Section IV).

:func:`synthesize` chains the three stages of the paper's algorithm:

1. **Binding & scheduling** — Algorithm 1 (priority list scheduling with
   the Case I / Case II DCSA binding strategy);
2. **Placement** — simulated annealing under the Eq. 3 / Eq. 4 energy,
   optionally as deterministic multi-start across a process pool
   (``SynthesisParameters.restarts`` / ``jobs``, see
   :mod:`repro.parallel`) or as a successive-halving portfolio race of
   heterogeneous anneal configurations (``portfolio`` / ``arms`` /
   ``rungs``, see :mod:`repro.parallel.portfolio`);
3. **Routing** — transportation-conflict-aware A* with cell weights and
   occupation time slots.

The returned :class:`~repro.core.solution.SynthesisResult` carries the
Table I metrics, including the wall-clock CPU time of the run and a
per-phase time breakdown.  Stage timing and the optional event stream
run through the shared driver in :mod:`repro.core.pipeline`; pass an
:class:`~repro.obs.Instrumentation` to capture SA convergence traces,
A* expansion counters, and the rest of the pipeline telemetry.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace

from repro.assay.graph import SequencingGraph
from repro.components.allocation import Allocation
from repro.core.pipeline import execute_flow
from repro.core.problem import SynthesisParameters, SynthesisProblem
from repro.core.solution import SynthesisResult
from repro.obs.instrument import Instrumentation
from repro.parallel.multistart import anneal_multistart
from repro.place.energy import build_connection_priorities
from repro.route.router import route_tasks
from repro.schedule.list_scheduler import schedule_assay
from repro.schedule.validate import validate_schedule

__all__ = ["synthesize", "synthesize_problem"]


def synthesize_problem(
    problem: SynthesisProblem,
    instrumentation: Instrumentation | None = None,
) -> SynthesisResult:
    """Run the full proposed flow on a prepared problem."""
    params = problem.parameters
    # Filled by place_stage when portfolio racing is on; attached to
    # the result after the pipeline driver returns (the driver builds
    # the frozen SynthesisResult itself).
    race_summary: dict[str, dict] = {}

    def schedule_stage(problem: SynthesisProblem, instr: Instrumentation):
        schedule = schedule_assay(
            problem.assay,
            problem.allocation,
            params.transport_time,
            instrumentation=instr,
        )
        validate_schedule(schedule)
        return schedule

    def place_stage(problem, schedule, instr: Instrumentation):
        priorities = build_connection_priorities(
            schedule, beta=params.beta, gamma=params.gamma
        )
        if params.portfolio or params.arms:
            from repro.parallel.portfolio import race_portfolio, resolve_arms

            raced = race_portfolio(
                problem.resolved_grid(),
                problem.footprints(),
                priorities,
                resolve_arms(
                    params.portfolio,
                    params.arms,
                    params.seed,
                    params.seed_derivation,
                ),
                parameters=params.annealing(),
                rungs=params.rungs,
                jobs=params.jobs,
                instrumentation=instr,
            )
            race_summary["portfolio"] = raced.summary
            return raced.result.placement
        annealed = anneal_multistart(
            problem.resolved_grid(),
            problem.footprints(),
            priorities,
            parameters=params.annealing(),
            base_seed=params.seed,
            restarts=params.restarts,
            jobs=params.jobs,
            engine=params.placement_engine,
            instrumentation=instr,
            seed_derivation=params.seed_derivation,
        )
        return annealed.placement

    def route_stage(problem, schedule, placement, instr: Instrumentation):
        return route_tasks(
            placement,
            schedule.transport_tasks(),
            initial_weight=params.initial_cell_weight,
            instrumentation=instr,
            engine=params.route_engine,
        )

    result = execute_flow(
        problem,
        "ours",
        schedule_stage,
        place_stage,
        route_stage,
        instrumentation=instrumentation,
    )
    if "portfolio" in race_summary:
        result = dataclass_replace(result, portfolio=race_summary["portfolio"])
    return result


def synthesize(
    assay: SequencingGraph,
    allocation: Allocation,
    parameters: SynthesisParameters | None = None,
    seed: int | None = None,
    instrumentation: Instrumentation | None = None,
) -> SynthesisResult:
    """Convenience wrapper: build the problem and run the proposed flow.

    Parameters
    ----------
    assay, allocation:
        The *Given* of the problem formulation.
    parameters:
        Flow parameters; ``None`` selects the paper's defaults.
    seed:
        Shorthand to override only the annealer seed of *parameters*.
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation` receiving spans,
        counters, and convergence events; ``None`` keeps the
        zero-overhead default (phase times are still measured).
    """
    params = parameters or SynthesisParameters()
    if seed is not None:
        params = SynthesisParameters(
            **{**params.__dict__, "seed": seed}
        )
    problem = SynthesisProblem(
        assay=assay, allocation=allocation, parameters=params
    )
    return synthesize_problem(problem, instrumentation=instrumentation)

"""Problem definition and synthesis parameters (Section III).

:class:`SynthesisParameters` gathers every knob of the flow with the
paper's published defaults (Section V): ``α=0.9, β=0.6, γ=0.4,
T0=10000, Imax=150, Tmin=1.0, t_c=2.0, w_e=10``.
:class:`SynthesisProblem` is the *Given* triple — assay, component
allocation, and library — bundled with those parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.assay.graph import SequencingGraph
from repro.assay.validation import check_assay
from repro.check.report import CHECK_MODES
from repro.components.allocation import Allocation
from repro.components.library import DEFAULT_LIBRARY, ComponentLibrary
from repro.errors import ValidationError
from repro.place.annealing import PLACEMENT_ENGINES, AnnealingParameters
from repro.place.grid import DEFAULT_PITCH_MM, ChipGrid, auto_grid
from repro.route.router import DEFAULT_ROUTE_ENGINE, ROUTE_ENGINES
from repro.units import Millimetres, Seconds

__all__ = ["SynthesisParameters", "SynthesisProblem"]


@dataclass(frozen=True)
class SynthesisParameters:
    """All tunables of the synthesis flow (paper defaults)."""

    #: Constant inter-component transport time ``t_c`` (s).
    transport_time: Seconds = 2.0
    #: Eq. 4 weighting of task concurrency (β).
    beta: float = 0.6
    #: Eq. 4 weighting of residue wash time (γ).
    gamma: float = 0.4
    #: SA initial temperature ``T0``.
    initial_temperature: float = 10_000.0
    #: SA termination temperature ``Tmin``.
    min_temperature: float = 1.0
    #: SA cooling rate ``α``.
    cooling_rate: float = 0.9
    #: SA iterations per temperature ``Imax``.
    iterations_per_temperature: int = 150
    #: Initial routing-cell weight ``w_e``.
    initial_cell_weight: float = 10.0
    #: Physical pitch of one grid cell (mm).
    cell_pitch_mm: Millimetres = DEFAULT_PITCH_MM
    #: Component area / chip area bound used when auto-sizing the grid.
    grid_fill_ratio: float = 0.25
    #: RNG seed for the annealer.
    seed: int = 0
    #: SA engine: ``"incremental"`` (delta-energy workspace),
    #: ``"batch"`` (numpy best-of-K kernel, see
    #: :mod:`repro.place.batch`), or ``"reference"`` (immutable
    #: full-recompute oracle).  Incremental and reference yield
    #: identical seeded results; batch matches them bit for bit at
    #: ``sa_batch_size=1`` and explores K candidates per step above it.
    placement_engine: str = "incremental"
    #: Candidates proposed per SA step by the batch placement engine
    #: (ignored by the other engines).  ``1`` degenerates to the
    #: incremental engine's exact move loop.
    sa_batch_size: int = 16
    #: Routing engine: ``"flat"`` (integer-indexed arrays, see
    #: :mod:`repro.route.flat`), ``"flat2"`` (vectorized kernels, see
    #: :mod:`repro.route.flat2`), or ``"reference"`` (the Cell/dict
    #: oracle).  All yield byte-identical paths, slot plans, and
    #: metrics; the choice only affects runtime.
    route_engine: str = DEFAULT_ROUTE_ENGINE
    #: Independent SA restarts; the best placement wins under the
    #: ``(energy, derived seed)`` total order.  Restart 0 keeps the base
    #: seed, restart ``k`` uses ``seed*1000+k``, so ``restarts=1`` is
    #: exactly the single-anneal pipeline and best-of-N energy is never
    #: worse than the single run.
    restarts: int = 1
    #: Restart-seed derivation: ``"legacy"`` is the original
    #: ``seed*1000+k`` formula (kept as the default for bit-parity;
    #: collides across nearby base seeds), ``"splitmix"`` the
    #: collision-free SplitMix64 mix (see
    #: :func:`repro.parallel.multistart.derive_seed`).  Portfolio arms
    #: derive their seeds through the same scheme.
    seed_derivation: str = "legacy"
    #: Worker processes for fanning restarts out
    #: (:mod:`repro.parallel`); the result is bit-identical for every
    #: value.  ``1`` runs inline, ``0`` means one worker per CPU.
    jobs: int = 1
    #: Portfolio racing (:mod:`repro.parallel.portfolio`): ``0`` keeps
    #: plain multi-start; ``N >= 1`` races ``N`` heterogeneous arms
    #: under successive halving instead of running ``restarts``
    #: identical anneals (``restarts`` is then ignored).
    portfolio: int = 0
    #: Explicit arm-spec string (``engine[:key=value]*``, comma
    #: separated — see :func:`repro.parallel.portfolio.parse_arms`);
    #: empty cycles the default palette.  Implies portfolio mode.
    arms: str = ""
    #: Successive-halving checkpoint rungs for portfolio racing.
    rungs: int = 3
    #: Independent design-rule audit of the finished result
    #: (:mod:`repro.check`): ``"off"`` skips it entirely, ``"report"``
    #: attaches the :class:`~repro.check.report.CheckReport` to the
    #: result, ``"strict"`` additionally raises
    #: :class:`~repro.errors.CheckError` on any violation.
    check: str = "off"

    def __post_init__(self) -> None:
        if self.transport_time < 0:
            raise ValidationError("transport time must be non-negative")
        if self.beta < 0 or self.gamma < 0:
            raise ValidationError("Eq. 4 weights must be non-negative")
        if self.initial_cell_weight < 0:
            raise ValidationError("initial cell weight must be non-negative")
        if self.placement_engine not in PLACEMENT_ENGINES:
            raise ValidationError(
                f"unknown placement engine {self.placement_engine!r}; "
                f"expected one of {PLACEMENT_ENGINES}"
            )
        if self.sa_batch_size < 1:
            raise ValidationError(
                f"sa_batch_size must be >= 1, got {self.sa_batch_size}"
            )
        if self.route_engine not in ROUTE_ENGINES:
            raise ValidationError(
                f"unknown route engine {self.route_engine!r}; "
                f"expected one of {ROUTE_ENGINES}"
            )
        if self.restarts < 1:
            raise ValidationError(
                f"restarts must be >= 1, got {self.restarts}"
            )
        if self.jobs < 0:
            raise ValidationError(
                f"jobs must be >= 1 (or 0 for one per CPU), got {self.jobs}"
            )
        if self.check not in CHECK_MODES:
            raise ValidationError(
                f"unknown check mode {self.check!r}; "
                f"expected one of {CHECK_MODES}"
            )
        # Lazy import: repro.parallel pulls in the pool machinery,
        # which problem construction should not pay for.
        from repro.parallel.multistart import SEED_DERIVATIONS

        if self.seed_derivation not in SEED_DERIVATIONS:
            raise ValidationError(
                f"unknown seed derivation {self.seed_derivation!r}; "
                f"expected one of {SEED_DERIVATIONS}"
            )
        if self.portfolio < 0:
            raise ValidationError(
                f"portfolio must be >= 0 (0 disables racing), "
                f"got {self.portfolio}"
            )
        if self.rungs < 1:
            raise ValidationError(f"rungs must be >= 1, got {self.rungs}")
        if self.arms or self.portfolio:
            # Parse eagerly so a bad arm grammar fails at configuration
            # time, not inside a pool worker mid-race.
            from repro.parallel.portfolio import resolve_arms

            resolve_arms(
                self.portfolio, self.arms, self.seed, self.seed_derivation
            )

    def annealing(self) -> AnnealingParameters:
        """The SA-stage subset of these parameters."""
        return AnnealingParameters(
            initial_temperature=self.initial_temperature,
            min_temperature=self.min_temperature,
            cooling_rate=self.cooling_rate,
            iterations_per_temperature=self.iterations_per_temperature,
            batch_size=self.sa_batch_size,
        )


@dataclass(frozen=True)
class SynthesisProblem:
    """The *Given* of the problem formulation, validated on construction."""

    assay: SequencingGraph
    allocation: Allocation
    library: ComponentLibrary = field(default=DEFAULT_LIBRARY)
    parameters: SynthesisParameters = field(default_factory=SynthesisParameters)
    grid: ChipGrid | None = None

    def __post_init__(self) -> None:
        check_assay(self.assay, self.allocation)

    def resolved_grid(self) -> ChipGrid:
        """The explicit grid, or one auto-sized for the allocation."""
        if self.grid is not None:
            return self.grid
        return auto_grid(
            self.allocation,
            self.library,
            pitch_mm=self.parameters.cell_pitch_mm,
            fill_ratio=self.parameters.grid_fill_ratio,
        )

    def footprints(self) -> dict[str, tuple[int, int]]:
        """``cid -> (width, height)`` for every allocated component."""
        return {
            cid: self.library.footprint(op_type)
            for cid, op_type in self.allocation.iter_components()
        }

"""Synthesis result container.

:class:`SynthesisResult` bundles the three artefacts of one end-to-end
run — schedule, placement, routing — with the derived metrics and a
human-readable summary.  Both the proposed flow and the baseline return
this same type, so experiment harnesses treat them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.check.report import CheckReport
from repro.core.metrics import SynthesisMetrics
from repro.core.problem import SynthesisProblem
from repro.place.placement import Placement
from repro.route.router import RoutingResult
from repro.schedule.schedule import Schedule

__all__ = ["SynthesisResult"]


@dataclass(frozen=True)
class SynthesisResult:
    """Everything produced by one synthesis run."""

    problem: SynthesisProblem
    algorithm: str
    schedule: Schedule
    placement: Placement
    routing: RoutingResult
    metrics: SynthesisMetrics
    #: Wall-clock seconds per pipeline phase (schedule / place / route /
    #: metrics).  Their sum never exceeds ``metrics.cpu_time``, which is
    #: measured around all of them by the shared pipeline driver.
    phase_times: dict[str, float] = field(default_factory=dict)
    #: Independent design-rule audit of this result, attached when the
    #: run's ``check`` mode is not ``"off"``.
    check_report: CheckReport | None = None
    #: Portfolio-race audit trail (winning arm, per-arm kills, CPU and
    #: efficiency — see :class:`repro.parallel.portfolio.PortfolioResult`),
    #: attached when the run raced a portfolio; ``None`` otherwise.
    portfolio: dict | None = None

    def summary(self) -> str:
        """Multi-line human-readable report of the run."""
        m = self.metrics
        lines = [
            f"benchmark      : {self.schedule.assay.name}",
            f"algorithm      : {self.algorithm}",
            f"operations     : {len(self.schedule.assay)}",
            f"components     : {self.problem.allocation}",
            f"grid           : {self.placement.grid.width}x"
            f"{self.placement.grid.height} cells @ "
            f"{self.placement.grid.pitch_mm:g} mm",
            f"execution time : {m.execution_time:.1f} s",
            f"utilisation    : {m.resource_utilisation * 100:.1f} %",
            f"channel length : {m.total_channel_length_mm:.0f} mm",
            f"cache time     : {m.total_cache_time:.1f} s",
            f"channel wash   : {m.total_channel_wash_time:.1f} s",
            f"transports     : {m.transport_count}",
            f"cpu time       : {m.cpu_time:.3f} s",
        ]
        if m.total_postponement > 0:
            lines.append(f"postponements  : {m.total_postponement:.1f} s")
        if self.portfolio is not None:
            lines.append(
                f"portfolio      : {self.portfolio['winner_spec']} won "
                f"({len(self.portfolio['arms'])} arms, "
                f"{self.portfolio['rungs']} rungs)"
            )
        if self.check_report is not None:
            verdict = (
                "clean"
                if self.check_report.ok
                else f"{self.check_report.error_count} violation(s)"
            )
            lines.append(f"check          : {verdict}")
        return "\n".join(lines)

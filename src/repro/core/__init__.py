"""End-to-end synthesis flows, problem definition, and metrics."""

from repro.core.baseline import synthesize_baseline, synthesize_problem_baseline
from repro.core.explore import (
    AllocationPoint,
    ExplorationResult,
    explore_allocations,
    pareto_front,
)
from repro.core.io import (
    SolutionRecord,
    dump_solution,
    load_solution,
    result_to_dict,
)
from repro.core.metrics import (
    SynthesisMetrics,
    channel_wash_time,
    compute_metrics,
    improvement,
)
from repro.core.problem import SynthesisParameters, SynthesisProblem
from repro.core.solution import SynthesisResult
from repro.core.synthesizer import synthesize, synthesize_problem

__all__ = [
    "AllocationPoint",
    "ExplorationResult",
    "SolutionRecord",
    "SynthesisMetrics",
    "SynthesisParameters",
    "SynthesisProblem",
    "SynthesisResult",
    "channel_wash_time",
    "compute_metrics",
    "dump_solution",
    "explore_allocations",
    "improvement",
    "load_solution",
    "pareto_front",
    "result_to_dict",
    "synthesize",
    "synthesize_baseline",
    "synthesize_problem",
    "synthesize_problem_baseline",
]

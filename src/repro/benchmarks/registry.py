"""Registry of all evaluation benchmarks (the rows of Table I).

:func:`get_benchmark` returns a :class:`BenchmarkCase` by name;
:func:`table1_benchmarks` yields the seven cases in the paper's row
order.  Benchmarks are constructed lazily and freshly on each call so
callers can never corrupt each other through shared mutable state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.assay.graph import SequencingGraph
from repro.benchmarks import library as real
from repro.benchmarks.synthetic import (
    SCALE_SPECS,
    SYNTHETIC_SPECS,
    synthetic_allocation,
    synthetic_assay,
)
from repro.components.allocation import Allocation
from repro.errors import AssayError

__all__ = [
    "BenchmarkCase",
    "get_benchmark",
    "benchmark_names",
    "table1_benchmarks",
    "scale_benchmarks",
]


@dataclass(frozen=True)
class BenchmarkCase:
    """One benchmark: an assay plus its Table I component allocation."""

    name: str
    assay: SequencingGraph
    allocation: Allocation

    @property
    def operation_count(self) -> int:
        """Table I column 2."""
        return len(self.assay)


_REAL: dict[str, tuple[Callable[[], SequencingGraph], Callable[[], Allocation]]] = {
    "PCR": (real.pcr_assay, real.pcr_allocation),
    "IVD": (real.ivd_assay, real.ivd_allocation),
    "CPA": (real.cpa_assay, real.cpa_allocation),
    "Fig2a": (real.fig2a_assay, real.fig2a_allocation),
}

#: Table I row order.
TABLE1_ORDER = (
    "PCR",
    "IVD",
    "CPA",
    "Synthetic1",
    "Synthetic2",
    "Synthetic3",
    "Synthetic4",
)

#: The scale tier, in size order (see
#: :data:`repro.benchmarks.synthetic.SCALE_SPECS`).
SCALE_ORDER = ("Scale50", "Scale100", "Scale200")


def benchmark_names() -> list[str]:
    """All registered benchmark names.

    Table I rows, the Fig. 2(a) example, and the scale tier.
    """
    return list(TABLE1_ORDER) + ["Fig2a"] + list(SCALE_ORDER)


def get_benchmark(name: str) -> BenchmarkCase:
    """Build the named benchmark afresh.

    Raises :class:`AssayError` for unknown names.
    """
    if name in _REAL:
        assay_factory, allocation_factory = _REAL[name]
        return BenchmarkCase(name, assay_factory(), allocation_factory())
    if name in SYNTHETIC_SPECS or name in SCALE_SPECS:
        return BenchmarkCase(name, synthetic_assay(name), synthetic_allocation(name))
    known = ", ".join(benchmark_names())
    raise AssayError(f"unknown benchmark {name!r} (known: {known})")


def table1_benchmarks() -> Iterator[BenchmarkCase]:
    """The seven Table I benchmarks, in row order."""
    for name in TABLE1_ORDER:
        yield get_benchmark(name)


def scale_benchmarks() -> Iterator[BenchmarkCase]:
    """The scale-tier benchmarks, in size order."""
    for name in SCALE_ORDER:
        yield get_benchmark(name)

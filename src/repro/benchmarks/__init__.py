"""Benchmark bioassays: the paper's three real-life and four synthetic cases."""

from repro.benchmarks.library import (
    cpa_allocation,
    cpa_assay,
    fig2a_allocation,
    fig2a_assay,
    ivd_allocation,
    ivd_assay,
    pcr_allocation,
    pcr_assay,
)
from repro.benchmarks.registry import (
    TABLE1_ORDER,
    BenchmarkCase,
    benchmark_names,
    get_benchmark,
    table1_benchmarks,
)
from repro.benchmarks.synthetic import (
    SYNTHETIC_SPECS,
    SyntheticSpec,
    generate_synthetic,
    synthetic_allocation,
    synthetic_assay,
)

__all__ = [
    "BenchmarkCase",
    "SYNTHETIC_SPECS",
    "SyntheticSpec",
    "TABLE1_ORDER",
    "benchmark_names",
    "cpa_allocation",
    "cpa_assay",
    "fig2a_allocation",
    "fig2a_assay",
    "generate_synthetic",
    "get_benchmark",
    "ivd_allocation",
    "ivd_assay",
    "pcr_allocation",
    "pcr_assay",
    "synthetic_allocation",
    "synthetic_assay",
    "table1_benchmarks",
]

"""Seeded synthetic benchmark generator (Synthetic1–4 of Table I).

The paper complements the three real-life assays with four synthetic
ones of 20/30/40/50 operations and mixed operation types.  Their exact
DAGs are not published, so we generate layered random DAGs with the same
operation counts and the same allocations, from fixed seeds — every run
of the library sees byte-identical benchmarks.

Generation model
----------------
* Operation types are sampled proportionally to the allocation (a chip
  with 6 mixers and 2 filters sees three times more mixing than
  filtering), except detections, which are placed last as sinks —
  detection is a terminal read-out in real assays.
* Non-detect operations are arranged in layers; each operation in layer
  ``i > 0`` draws its parents from earlier layers, respecting the
  physical fan-in limits (a mixer merges at most two fluids, everything
  else transforms one).
* Durations are small integers per type (mix 3–6 s, heat 2–4 s, filter
  3–5 s, detect 2–4 s), and diffusion coefficients are sampled
  log-uniformly over the paper's quoted range (5×10⁻⁸ … 10⁻⁵ cm²/s), so
  wash times span 0.2–6 s.
"""

from __future__ import annotations

import math
import random

from repro.assay.builder import AssayBuilder
from repro.assay.graph import OperationType, SequencingGraph
from repro.assay.validation import MAX_FAN_IN
from repro.components.allocation import Allocation
from repro.errors import AssayError

__all__ = [
    "SyntheticSpec",
    "generate_synthetic",
    "SYNTHETIC_SPECS",
    "SCALE_SPECS",
    "synthetic_assay",
    "synthetic_allocation",
]

_DURATION_RANGES = {
    OperationType.MIX: (3, 6),
    OperationType.HEAT: (2, 4),
    OperationType.FILTER: (3, 5),
    OperationType.DETECT: (2, 4),
}

_DIFFUSION_RANGE = (5e-8, 1e-5)


class SyntheticSpec:
    """Parameters of one synthetic benchmark."""

    def __init__(self, name: str, operations: int, allocation: Allocation, seed: int):
        if operations < 2:
            raise AssayError("synthetic benchmarks need at least 2 operations")
        self.name = name
        self.operations = operations
        self.allocation = allocation
        self.seed = seed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SyntheticSpec({self.name!r}, ops={self.operations}, "
            f"alloc={self.allocation}, seed={self.seed})"
        )


#: The four Table I synthetic benchmarks (sizes and allocations from the
#: paper; seeds fixed for reproducibility).
SYNTHETIC_SPECS: dict[str, SyntheticSpec] = {
    "Synthetic1": SyntheticSpec("Synthetic1", 20, Allocation(3, 3, 2, 1), seed=11),
    "Synthetic2": SyntheticSpec("Synthetic2", 30, Allocation(5, 2, 2, 2), seed=202),
    "Synthetic3": SyntheticSpec("Synthetic3", 40, Allocation(6, 4, 4, 2), seed=23),
    "Synthetic4": SyntheticSpec("Synthetic4", 50, Allocation(7, 4, 4, 3), seed=404),
}

#: The scale tier: synthetic assays beyond Table I, used to benchmark
#: the routing engines where the routing phase dominates.  Allocations
#: grow roughly proportionally with the operation count (same generator
#: and determinism guarantees as the Table I specs).
SCALE_SPECS: dict[str, SyntheticSpec] = {
    "Scale50": SyntheticSpec("Scale50", 50, Allocation(7, 4, 4, 3), seed=505),
    "Scale100": SyntheticSpec("Scale100", 100, Allocation(10, 6, 5, 4), seed=1001),
    "Scale200": SyntheticSpec("Scale200", 200, Allocation(14, 8, 7, 5), seed=2002),
}


def _sample_diffusion(rng: random.Random) -> float:
    low, high = _DIFFUSION_RANGE
    log_low, log_high = math.log10(low), math.log10(high)
    return 10.0 ** rng.uniform(log_low, log_high)


def _sample_type(rng: random.Random, allocation: Allocation) -> OperationType:
    """Sample a non-detect operation type proportionally to the allocation."""
    weighted = [
        (op_type, allocation.count(op_type))
        for op_type in (OperationType.MIX, OperationType.HEAT, OperationType.FILTER)
        if allocation.count(op_type) > 0
    ]
    total = sum(weight for _, weight in weighted)
    pick = rng.uniform(0.0, total)
    cumulative = 0.0
    for op_type, weight in weighted:
        cumulative += weight
        if pick <= cumulative:
            return op_type
    return weighted[-1][0]  # pragma: no cover - float edge


def generate_synthetic(spec: SyntheticSpec) -> SequencingGraph:
    """Generate the layered random DAG for *spec* (deterministic)."""
    rng = random.Random(spec.seed)
    allocation = spec.allocation

    detect_count = 0
    if allocation.detectors > 0:
        # Roughly one in five operations is a terminal detection.
        detect_count = max(1, spec.operations // 5)
    body_count = spec.operations - detect_count
    if body_count < 1:
        raise AssayError("too few operations for the requested detections")

    builder = AssayBuilder(spec.name)

    # ------------------------------------------------------------------
    # Layered body (mix/heat/filter operations).
    # ------------------------------------------------------------------
    layer_count = max(2, round(math.sqrt(body_count)))
    layers: list[list[str]] = [[] for _ in range(layer_count)]
    # Guarantee at least one op per layer; distribute the rest randomly.
    assignments = list(range(layer_count)) + [
        rng.randrange(layer_count) for _ in range(body_count - layer_count)
    ]
    assignments.sort()

    fan_in_left: dict[str, int] = {}
    children_count: dict[str, int] = {}
    for index, layer in enumerate(assignments):
        op_id = f"s{index + 1}"
        op_type = _sample_type(rng, allocation)
        low, high = _DURATION_RANGES[op_type]
        builder.add(
            op_id,
            op_type,
            duration=rng.randint(low, high),
            diffusion_coefficient=_sample_diffusion(rng),
        )
        layers[layer].append(op_id)
        fan_in_left[op_id] = MAX_FAN_IN[op_type]
        children_count[op_id] = 0
        if layer > 0:
            pool = [op for earlier in layers[:layer] for op in earlier]
            want = min(fan_in_left[op_id], 1 + (rng.random() < 0.5))
            for parent in rng.sample(pool, k=min(want, len(pool))):
                builder.depends(parent, op_id)
                children_count[parent] += 1
                fan_in_left[op_id] -= 1

    # ------------------------------------------------------------------
    # Terminal detections, attached to childless body operations first so
    # every intermediate product is eventually observed.
    # ------------------------------------------------------------------
    body_ops = [op for layer in layers for op in layer]
    childless = [op for op in body_ops if children_count[op] == 0]
    rng.shuffle(childless)
    low, high = _DURATION_RANGES[OperationType.DETECT]
    for index in range(detect_count):
        det_id = f"d{index + 1}"
        if childless:
            parent = childless.pop()
        else:
            parent = rng.choice(body_ops)
        builder.detect(
            det_id,
            duration=rng.randint(low, high),
            after=[parent],
            diffusion_coefficient=_sample_diffusion(rng),
        )
        children_count[parent] += 1

    return builder.build()


def _spec(name: str) -> SyntheticSpec:
    spec = SYNTHETIC_SPECS.get(name) or SCALE_SPECS.get(name)
    if spec is None:
        known = ", ".join(sorted(SYNTHETIC_SPECS) + sorted(SCALE_SPECS))
        raise AssayError(f"unknown synthetic benchmark {name!r} (known: {known})")
    return spec


def synthetic_assay(name: str) -> SequencingGraph:
    """Generate a Table I synthetic or scale-tier assay by name."""
    return generate_synthetic(_spec(name))


def synthetic_allocation(name: str) -> Allocation:
    """Allocation of a Table I synthetic or scale-tier assay."""
    return _spec(name).allocation

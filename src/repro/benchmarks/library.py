"""Real-life benchmark bioassays (Section V).

The paper evaluates on three real-life applications taken from the
distributed-channel-storage work of Liu et al. [5] — **PCR**, **IVD**,
and **CPA** — plus four synthetic assays.  The authors' exact benchmark
files are not public, so the assays here are reconstructed from their
well-known structure in the biochip-CAD literature (see DESIGN.md §3):

* **PCR** — polymerase chain reaction sample preparation: a complete
  binary mixing tree (8 input reagents → 7 mixes), 7 operations,
  allocation (3,0,0,0) as in Table I.
* **IVD** — in-vitro diagnostics on 3 samples × 2 assays: 6 mixes each
  followed by a detection, 12 operations, allocation (3,0,0,2).
* **CPA** — colorimetric protein assay: a 4-level serial-dilution tree
  (15 mixes) fans out to 16 diluted samples, 8 reagent preparations feed
  16 assay mixes, each read by a detection — 55 operations, allocation
  (8,0,0,2).

Additionally, :func:`fig2a_assay` reconstructs the paper's running
example of Fig. 2(a): a 10-operation assay whose durations are chosen so
that (as in the text) the priority of ``o1`` along
``o1→o5→o7→o10→sink`` equals 21 for ``t_c = 2``, and whose wash times
follow Fig. 2(b) (``o1`` leaves a 10 s residue, ``o4`` a 2 s one).
"""

from __future__ import annotations

from repro.assay.builder import AssayBuilder
from repro.assay.graph import SequencingGraph
from repro.components.allocation import Allocation

__all__ = [
    "pcr_assay",
    "pcr_allocation",
    "ivd_assay",
    "ivd_allocation",
    "cpa_assay",
    "cpa_allocation",
    "fig2a_assay",
    "fig2a_allocation",
]


def pcr_assay() -> SequencingGraph:
    """The 7-operation PCR mixing tree."""
    builder = AssayBuilder("PCR")
    # Level 1: four reagent pair mixes.
    for index in range(1, 5):
        builder.mix(f"m{index}", duration=4, wash_time=2.0)
    # Level 2: combine pairwise; slightly harder-to-wash intermediates.
    builder.mix("m5", duration=5, after=["m1", "m2"], wash_time=4.0)
    builder.mix("m6", duration=5, after=["m3", "m4"], wash_time=4.0)
    # Level 3: the final master-mix, a slow-diffusing product.
    builder.mix("m7", duration=6, after=["m5", "m6"], wash_time=6.0)
    return builder.build()


def pcr_allocation() -> Allocation:
    """Table I allocation for PCR: (3,0,0,0)."""
    return Allocation(mixers=3)


def ivd_assay() -> SequencingGraph:
    """In-vitro diagnostics: 3 samples × 2 assays, mix then detect."""
    builder = AssayBuilder("IVD")
    wash_by_assay = {1: 2.0, 2: 3.0}  # assay 2's reagent diffuses slower
    for sample in range(1, 4):
        for assay_kind in range(1, 3):
            mix_id = f"mix_s{sample}a{assay_kind}"
            det_id = f"det_s{sample}a{assay_kind}"
            builder.mix(
                mix_id, duration=4, wash_time=wash_by_assay[assay_kind]
            )
            builder.detect(det_id, duration=4, after=[mix_id], wash_time=0.2)
    return builder.build()


def ivd_allocation() -> Allocation:
    """Table I allocation for IVD: (3,0,0,2)."""
    return Allocation(mixers=3, detectors=2)


def cpa_assay() -> SequencingGraph:
    """Colorimetric protein assay, 55 operations.

    Structure: a binary serial-dilution tree of depth 4 (15 mixes, the
    leaves' outputs each split two ways into 16 dilutions), 8 reagent
    preparations (each feeding two assay mixes), 16 assay mixes, and 16
    detections: ``15 + 8 + 16 + 16 = 55``.
    """
    builder = AssayBuilder("CPA")
    # Serial-dilution tree: dil1 is the root; dil2..dil15 by levels.
    # Protein dilutions diffuse slowly -> long washes deeper in the tree.
    wash_by_level = {0: 6.0, 1: 5.0, 2: 4.0, 3: 3.0}
    builder.mix("dil1", duration=5, wash_time=wash_by_level[0])
    node = 2
    parents_by_level = {0: ["dil1"]}
    for level in range(1, 4):
        parents_by_level[level] = []
        for parent in parents_by_level[level - 1]:
            for _ in range(2):
                op_id = f"dil{node}"
                builder.mix(
                    op_id,
                    duration=5,
                    after=[parent],
                    wash_time=wash_by_level[level],
                )
                parents_by_level[level].append(op_id)
                node += 1
    leaves = parents_by_level[3]  # 8 leaf mixes, each output splits in two
    # Reagent preparations: fast-diffusing dye buffer.
    for index in range(1, 9):
        builder.mix(f"rgt{index}", duration=3, wash_time=0.2)
    # Assay mixes and detections: 16 of each.
    for index in range(16):
        leaf = leaves[index // 2]
        reagent = f"rgt{index // 2 + 1}"
        assay_mix = f"asy{index + 1}"
        builder.mix(
            assay_mix, duration=4, after=[leaf, reagent], wash_time=2.0
        )
        builder.detect(
            f"det{index + 1}", duration=4, after=[assay_mix], wash_time=0.2
        )
    return builder.build()


def cpa_allocation() -> Allocation:
    """Table I allocation for CPA: (8,0,0,2)."""
    return Allocation(mixers=8, detectors=2)


def fig2a_assay() -> SequencingGraph:
    """The paper's running example (Fig. 2(a) with Fig. 2(b) wash times).

    Durations along ``o1→o5→o7→o10`` sum to 15, so with ``t_c = 2`` the
    priority of ``o1`` is ``15 + 3·2 = 21``, exactly the value the paper
    computes.  ``out(o1)`` carries the 10 s wash residue and ``out(o4)``
    the 2 s one used in the Fig. 3 walkthrough.
    """
    builder = AssayBuilder("Fig2a")
    builder.mix("o1", duration=4, wash_time=10.0)
    builder.mix("o2", duration=4, wash_time=2.0)
    builder.mix("o3", duration=4, wash_time=4.0)
    builder.mix("o4", duration=4, wash_time=2.0)
    builder.heat("o5", duration=3, after=["o1"], wash_time=2.0)
    builder.mix("o6", duration=5, after=["o3", "o4"], wash_time=6.0)
    builder.mix("o7", duration=5, after=["o2", "o5"], wash_time=2.0)
    builder.mix("o8", duration=4, after=["o6"], wash_time=4.0)
    builder.detect("o9", duration=3, after=["o8"], wash_time=0.2)
    builder.detect("o10", duration=3, after=["o7"], wash_time=0.2)
    return builder.build()


def fig2a_allocation() -> Allocation:
    """Components used in the Fig. 3 walkthrough: 3 mixers, a heater,
    and a detector."""
    return Allocation(mixers=3, heaters=1, detectors=1)

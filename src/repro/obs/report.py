"""Human-readable profile reports from an :class:`Instrumentation`.

Two table primitives — a per-phase time breakdown (tree-indented, with
percentages of total) and a counter/gauge summary — plus
:func:`render_report`, which combines them into the ``--profile``
output of the CLI.  Pure string formatting; no I/O.
"""

from __future__ import annotations

from typing import Mapping

from repro.obs.instrument import Instrumentation

__all__ = [
    "render_phase_table",
    "render_counter_table",
    "render_histogram_table",
    "render_report",
]


def _rule(title: str, width: int = 58) -> str:
    bar = "-" * max(2, width - len(title) - 4)
    return f"-- {title} {bar}"


def render_phase_table(
    phase_times: Mapping[str, float],
    total: float | None = None,
    title: str = "phase",
) -> str:
    """Flat one-level phase breakdown (e.g. ``SynthesisResult.phase_times``).

    *total* supplies the 100% reference (the run's CPU time); when
    omitted, the phases' own sum is used.
    """
    reference = total if total is not None else sum(phase_times.values())
    name_width = max([len(title), *(len(n) for n in phase_times)], default=len(title))
    lines = [f"{title:<{name_width}}   {'time (s)':>10}   {'%':>6}"]
    for name, seconds in phase_times.items():
        share = (seconds / reference * 100.0) if reference > 0 else 0.0
        lines.append(f"{name:<{name_width}}   {seconds:>10.4f}   {share:>6.1f}")
    if total is not None:
        lines.append(f"{'total (cpu)':<{name_width}}   {total:>10.4f}   {100.0:>6.1f}")
    return "\n".join(lines)


def render_counter_table(
    counters: Mapping[str, float], title: str = "counter"
) -> str:
    """Name/value table of counter totals (or last gauge values)."""
    if not counters:
        return f"(no {title}s recorded)"
    name_width = max(len(title), *(len(n) for n in counters))
    lines = [f"{title:<{name_width}}   {'value':>12}"]
    for name in sorted(counters):
        value = counters[name]
        rendered = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"{name:<{name_width}}   {rendered:>12}")
    return "\n".join(lines)


def render_histogram_table(
    summaries: Mapping[str, Mapping[str, object]],
    title: str = "histogram",
) -> str:
    """Percentile table of histogram summaries (``--profile`` section).

    *summaries* is the :meth:`Instrumentation.histogram_summaries`
    mapping: name → ``{"count", "mean", "p50", "p90", "p99", "max", …}``.
    """
    if not summaries:
        return f"(no {title}s recorded)"
    name_width = max(len(title), *(len(n) for n in summaries))
    columns = ("count", "mean", "p50", "p90", "p99", "max")
    header = f"{title:<{name_width}}   " + "   ".join(
        f"{c:>10}" for c in columns
    )
    lines = [header]
    for name in sorted(summaries):
        summary = summaries[name]
        cells = []
        for column in columns:
            value = summary.get(column)
            if value is None:
                cells.append(f"{'-':>10}")
            elif column == "count":
                cells.append(f"{int(value):>10}")
            else:
                cells.append(f"{float(value):>10.6f}")
        lines.append(f"{name:<{name_width}}   " + "   ".join(cells))
    return "\n".join(lines)


def _render_span_tree(instr: Instrumentation) -> str:
    totals = instr.span_totals()
    counts = instr.span_counts()
    if not totals:
        return "(no spans recorded)"
    roots_total = sum(t for path, t in totals.items() if len(path) == 1)
    label_width = max(
        len("phase"), *(len("  " * (len(path) - 1) + path[-1]) for path in totals)
    )
    lines = [f"{'phase':<{label_width}}   {'calls':>5}   {'time (s)':>10}   {'%':>6}"]
    for path, seconds in totals.items():
        label = "  " * (len(path) - 1) + path[-1]
        share = (seconds / roots_total * 100.0) if roots_total > 0 else 0.0
        lines.append(
            f"{label:<{label_width}}   {counts.get(path, 0):>5}   "
            f"{seconds:>10.4f}   {share:>6.1f}"
        )
    return "\n".join(lines)


def render_report(instr: Instrumentation) -> str:
    """Full profile: span tree, counter totals, last gauge values."""
    sections = [_rule("phase times"), _render_span_tree(instr)]
    counters = instr.counters
    if counters:
        sections += ["", _rule("counters"), render_counter_table(counters)]
    histograms = instr.histogram_summaries()
    if histograms:
        sections += ["", _rule("histograms (seconds)"),
                     render_histogram_table(histograms)]
    gauges = instr.gauges
    if gauges:
        sections += ["", _rule("gauges (last value)"),
                     render_counter_table(gauges, title="gauge")]
    return "\n".join(sections)

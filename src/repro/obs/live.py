"""Live multi-start progress: worker heartbeats over a queue.

When restarts fan out across a process pool, the parent is blind until
the pool drains — every worker's SA trajectory is invisible.  This
module gives each worker a tiny, throttled side-channel:

* :class:`HeartbeatRelay` is a :class:`~repro.obs.Sink` installed in
  the *worker*.  It watches the ordinary event stream — the annealer's
  ``sa.step`` convergence events and the router's ``route.task`` events
  — and forwards at most one :class:`Heartbeat` per ``interval``
  seconds onto a ``multiprocessing`` queue.  Sending is best-effort:
  a full or torn-down queue never crashes the computation.
* :class:`HeartbeatSpec` is the picklable recipe for a relay (queue
  proxy + worker index + seed + interval) that travels inside the pool
  payload and is built *inside* the worker.
* :class:`LiveProgressMonitor` runs in the parent: a consumer thread
  drains the queue, keeps the latest state per worker, renders a
  single refreshing progress line (``--live``), collects convergence
  checkpoints for the run ledger, and optionally republishes each
  heartbeat as a ``live.heartbeat`` point event into the parent's
  instrumentation so heartbeats land in ``--trace`` files too.

The monitor registers itself in a module-level slot
(:func:`active_monitor`) so :func:`repro.parallel.multistart.anneal_multistart`
can discover it without widening every signature between the CLI and
the pool; the slot is process-local and cleared on :meth:`~LiveProgressMonitor.stop`.

Heartbeats are *telemetry*, never inputs: results and merged profiles
stay bit-identical with the channel on or off.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import IO, Any, Mapping

from repro.obs.events import Event
from repro.obs.instrument import Instrumentation
from repro.obs.sinks import Sink

__all__ = [
    "Heartbeat",
    "HeartbeatRelay",
    "HeartbeatSpec",
    "LiveProgressMonitor",
    "active_monitor",
    "install_monitor",
]

#: Event names a relay translates into heartbeats.
_WATCHED_EVENTS = ("sa.step", "route.task")

#: Default minimum seconds between two heartbeats from one worker.
DEFAULT_HEARTBEAT_INTERVAL = 0.25

#: Cap on retained convergence checkpoints per worker (ledger payload).
MAX_CHECKPOINTS_PER_WORKER = 100


@dataclass(frozen=True)
class Heartbeat:
    """One progress sample from one worker (picklable queue payload).

    ``t`` is seconds since the worker's instrumentation epoch; ``kind``
    is ``"sa"`` (annealing progress), ``"route"`` (routing progress),
    or ``"done"`` (the relay closed — final state, never throttled).
    """

    worker: int
    seed: int
    kind: str
    t: float
    fields: Mapping[str, Any] = field(default_factory=dict)
    #: Optional display name for the row (e.g. a portfolio arm id such
    #: as ``a01:batch``); empty renders the plain ``w<worker>`` form.
    label: str = ""


class HeartbeatRelay(Sink):
    """Worker-side sink translating pipeline events into heartbeats.

    Watches ``sa.step`` and ``route.task`` point events, forwarding at
    most one heartbeat per *interval* seconds (per relay).  Designed to
    sit inside a :class:`~repro.obs.TeeSink` next to a recording or
    JSONL sink, or alone when only liveness is wanted.
    """

    def __init__(
        self,
        queue: Any,
        worker: int,
        seed: int,
        interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        clock: Any = time.monotonic,
        label: str = "",
    ) -> None:
        self.queue = queue
        self.worker = worker
        self.seed = seed
        self.label = label
        self.interval = interval
        self._clock = clock
        self._last_sent = -float("inf")
        self._last_state: Heartbeat | None = None
        self._routed = 0
        self.sent = 0

    def _send(self, beat: Heartbeat) -> None:
        try:
            self.queue.put_nowait(beat)
            self.sent += 1
        except Exception:
            # A full queue or a parent that already tore the manager
            # down must never take the worker's computation with it.
            pass

    def emit(self, event: Event) -> None:
        if event.kind != "point" or event.name not in _WATCHED_EVENTS:
            return
        if event.name == "sa.step":
            kind = "sa"
            fields = dict(event.fields)
        else:
            kind = "route"
            self._routed += 1
            fields = {"tasks_routed": self._routed, **event.fields}
        beat = Heartbeat(
            worker=self.worker,
            seed=self.seed,
            kind=kind,
            t=event.time,
            fields=fields,
            label=self.label,
        )
        self._last_state = beat
        now = self._clock()
        if now - self._last_sent >= self.interval:
            self._last_sent = now
            self._send(beat)

    def close(self) -> None:
        """Send the final (unthrottled) state as a ``done`` heartbeat."""
        last = self._last_state
        self._send(
            Heartbeat(
                worker=self.worker,
                seed=self.seed,
                kind="done",
                t=last.t if last is not None else 0.0,
                fields=dict(last.fields) if last is not None else {},
                label=self.label,
            )
        )


@dataclass(frozen=True)
class HeartbeatSpec:
    """Picklable recipe for a worker's :class:`HeartbeatRelay`.

    Travels inside the pool payload (the queue must be a picklable
    proxy, e.g. ``multiprocessing.Manager().Queue()``); the relay
    itself is built inside the worker via :meth:`build`.
    """

    queue: Any
    worker: int
    seed: int
    interval: float = DEFAULT_HEARTBEAT_INTERVAL
    label: str = ""

    def build(self) -> HeartbeatRelay:
        return HeartbeatRelay(
            self.queue, worker=self.worker, seed=self.seed,
            interval=self.interval, label=self.label,
        )


class LiveProgressMonitor:
    """Parent-side heartbeat consumer: progress line + ledger checkpoints.

    Parameters
    ----------
    stream:
        Text stream for the refreshing progress line (e.g.
        ``sys.stderr``); ``None`` disables rendering but still collects
        state and checkpoints.
    instrumentation:
        Optional parent instrumentation; every heartbeat is republished
        into it as a ``live.heartbeat`` point event (visible in
        ``--trace`` files).
    interval:
        Heartbeat throttle handed to every :meth:`spec_for` relay.
    queue:
        Injectable queue for tests / inline runs; ``None`` lazily
        creates a ``multiprocessing.Manager().Queue()`` on
        :meth:`start` (the proxy survives pickling into pool workers).
    """

    def __init__(
        self,
        stream: IO[str] | None = None,
        instrumentation: Instrumentation | None = None,
        interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        queue: Any = None,
    ) -> None:
        self.stream = stream
        self.instrumentation = instrumentation
        self.interval = interval
        self.queue = queue
        self.state: dict[int, Heartbeat] = {}
        self.received = 0
        self._checkpoints: dict[int, list[dict[str, Any]]] = {}
        self._manager: Any = None
        self._thread: threading.Thread | None = None
        self._rendered = False
        self._lock = threading.Lock()

    # -- channel wiring -------------------------------------------------
    def spec_for(self, worker: int, seed: int, label: str = "") -> HeartbeatSpec:
        """The picklable relay recipe for pool worker *worker*.

        *label* names the progress row (portfolio arms pass their arm
        id); empty keeps the classic ``w<worker>`` prefix.
        """
        if self.queue is None:
            raise RuntimeError("monitor not started: no heartbeat queue yet")
        return HeartbeatSpec(
            queue=self.queue, worker=worker, seed=seed,
            interval=self.interval, label=label,
        )

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "LiveProgressMonitor":
        if self._thread is not None:
            return self
        if self.queue is None:
            import multiprocessing

            self._manager = multiprocessing.Manager()
            self.queue = self._manager.Queue()
        self._thread = threading.Thread(
            target=self._consume, name="repro-live-progress", daemon=True
        )
        self._thread.start()
        install_monitor(self)
        return self

    def stop(self) -> None:
        """Drain the queue, stop the thread, release the manager."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        try:
            self.queue.put(None)  # sentinel
        except Exception:
            pass
        thread.join(timeout=5.0)
        if self._rendered and self.stream is not None:
            self.stream.write("\n")
            self.stream.flush()
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None
            self.queue = None
        install_monitor(None, expected=self)

    def __enter__(self) -> "LiveProgressMonitor":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- consumption ----------------------------------------------------
    def _consume(self) -> None:
        import queue as queue_module

        while True:
            try:
                beat = self.queue.get(timeout=0.2)
            except queue_module.Empty:
                continue
            except Exception:
                return  # queue torn down
            if beat is None:
                return
            if isinstance(beat, Heartbeat):
                self._handle(beat)

    def _handle(self, beat: Heartbeat) -> None:
        with self._lock:
            self.received += 1
            self.state[beat.worker] = beat
            points = self._checkpoints.setdefault(beat.worker, [])
            points.append(
                {
                    "worker": beat.worker,
                    "seed": beat.seed,
                    "kind": beat.kind,
                    "t": round(beat.t, 6),
                    **{
                        k: v
                        for k, v in beat.fields.items()
                        if isinstance(v, (int, float, str, bool))
                    },
                }
            )
            if len(points) > MAX_CHECKPOINTS_PER_WORKER:
                del points[: len(points) - MAX_CHECKPOINTS_PER_WORKER]
        if self.instrumentation is not None and self.instrumentation.active:
            self.instrumentation.event(
                "live.heartbeat",
                worker=beat.worker,
                seed=beat.seed,
                state=beat.kind,
                **dict(beat.fields),
            )
        self.render()

    # -- presentation / ledger ------------------------------------------
    def _describe(self, beat: Heartbeat) -> str:
        fields = beat.fields
        who = beat.label or f"w{beat.worker}"
        if beat.kind == "done":
            energy = fields.get("energy") or fields.get("best_energy")
            suffix = f" E={energy:.1f}" if isinstance(energy, (int, float)) else ""
            return f"{who} done{suffix}"
        if beat.kind == "sa":
            t = fields.get("temperature")
            e = fields.get("best_energy", fields.get("energy"))
            t_part = f" T={t:.3g}" if isinstance(t, (int, float)) else ""
            e_part = f" E={e:.1f}" if isinstance(e, (int, float)) else ""
            return f"{who} sa{t_part}{e_part}"
        routed = fields.get("tasks_routed")
        return f"{who} route n={routed}"

    def render(self) -> None:
        """Rewrite the single live progress line (if a stream is set)."""
        if self.stream is None:
            return
        with self._lock:
            parts = [
                self._describe(beat)
                for _, beat in sorted(self.state.items())
            ]
        line = "live: " + " | ".join(parts) if parts else "live: waiting…"
        self.stream.write("\r" + line.ljust(78))
        self.stream.flush()
        self._rendered = True

    def checkpoints(self) -> list[dict[str, Any]]:
        """All retained convergence checkpoints, worker-major (ledger form)."""
        with self._lock:
            return [
                dict(point)
                for worker in sorted(self._checkpoints)
                for point in self._checkpoints[worker]
            ]


# ----------------------------------------------------------------------
# Module-level channel registry
# ----------------------------------------------------------------------
_ACTIVE_MONITOR: LiveProgressMonitor | None = None


def install_monitor(
    monitor: LiveProgressMonitor | None,
    expected: LiveProgressMonitor | None = None,
) -> None:
    """Set (or clear) the process-wide live monitor slot.

    With *expected* given, the slot is only cleared when it still holds
    that monitor — so a stale ``stop()`` cannot evict a newer monitor.
    """
    global _ACTIVE_MONITOR
    if monitor is None and expected is not None and _ACTIVE_MONITOR is not expected:
        return
    _ACTIVE_MONITOR = monitor


def active_monitor() -> LiveProgressMonitor | None:
    """The currently installed live monitor, if any."""
    return _ACTIVE_MONITOR

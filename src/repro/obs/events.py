"""The structured event record shared by every sink.

One :class:`Event` is one observation: a span starting or ending, a
counter increment, a gauge sample, or a free-form point event.  Events
are immutable and JSON-serialisable; the schema is documented in
``docs/OBSERVABILITY.md`` and asserted by the round-trip tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Event", "EVENT_KINDS"]

#: The closed set of event kinds a sink may receive.
EVENT_KINDS = ("span_start", "span_end", "counter", "gauge", "histogram", "point")


@dataclass(frozen=True)
class Event:
    """One structured observation emitted by an :class:`Instrumentation`.

    Attributes
    ----------
    kind:
        One of :data:`EVENT_KINDS`.
    name:
        Span name, counter/gauge/histogram name, or point-event name.
    time:
        Seconds since the owning instrumentation's epoch (its creation).
    span_id:
        Id of the span this event belongs to — for ``span_start`` /
        ``span_end`` the span itself, otherwise the innermost open span
        (``None`` at top level).
    parent_id:
        Id of the enclosing span, if any.
    fields:
        Kind-specific payload (e.g. ``{"delta": 3, "total": 42}`` for a
        counter, or the keyword arguments of a point event).
    worker:
        Pool-worker index for events produced inside a worker process
        (``None`` in the main process).  Span ids are only unique *per
        worker* — every instrumentation numbers its spans from 1 — so
        ``(worker, span_id)`` is the namespaced id consumers must key
        on when reading a merged multi-worker trace; ``trace2chrome``
        maps each worker to its own Chrome-trace ``tid`` this way.
    """

    kind: str
    name: str
    time: float
    span_id: int | None = None
    parent_id: int | None = None
    fields: Mapping[str, Any] = field(default_factory=dict)
    worker: int | None = None

    def to_json(self) -> dict[str, Any]:
        """Flat, stable dictionary form used by :class:`JsonlSink`."""
        record: dict[str, Any] = {
            "kind": self.kind,
            "name": self.name,
            "t": self.time,
            "span": self.span_id,
            "parent": self.parent_id,
        }
        if self.worker is not None:
            record["worker"] = self.worker
        if self.fields:
            record["fields"] = dict(self.fields)
        return record

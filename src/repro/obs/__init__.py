"""Observability: structured tracing, phase timers, algorithm counters.

``repro.obs`` is the measurement substrate of the synthesis pipeline.
It is dependency-free (stdlib only) and imports nothing from the rest
of :mod:`repro`, so every stage — scheduler, placer, router, metrics —
can depend on it without cycles.

Three concepts:

* **Spans** — hierarchical phase timers (``synthesize > place``).
  Every pipeline entry point accepts an optional
  :class:`Instrumentation` and wraps its phases in spans; the per-phase
  wall-clock totals surface as ``SynthesisResult.phase_times``.
* **Counters / gauges** — algorithm statistics (A* nodes expanded, SA
  moves accepted per temperature, scheduler ready-queue depth, wash
  events, router conflict retries), aggregated in memory and optionally
  streamed as events.
* **Event sinks** — :class:`NullSink` (the zero-overhead default: no
  event objects are ever constructed), :class:`JsonlSink` (one JSON
  object per line, streamed to a file — the ``--trace`` flag), and
  :class:`RecordingSink` (in-memory capture for tests).

See ``docs/OBSERVABILITY.md`` for the event schema and usage.
"""

from repro.obs.events import Event
from repro.obs.instrument import Instrumentation, InstrumentationSnapshot, Span
from repro.obs.report import (
    render_counter_table,
    render_phase_table,
    render_report,
)
from repro.obs.sinks import JsonlSink, NullSink, RecordingSink, Sink

__all__ = [
    "Event",
    "Instrumentation",
    "InstrumentationSnapshot",
    "JsonlSink",
    "NullSink",
    "RecordingSink",
    "Sink",
    "Span",
    "render_counter_table",
    "render_phase_table",
    "render_report",
]

"""Observability: structured tracing, phase timers, algorithm counters.

``repro.obs`` is the measurement substrate of the synthesis pipeline.
It is dependency-free (stdlib only) and imports nothing from the rest
of :mod:`repro`, so every stage — scheduler, placer, router, metrics —
can depend on it without cycles.

Three concepts:

* **Spans** — hierarchical phase timers (``synthesize > place``).
  Every pipeline entry point accepts an optional
  :class:`Instrumentation` and wraps its phases in spans; the per-phase
  wall-clock totals surface as ``SynthesisResult.phase_times``.
* **Counters / gauges** — algorithm statistics (A* nodes expanded, SA
  moves accepted per temperature, scheduler ready-queue depth, wash
  events, router conflict retries), aggregated in memory and optionally
  streamed as events.
* **Event sinks** — :class:`NullSink` (the zero-overhead default: no
  event objects are ever constructed), :class:`JsonlSink` (one JSON
  object per line, streamed to a file — the ``--trace`` flag),
  :class:`RecordingSink` (in-memory capture for tests), and
  :class:`TeeSink` (fan-out to several sinks).

On top of the core sit the production-telemetry modules:

* **Histograms** (:mod:`repro.obs.histogram`) — log-bucket latency
  distributions with p50/p90/p99, recorded via
  :meth:`Instrumentation.observe` and merged across pool workers;
* **Resource sampling** (:mod:`repro.obs.resources`) — a background
  thread gauging RSS / CPU / GC into the event stream (``--profile``);
* **Run ledger** (:mod:`repro.obs.ledger`) — one JSONL record per
  pipeline run, content-addressed by problem digest, queried and
  regression-checked by ``python -m repro stats``;
* **Live progress** (:mod:`repro.obs.live`) — throttled worker
  heartbeats over a queue, rendered as a live per-worker line;
* **Trace export** (:mod:`repro.obs.export`) — ``--trace`` JSONL →
  Chrome trace-event JSON (``python -m repro trace2chrome``).

See ``docs/OBSERVABILITY.md`` for the event schema and usage.
"""

from repro.obs.events import Event
from repro.obs.histogram import Histogram, merge_all
from repro.obs.instrument import Instrumentation, InstrumentationSnapshot, Span
from repro.obs.report import (
    render_counter_table,
    render_histogram_table,
    render_phase_table,
    render_report,
)
from repro.obs.sinks import JsonlSink, NullSink, RecordingSink, Sink, TeeSink

__all__ = [
    "Event",
    "Histogram",
    "Instrumentation",
    "InstrumentationSnapshot",
    "JsonlSink",
    "NullSink",
    "RecordingSink",
    "Sink",
    "Span",
    "TeeSink",
    "merge_all",
    "render_counter_table",
    "render_histogram_table",
    "render_phase_table",
    "render_report",
]

"""Persistent run ledger: one JSONL record per pipeline run.

Every synthesis run can append a compact, append-only record to a
ledger file (default ``.repro/ledger.jsonl``).  A record identifies
*what* ran by a content digest — SHA-256 over the canonical JSON of the
assay, the allocation, and every synthesis parameter except ``jobs``
(parallelism is bit-identical by construction, so it must not split
otherwise-identical runs into different digests) — plus *how it went*:
phase wall-clock times, final energies/metrics, checker status, and the
histogram summaries (A* search latency percentiles etc.).

Because the digest is content-addressed, repeated runs of the same
problem with the same knobs share a digest, which is what makes the
``--baseline`` regression check possible: ``python -m repro stats
--baseline`` compares the newest record of each digest against the
median of its predecessors and flags phase-time / CPU-time regressions.

Record schema (version 1)::

    {
      "schema": 1,
      "ts": 1754700000.0,            # unix time of the append
      "digest": "ab12…",             # problem+parameter content address
      "benchmark": "pcr",            # assay name (for humans/filters)
      "algorithm": "ours",
      "seed": 0,
      "restarts": 1, "jobs": 2,
      "engines": {"placement": "incremental", "route": "flat"},
      "grid": [14, 14],
      "phase_times": {"schedule": …, "place": …, "route": …, "metrics": …},
      "cpu_time": 1.23,
      "metrics": {…},                # SynthesisMetrics.as_dict()
      "check": {"mode": "report", "ok": true, "errors": 0},   # or null
      "histograms": {"astar.search_seconds": {"count": …, "p50": …, …}},
      "checkpoints": [{"worker": 0, "restart": 1, "t": …, "temperature": …,
                       "energy": …}, …],   # optional (live mode)
      "portfolio": {"winner": "a001:batch", "winner_spec": "batch:k=16",
                    "rungs_survived": 3, "total_cpu_seconds": …,
                    "energy_per_cpu_second": …, "arms": […]},
                                           # optional (portfolio runs)
      "source": "serve",                   # optional (server-side runs;
                                           # filter with 'stats --serve')
    }

The ledger is **off by default in the Python API** — ``synthesize``
never writes files behind the caller's back — and on by default in the
CLI (``--no-ledger`` opts out, ``--ledger PATH`` redirects).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

# Deprecated re-export: the digest definition moved to
# :mod:`repro.core.digest` (PR 9) so the serve cache and the ledger
# share one canonicalisation.  Importing it from here keeps working —
# and must keep producing byte-identical digests — forever.
from repro.core.digest import DIGEST_EXCLUDED_PARAMETERS, problem_digest

__all__ = [
    "DEFAULT_LEDGER_PATH",
    "LEDGER_SCHEMA_VERSION",
    "problem_digest",
    "build_record",
    "append_record",
    "read_ledger",
    "record_run",
    "run_stats",
    "stats_main",
]

DEFAULT_LEDGER_PATH = Path(".repro") / "ledger.jsonl"
LEDGER_SCHEMA_VERSION = 1

#: Deprecated alias of
#: :data:`repro.core.digest.DIGEST_EXCLUDED_PARAMETERS`.
_DIGEST_EXCLUDED_PARAMETERS = DIGEST_EXCLUDED_PARAMETERS


# ----------------------------------------------------------------------
# Record construction / IO
# ----------------------------------------------------------------------
def build_record(
    result: Any,
    histograms: Mapping[str, Mapping[str, Any]] | None = None,
    checkpoints: Sequence[Mapping[str, Any]] | None = None,
    timestamp: float | None = None,
    source: str | None = None,
) -> dict[str, Any]:
    """Build the schema-1 ledger record for one finished run.

    *source* tags where the run came from (the synthesis server writes
    ``"serve"``); omitted for classic CLI/API runs, so old records and
    new CLI records look identical.
    """
    problem = result.problem
    params = problem.parameters
    grid = result.placement.grid
    check = None
    if result.check_report is not None:
        check = {
            "mode": params.check,
            "ok": result.check_report.ok,
            "errors": result.check_report.error_count,
        }
    record: dict[str, Any] = {
        "schema": LEDGER_SCHEMA_VERSION,
        "ts": time.time() if timestamp is None else timestamp,
        "digest": problem_digest(problem),
        "benchmark": problem.assay.name,
        "algorithm": result.algorithm,
        "seed": params.seed,
        "restarts": params.restarts,
        "jobs": params.jobs,
        "engines": {
            "placement": params.placement_engine,
            "route": params.route_engine,
        },
        "grid": [grid.width, grid.height],
        "phase_times": {k: round(v, 6) for k, v in result.phase_times.items()},
        "cpu_time": round(result.metrics.cpu_time, 6),
        "metrics": result.metrics.as_dict(),
        "check": check,
        "histograms": dict(histograms or {}),
    }
    if source is not None:
        record["source"] = source
    if checkpoints:
        record["checkpoints"] = [dict(point) for point in checkpoints]
    portfolio = getattr(result, "portfolio", None)
    if portfolio is not None:
        record["portfolio"] = dict(portfolio)
    return record


def append_record(record: Mapping[str, Any], path: str | Path | None = None) -> Path:
    """Append one record to the ledger (creating parent dirs), return its path."""
    ledger = Path(path) if path is not None else DEFAULT_LEDGER_PATH
    ledger.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, default=repr)
    with open(ledger, "a", encoding="utf-8") as stream:
        stream.write(line + "\n")
        stream.flush()
        os.fsync(stream.fileno())
    return ledger


def record_run(
    result: Any,
    instrumentation: Any = None,
    path: str | Path | None = None,
    checkpoints: Sequence[Mapping[str, Any]] | None = None,
    source: str | None = None,
) -> Path:
    """Build and append a ledger record for *result* in one call.

    *instrumentation* (optional) contributes its histogram summaries;
    *source* tags the record's origin (see :func:`build_record`).
    """
    histograms = None
    if instrumentation is not None:
        histograms = instrumentation.histogram_summaries()
    record = build_record(
        result, histograms=histograms, checkpoints=checkpoints, source=source
    )
    return append_record(record, path)


def read_ledger(path: str | Path | None = None) -> list[dict[str, Any]]:
    """All parseable records of the ledger, oldest first.

    Damaged lines (e.g. from a run killed mid-append on a filesystem
    without atomic appends) are skipped, not fatal — the ledger must
    stay readable even after a crash.
    """
    ledger = Path(path) if path is not None else DEFAULT_LEDGER_PATH
    if not ledger.exists():
        return []
    records: list[dict[str, Any]] = []
    with open(ledger, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


# ----------------------------------------------------------------------
# The ``python -m repro stats`` CLI
# ----------------------------------------------------------------------
def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    return ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0


def _filter_records(
    records: Iterable[dict[str, Any]],
    benchmark: str | None = None,
    digest: str | None = None,
    last: int | None = None,
    source: str | None = None,
) -> list[dict[str, Any]]:
    selected = [
        r
        for r in records
        if (benchmark is None or r.get("benchmark") == benchmark)
        and (digest is None or str(r.get("digest", "")).startswith(digest))
        and (source is None or r.get("source") == source)
    ]
    if last is not None and last > 0:
        selected = selected[-last:]
    return selected


def _aggregate(records: Sequence[dict[str, Any]]) -> list[str]:
    """Per-digest summary table lines.

    The ``arm`` and ``e/cpu-s`` columns surface portfolio runs: the
    newest record's winning arm id and its placement-energy improvement
    per CPU-second (``-`` for plain multi-start records).
    """
    groups: dict[str, list[dict[str, Any]]] = {}
    for record in records:
        groups.setdefault(str(record.get("digest", "?")), []).append(record)
    lines = [
        f"{'digest':<12} {'benchmark':<12} {'runs':>4} "
        f"{'cpu med':>9} {'cpu last':>9} {'energy/exec':>12} "
        f"{'arm':<10} {'e/cpu-s':>9}"
    ]
    for digest, group in sorted(groups.items(), key=lambda kv: kv[1][-1].get("ts", 0)):
        cpu_times = [float(r.get("cpu_time", 0.0)) for r in group]
        newest = group[-1]
        exec_time = newest.get("metrics", {}).get("execution_time_s")
        portfolio = newest.get("portfolio") or {}
        arm = str(portfolio.get("winner", "-"))
        efficiency = portfolio.get("energy_per_cpu_second")
        eff_text = f"{efficiency:.3g}" if isinstance(
            efficiency, (int, float)
        ) else "-"
        lines.append(
            f"{digest[:12]:<12} {str(newest.get('benchmark', '?'))[:12]:<12} "
            f"{len(group):>4} {_median(cpu_times):>9.3f} {cpu_times[-1]:>9.3f} "
            f"{exec_time if exec_time is not None else '-':>12} "
            f"{arm[:10]:<10} {eff_text:>9}"
        )
    return lines


def _baseline_regressions(
    records: Sequence[dict[str, Any]],
    tolerance: float,
    min_seconds: float,
) -> list[str]:
    """Regression messages for the newest record of each repeated digest.

    For every digest with at least two records, the newest record's
    per-phase times and total CPU time are compared against the median
    of all *prior* records with the same digest.  A figure regresses
    when it exceeds the baseline by more than ``tolerance`` (relative)
    *and* by more than ``min_seconds`` (absolute slack, so micro-phases
    measured in microseconds cannot trip the relative gate on noise).
    """
    regressions: list[str] = []
    groups: dict[str, list[dict[str, Any]]] = {}
    for record in records:
        groups.setdefault(str(record.get("digest", "?")), []).append(record)
    for digest, group in sorted(groups.items()):
        if len(group) < 2:
            continue
        *prior, newest = group
        figures: dict[str, tuple[float, float]] = {}
        for phase in newest.get("phase_times", {}):
            history = [
                float(r["phase_times"][phase])
                for r in prior
                if phase in r.get("phase_times", {})
            ]
            if history:
                figures[f"phase {phase}"] = (
                    float(newest["phase_times"][phase]),
                    _median(history),
                )
        figures["cpu_time"] = (
            float(newest.get("cpu_time", 0.0)),
            _median([float(r.get("cpu_time", 0.0)) for r in prior]),
        )
        for label, (current, baseline) in sorted(figures.items()):
            if current > baseline * (1.0 + tolerance) and current - baseline > min_seconds:
                regressions.append(
                    f"REGRESSION {digest[:12]} "
                    f"[{newest.get('benchmark', '?')}] {label}: "
                    f"{current:.4f}s vs baseline {baseline:.4f}s "
                    f"(+{(current / baseline - 1.0) * 100.0 if baseline else 0.0:.1f}%)"
                )
    return regressions


def run_stats(argv: Sequence[str] | None = None) -> int:
    """Implementation of ``python -m repro stats`` (returns exit code)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro stats",
        description="Summarise the run ledger and flag regressions.",
    )
    parser.add_argument(
        "--ledger",
        default=str(DEFAULT_LEDGER_PATH),
        help=f"ledger path (default: {DEFAULT_LEDGER_PATH})",
    )
    parser.add_argument("--benchmark", help="only records of this assay name")
    parser.add_argument("--digest", help="only records whose digest starts with this")
    parser.add_argument(
        "--last", type=int, help="only the newest N matching records"
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="only records written by the synthesis server "
        "(tagged 'source: serve'; see docs/SERVICE.md)",
    )
    parser.add_argument(
        "--baseline",
        action="store_true",
        help="compare each digest's newest record against the median of "
        "its prior records; exit 1 when any phase/CPU time regresses",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative slowdown tolerated by --baseline (default 0.25)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.005,
        help="absolute slack (s) a figure must exceed to count as a "
        "regression (default 0.005)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the matching records as JSON instead of a table",
    )
    args = parser.parse_args(argv)

    records = _filter_records(
        read_ledger(args.ledger),
        benchmark=args.benchmark,
        digest=args.digest,
        last=args.last,
        source="serve" if args.serve else None,
    )
    if not records:
        print(f"no ledger records match (ledger: {args.ledger})")
        return 0

    if args.json:
        print(json.dumps(records, indent=2, sort_keys=True))
    else:
        print(f"{len(records)} record(s) from {args.ledger}")
        for line in _aggregate(records):
            print(line)

    if args.baseline:
        regressions = _baseline_regressions(
            records, tolerance=args.tolerance, min_seconds=args.min_seconds
        )
        if regressions:
            for message in regressions:
                print(message)
            return 1
        print("baseline: no regressions")
    return 0


def stats_main(argv: Sequence[str] | None = None) -> None:
    """Console entry point wrapper around :func:`run_stats`."""
    raise SystemExit(run_stats(argv))

"""Fixed log-bucket latency histograms (the ``histogram`` metric kind).

Counters answer *how many*, gauges answer *what now* — histograms
answer *how are they distributed*.  A :class:`Histogram` accumulates
observations into a fixed geometric bucket ladder so that

* recording is O(log buckets) with zero allocation (one ``bisect`` into
  a precomputed bound table),
* two histograms with the same ladder merge by element-wise addition —
  a commutative, associative operation, so merged aggregates are
  independent of merge order (the property
  :meth:`repro.obs.Instrumentation.absorb` relies on for deterministic
  multi-worker profiles), and
* p50/p90/p99 come out with bounded relative error (one bucket's
  ``growth`` factor) while min/max/sum/count stay exact.

The default ladder spans 1 µs to ~18 minutes in sqrt(2) steps — wide
enough for a single A* search and for a whole synthesis phase alike —
so every histogram in the pipeline shares one ladder and any two of
them can merge.

Instances are picklable: they travel inside
:class:`~repro.obs.instrument.InstrumentationSnapshot` across the
process pool.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

__all__ = [
    "Histogram",
    "merge_all",
    "DEFAULT_BASE",
    "DEFAULT_GROWTH",
    "DEFAULT_BUCKETS",
]

#: Upper bound of the first bucket (seconds): 1 µs.
DEFAULT_BASE = 1e-6
#: Geometric growth factor between consecutive bucket bounds.
DEFAULT_GROWTH = 2 ** 0.5
#: Number of bounded buckets (one unbounded overflow bucket follows).
DEFAULT_BUCKETS = 60

#: Bound tables are shared between instances with the same ladder so a
#: pipeline full of histograms precomputes each ladder exactly once.
_BOUNDS_CACHE: dict[tuple[float, float, int], tuple[float, ...]] = {}


def _bounds(base: float, growth: float, buckets: int) -> tuple[float, ...]:
    key = (base, growth, buckets)
    table = _BOUNDS_CACHE.get(key)
    if table is None:
        table = tuple(base * growth ** i for i in range(buckets))
        _BOUNDS_CACHE[key] = table
    return table


class Histogram:
    """Log-bucketed value distribution with exact count/sum/min/max.

    Parameters
    ----------
    base:
        Upper bound of the first bucket; values ``<= base`` land there.
    growth:
        Ratio between consecutive bucket bounds (must be > 1).
    buckets:
        Number of bounded buckets; values beyond the last bound land in
        an extra overflow bucket (quantiles then clamp to the observed
        maximum, so overflow never fabricates values).
    """

    __slots__ = ("base", "growth", "buckets", "counts",
                 "count", "total", "vmin", "vmax")

    def __init__(
        self,
        base: float = DEFAULT_BASE,
        growth: float = DEFAULT_GROWTH,
        buckets: int = DEFAULT_BUCKETS,
    ) -> None:
        if base <= 0 or growth <= 1 or buckets < 1:
            raise ValueError(
                f"invalid histogram ladder: base={base}, growth={growth}, "
                f"buckets={buckets}"
            )
        self.base = base
        self.growth = growth
        self.buckets = buckets
        self.counts = [0] * (buckets + 1)
        self.count = 0
        self.total = 0.0
        self.vmin: float | None = None
        self.vmax: float | None = None

    # -- pickling (``__slots__`` classes need explicit state) ----------
    def __getstate__(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram(count={self.count}, p50={self.p50!r}, "
            f"p99={self.p99!r}, max={self.vmax!r})"
        )

    @property
    def bounds(self) -> tuple[float, ...]:
        """Upper bound of every bounded bucket."""
        return _bounds(self.base, self.growth, self.buckets)

    def ladder(self) -> tuple[float, float, int]:
        """The (base, growth, buckets) configuration triple."""
        return (self.base, self.growth, self.buckets)

    # ------------------------------------------------------------------
    # Recording / merging
    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        """Add one observation (negative values clamp into bucket 0)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other* into this histogram (returns ``self``).

        Merging is element-wise bucket addition, hence commutative and
        associative: any merge order yields the same histogram.  Both
        sides must share the bucket ladder.
        """
        if other.ladder() != self.ladder():
            raise ValueError(
                f"cannot merge histograms with different ladders: "
                f"{self.ladder()} vs {other.ladder()}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        if other.vmin is not None:
            self.vmin = other.vmin if self.vmin is None else min(self.vmin, other.vmin)
        if other.vmax is not None:
            self.vmax = other.vmax if self.vmax is None else max(self.vmax, other.vmax)
        return self

    def copy(self) -> "Histogram":
        """An independent deep copy (fresh bucket counts)."""
        twin = Histogram(self.base, self.growth, self.buckets)
        twin.merge(self)
        return twin

    # ------------------------------------------------------------------
    # Quantiles
    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float | None:
        """Estimated value at quantile *q* (0..1); ``None`` when empty.

        Linear interpolation inside the hit bucket, clamped to the
        exact observed min/max so estimates never leave the data range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0 or self.vmin is None or self.vmax is None:
            return None
        target = q * self.count
        seen = 0.0
        bounds = self.bounds
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if seen + n >= target:
                upper = bounds[i] if i < len(bounds) else self.vmax
                lower = bounds[i - 1] if i > 0 else 0.0
                fraction = (target - seen) / n
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.vmin), self.vmax)
            seen += n
        return self.vmax

    @property
    def p50(self) -> float | None:
        return self.quantile(0.50)

    @property
    def p90(self) -> float | None:
        return self.quantile(0.90)

    @property
    def p99(self) -> float | None:
        return self.quantile(0.99)

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def summary(self, digits: int = 6) -> dict:
        """The flat percentile record ledgers and BENCH artifacts carry."""
        def r(value: float | None) -> float | None:
            return None if value is None else round(value, digits)

        return {
            "count": self.count,
            "sum": r(self.total),
            "mean": r(self.mean),
            "min": r(self.vmin),
            "p50": r(self.p50),
            "p90": r(self.p90),
            "p99": r(self.p99),
            "max": r(self.vmax),
        }


def merge_all(histograms: Sequence[Histogram]) -> Histogram | None:
    """Merge *histograms* into a fresh one (``None`` for an empty list)."""
    merged: Histogram | None = None
    for histogram in histograms:
        if merged is None:
            merged = histogram.copy()
        else:
            merged.merge(histogram)
    return merged

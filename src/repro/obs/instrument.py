"""Hierarchical spans, counters, and gauges.

:class:`Instrumentation` is the single object threaded through the
synthesis pipeline.  It always maintains cheap in-memory aggregates —
per-span-path wall-clock totals, counter totals, last gauge values — and
*additionally* streams structured events to its sink unless the sink is
a :class:`~repro.obs.sinks.NullSink` (the default), in which case no
event objects are constructed at all.

Usage::

    instr = Instrumentation()              # aggregates only, no events
    with instr.span("synthesize"):
        with instr.span("place") as place:
            instr.count("sa.moves_accepted", 12)
            instr.event("sa.step", temperature=100.0, energy=42.0)
        print(place.duration)
    print(instr.phase_times(("synthesize",)))   # {"place": ...}
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.obs.events import Event
from repro.obs.histogram import Histogram
from repro.obs.sinks import NullSink, Sink

__all__ = ["Instrumentation", "InstrumentationSnapshot", "Span"]

#: Gauge-merge rank of a locally sampled gauge: above every possible
#: worker index, so the owning process's own samples always win.
_LOCAL_GAUGE_RANK = float("inf")


@dataclass(frozen=True)
class InstrumentationSnapshot:
    """Picklable aggregate state of an :class:`Instrumentation`.

    This is how telemetry crosses a process boundary: a worker runs with
    its own instrumentation, ships ``snapshot()`` back as data, and the
    parent folds it in with :meth:`Instrumentation.absorb`.  Only the
    cheap aggregates travel — span wall-clock totals and run counts,
    counter totals, last gauge values, histogram buckets — never live
    event streams.

    ``worker`` namespaces the snapshot: every instrumentation numbers
    its spans from 1, so only ``(worker, span_id)`` is unique in a
    merged multi-worker context.  The worker index also drives the
    deterministic gauge-merge rule of :meth:`Instrumentation.absorb`.
    """

    span_totals: dict[tuple[str, ...], float]
    span_counts: dict[tuple[str, ...], int]
    counters: dict[str, float]
    gauges: dict[str, float]
    histograms: dict[str, Histogram] = field(default_factory=dict)
    worker: int | None = None


@dataclass
class Span:
    """Handle for one open (or finished) phase timer."""

    name: str
    span_id: int
    parent_id: int | None
    #: Full path from the root span, e.g. ``("synthesize", "place")``.
    path: tuple[str, ...]
    started: float
    #: Wall-clock duration in seconds; set when the span closes.
    duration: float | None = None
    _now: Callable[[], float] = field(default=time.perf_counter, repr=False)

    def elapsed(self) -> float:
        """Seconds since the span started (usable while still open)."""
        return (self._now() - self.started) if self.duration is None else self.duration

    @property
    def label(self) -> str:
        return " > ".join(self.path)


class Instrumentation:
    """Span timers + counters/gauges + optional event stream.

    Parameters
    ----------
    sink:
        Event destination; ``None`` means :class:`NullSink` — aggregates
        are still kept, but no events are built or emitted.
    clock:
        Monotonic time source (seconds).  Injectable for deterministic
        tests; defaults to :func:`time.perf_counter`.
    worker:
        Pool-worker index stamped on every emitted event and on
        snapshots, so merged multi-worker traces stay unambiguous
        (span ids are only unique per worker).  ``None`` (the default)
        marks the main process.
    """

    def __init__(
        self,
        sink: Sink | None = None,
        clock: Callable[[], float] = time.perf_counter,
        worker: int | None = None,
    ) -> None:
        self.sink: Sink = sink if sink is not None else NullSink()
        #: True when events flow to the sink; NullSink (and subclasses)
        #: short-circuit every emission with this single flag.
        self.active: bool = not isinstance(self.sink, NullSink)
        self.worker = worker
        self._clock = clock
        self._epoch = clock()
        self._stack: list[Span] = []
        self._next_id = 1
        self._span_totals: dict[tuple[str, ...], float] = {}
        self._span_counts: dict[tuple[str, ...], int] = {}
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        #: Gauge merge bookkeeping: name -> (worker rank, absorb seq)
        #: of the sample currently held; see :meth:`absorb`.
        self._gauge_ranks: dict[str, tuple[float, int]] = {}
        self._absorb_seq = 0

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since this instrumentation was created."""
        return self._clock() - self._epoch

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    @property
    def current_span(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open a nested phase timer for the duration of the ``with`` body."""
        parent = self.current_span
        handle = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            path=(parent.path + (name,)) if parent is not None else (name,),
            started=self.now(),
            _now=self.now,
        )
        self._next_id += 1
        self._stack.append(handle)
        # Seed the totals at first open so aggregate iteration order is
        # chronological (parents before children) for tree rendering.
        self._span_totals.setdefault(handle.path, 0.0)
        if self.active:
            self.sink.emit(
                Event(
                    kind="span_start",
                    name=name,
                    time=handle.started,
                    span_id=handle.span_id,
                    parent_id=handle.parent_id,
                    worker=self.worker,
                )
            )
        try:
            yield handle
        finally:
            ended = self.now()
            handle.duration = ended - handle.started
            self._stack.pop()
            self._span_totals[handle.path] += handle.duration
            self._span_counts[handle.path] = (
                self._span_counts.get(handle.path, 0) + 1
            )
            if self.active:
                self.sink.emit(
                    Event(
                        kind="span_end",
                        name=name,
                        time=ended,
                        span_id=handle.span_id,
                        parent_id=handle.parent_id,
                        fields={"duration": handle.duration},
                        worker=self.worker,
                    )
                )

    # ------------------------------------------------------------------
    # Counters / gauges / point events
    # ------------------------------------------------------------------
    def count(self, name: str, delta: float = 1) -> None:
        """Add *delta* to counter *name* (creates it at zero)."""
        total = self._counters.get(name, 0) + delta
        self._counters[name] = total
        if self.active:
            span = self.current_span
            self.sink.emit(
                Event(
                    kind="counter",
                    name=name,
                    time=self.now(),
                    span_id=span.span_id if span else None,
                    parent_id=span.parent_id if span else None,
                    fields={"delta": delta, "total": total},
                    worker=self.worker,
                )
            )

    def gauge(self, name: str, value: float) -> None:
        """Sample gauge *name* at *value* (last value wins in aggregates).

        A locally sampled gauge outranks anything merged in from worker
        snapshots (see :meth:`absorb`): the owning process's own latest
        sample always wins.
        """
        self._gauges[name] = value
        self._absorb_seq += 1
        self._gauge_ranks[name] = (_LOCAL_GAUGE_RANK, self._absorb_seq)
        if self.active:
            span = self.current_span
            self.sink.emit(
                Event(
                    kind="gauge",
                    name=name,
                    time=self.now(),
                    span_id=span.span_id if span else None,
                    parent_id=span.parent_id if span else None,
                    fields={"value": value},
                    worker=self.worker,
                )
            )

    def observe(self, name: str, value: float) -> None:
        """Record *value* into the log-bucket histogram *name*.

        Histograms are the latency-distribution metric kind: they keep
        exact count/sum/min/max and bucketed p50/p90/p99 (see
        :class:`~repro.obs.histogram.Histogram`), are always maintained
        in memory like counters, and additionally stream a
        ``histogram`` event per observation when the sink is live.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.record(value)
        if self.active:
            span = self.current_span
            self.sink.emit(
                Event(
                    kind="histogram",
                    name=name,
                    time=self.now(),
                    span_id=span.span_id if span else None,
                    parent_id=span.parent_id if span else None,
                    fields={"value": value},
                    worker=self.worker,
                )
            )

    def event(self, name: str, **fields: Any) -> None:
        """Emit a free-form point event (no-op with a :class:`NullSink`)."""
        if not self.active:
            return
        span = self.current_span
        self.sink.emit(
            Event(
                kind="point",
                name=name,
                time=self.now(),
                span_id=span.span_id if span else None,
                parent_id=span.parent_id if span else None,
                fields=fields,
                worker=self.worker,
            )
        )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def counters(self) -> dict[str, float]:
        """Counter totals accumulated so far (a copy)."""
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, float]:
        """Last sampled value of every gauge (a copy)."""
        return dict(self._gauges)

    @property
    def histograms(self) -> dict[str, Histogram]:
        """Every histogram recorded so far (a shallow copy of the map)."""
        return dict(self._histograms)

    def histogram(self, name: str) -> Histogram | None:
        """The histogram called *name*, or ``None`` if never observed."""
        return self._histograms.get(name)

    def histogram_summaries(self, digits: int = 6) -> dict[str, dict]:
        """Percentile summaries of every histogram (ledger/report form)."""
        return {
            name: histogram.summary(digits)
            for name, histogram in self._histograms.items()
        }

    def span_totals(self) -> dict[tuple[str, ...], float]:
        """Accumulated wall-clock seconds per span path (a copy)."""
        return dict(self._span_totals)

    def span_seconds(self, path: tuple[str, ...] | str) -> float:
        """Total seconds spent in the span at *path* (0.0 if never run)."""
        if isinstance(path, str):
            path = (path,)
        return self._span_totals.get(tuple(path), 0.0)

    def phase_times(
        self, parent: tuple[str, ...] | str | None = None
    ) -> dict[str, float]:
        """Durations of the direct child spans of *parent*.

        ``parent=None`` returns the root spans.  Keys are leaf span
        names; values accumulate across repeated runs of the same phase.
        """
        if parent is None:
            prefix: tuple[str, ...] = ()
        elif isinstance(parent, str):
            prefix = (parent,)
        else:
            prefix = tuple(parent)
        depth = len(prefix) + 1
        return {
            path[-1]: seconds
            for path, seconds in self._span_totals.items()
            if len(path) == depth and path[: len(prefix)] == prefix
        }

    def span_counts(self) -> dict[tuple[str, ...], int]:
        """Number of completed runs per span path (a copy)."""
        return dict(self._span_counts)

    # ------------------------------------------------------------------
    # Cross-process merge
    # ------------------------------------------------------------------
    def snapshot(self) -> InstrumentationSnapshot:
        """Freeze the current aggregates into a picklable snapshot.

        Histograms are deep-copied so the snapshot stays immutable even
        when the child keeps recording (or when, on the inline
        ``jobs=1`` path, parent and child share a process).
        """
        return InstrumentationSnapshot(
            span_totals=dict(self._span_totals),
            span_counts=dict(self._span_counts),
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms={
                name: histogram.copy()
                for name, histogram in self._histograms.items()
            },
            worker=self.worker,
        )

    def absorb(
        self,
        snapshot: InstrumentationSnapshot,
        prefix: tuple[str, ...] = (),
        worker: int | None = None,
    ) -> None:
        """Fold a child instrumentation's aggregates into this one.

        Span totals and run counts are *added* (child paths optionally
        re-rooted under *prefix*), counters are summed, and histograms
        are bucket-merged — all commutative operations, so those
        aggregates are independent of absorb order by construction.

        Gauges are last-value-wins and therefore need an explicit
        order: they merge by **(worker rank, merge sequence)**.  The
        rank is *worker* (or ``snapshot.worker`` when *worker* is
        ``None``); a snapshot's gauge overwrites the held value only
        when its rank is >= the rank that produced it, so any absorb
        order of distinctly-ranked snapshots yields the same merged
        gauges — the highest worker index wins, exactly what absorbing
        in submission order used to produce.  Locally sampled gauges
        (:meth:`gauge`) always outrank workers.  Snapshots with no rank
        at all fall back to absorb-call order (the legacy rule), which
        is deterministic only if the caller absorbs in submission
        order.  No events are emitted — the merge is aggregate
        bookkeeping only.
        """
        for path, seconds in snapshot.span_totals.items():
            full = prefix + tuple(path)
            self._span_totals[full] = self._span_totals.get(full, 0.0) + seconds
        for path, runs in snapshot.span_counts.items():
            full = prefix + tuple(path)
            self._span_counts[full] = self._span_counts.get(full, 0) + runs
        for name, total in snapshot.counters.items():
            self._counters[name] = self._counters.get(name, 0) + total
        for name, histogram in snapshot.histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = histogram.copy()
            else:
                mine.merge(histogram)
        self._absorb_seq += 1
        rank: float | int | None = worker if worker is not None else snapshot.worker
        if rank is None:
            # Legacy unranked snapshot: absorb order decides, as before.
            rank = self._absorb_seq
        key = (float(rank), self._absorb_seq)
        for name, value in snapshot.gauges.items():
            held = self._gauge_ranks.get(name)
            if held is None or key >= held:
                self._gauges[name] = value
                self._gauge_ranks[name] = key

"""Event sinks: where instrumentation events go.

* :class:`NullSink` — the zero-overhead default.  An
  :class:`~repro.obs.instrument.Instrumentation` built on it never
  constructs :class:`~repro.obs.events.Event` objects at all (it checks
  the sink type once, up front), so the fully-instrumented pipeline pays
  only for its in-memory counter/timer bookkeeping.
* :class:`JsonlSink` — streams one JSON object per event to a file;
  this is what the CLI's ``--trace PATH.jsonl`` flag installs.
* :class:`RecordingSink` — keeps events in a list with small query
  helpers; intended for tests and interactive inspection.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import IO, Iterable

from repro.obs.events import Event

__all__ = [
    "Sink",
    "NullSink",
    "JsonlSink",
    "RecordingSink",
    "TeeSink",
    "read_jsonl",
]


class Sink:
    """Interface every sink implements.

    Sinks are context managers so callers can write
    ``with JsonlSink(path) as sink: ...`` and be sure the stream is
    flushed; :meth:`close` is idempotent.
    """

    def emit(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullSink(Sink):
    """Discard everything.

    The instrumentation layer special-cases this type (including
    subclasses): when the sink is a ``NullSink`` no events are built or
    emitted, making it safe to leave instrumentation permanently wired
    into hot paths.
    """

    def emit(self, event: Event) -> None:  # pragma: no cover - never called
        pass


class RecordingSink(Sink):
    """In-memory sink with query helpers, for tests."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def of_kind(self, kind: str) -> list[Event]:
        """All recorded events of one kind (e.g. ``"span_end"``)."""
        return [e for e in self.events if e.kind == kind]

    def named(self, name: str) -> list[Event]:
        """All recorded events carrying exactly this name."""
        return [e for e in self.events if e.name == name]

    def names(self) -> set[str]:
        return {e.name for e in self.events}


class JsonlSink(Sink):
    """Stream events as JSON Lines to a path or open text stream.

    When given a path the file is opened on construction and owned by
    the sink (closed by :meth:`close`); an already-open stream is
    borrowed and left open.

    Robustness guarantees for production traces:

    * Writes are serialised under a lock and each event goes out as
      **one** ``write()`` call (line plus newline), so concurrent
      emitters inside one process — e.g. the resource-sampler and
      live-progress threads alongside the pipeline — never interleave
      half-lines (``TextIOWrapper.write`` alone is not atomic: the
      underlying buffer can tear racing writes apart).
    * The stream is flushed whenever a **root span ends**, so even a
      run that crashes later (and never reaches :meth:`close`) leaves a
      parseable trace prefix covering every completed top-level phase.
    * Non-JSON-serialisable field values degrade to their ``repr()``
      instead of poisoning the whole line — a diagnostic payload must
      never be the thing that kills the run being diagnosed.
    """

    def __init__(self, target: str | Path | IO[str]) -> None:
        if isinstance(target, (str, Path)):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.emitted = 0
        self._lock = threading.Lock()

    def emit(self, event: Event) -> None:
        record = event.to_json()
        try:
            line = json.dumps(record, sort_keys=True)
        except (TypeError, ValueError):
            line = json.dumps(record, sort_keys=True, default=repr)
        with self._lock:
            self._stream.write(line + "\n")
            self.emitted += 1
            if event.kind == "span_end" and event.parent_id is None:
                self._stream.flush()

    def close(self) -> None:
        if self._owns_stream and not self._stream.closed:
            self._stream.close()
        elif not self._owns_stream:
            self._stream.flush()


class TeeSink(Sink):
    """Fan every event out to several child sinks, in order.

    Used to combine a persistent sink (e.g. :class:`JsonlSink` behind
    ``--trace``) with a transient consumer (e.g. the live-progress
    heartbeat relay of :mod:`repro.obs.live`).  Closing the tee closes
    every child; children that share ownership semantics keep them.
    """

    def __init__(self, *sinks: Sink) -> None:
        self.sinks: tuple[Sink, ...] = sinks

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def read_jsonl(path: str | Path) -> Iterable[dict]:
    """Parse a trace file written by :class:`JsonlSink`, line by line."""
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                yield json.loads(line)

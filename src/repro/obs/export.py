"""Trace export: ``--trace`` JSONL → Chrome trace-event format.

``python -m repro trace2chrome trace.jsonl [-o trace.chrome.json]``
converts a trace written by :class:`~repro.obs.JsonlSink` into the
`Chrome trace-event format`_ understood by Perfetto / ``chrome://tracing``:

* ``span_start`` / ``span_end``  →  duration events (``ph: B`` / ``E``);
* ``counter`` and ``gauge``      →  counter tracks (``ph: C``);
* ``point`` and ``histogram``    →  instant events (``ph: i``);
* one metadata event per worker  →  named thread tracks (``ph: M``).

Worker mapping: the repro event schema stamps events produced inside a
pool worker with a ``worker`` index, and span ids are only unique *per
worker* (every instrumentation numbers from 1).  The exporter therefore
keys everything by ``(worker, span_id)`` and maps the main process to
``tid 0`` and worker *k* to ``tid k+1`` — a ``--restarts 4 --jobs 2``
trace opens in Perfetto with one track per worker, each carrying its
own SA restart span tree.

.. _Chrome trace-event format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.sinks import read_jsonl

__all__ = ["trace_to_chrome", "convert_trace", "chrome_main", "run_trace2chrome"]

#: Synthetic process id — a trace comes from one logical run.
_PID = 1


def _tid(worker: int | None) -> int:
    """Chrome-trace thread id: main process 0, worker *k* → ``k + 1``."""
    return 0 if worker is None else int(worker) + 1


def _track_name(worker: int | None) -> str:
    return "main" if worker is None else f"worker {worker}"


def _counter_args(fields: Mapping[str, Any]) -> dict[str, Any]:
    """Numeric payload of a counter/gauge sample, for a ``C`` event."""
    args = {
        key: value
        for key, value in fields.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    return args or {"value": 0}


def trace_to_chrome(events: Iterable[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Convert parsed trace records into Chrome trace-event dictionaries.

    *events* are the dictionaries produced by
    :func:`~repro.obs.read_jsonl` (keys ``kind``/``name``/``t``/``span``/
    ``parent``, optional ``worker`` and ``fields``).  Timestamps convert
    from seconds-since-epoch-of-the-run to microseconds, as the format
    requires.
    """
    chrome: list[dict[str, Any]] = []
    seen_tids: dict[int, str] = {}
    for event in events:
        kind = event.get("kind")
        if kind not in ("span_start", "span_end", "counter", "gauge",
                        "histogram", "point"):
            continue
        worker = event.get("worker")
        tid = _tid(worker)
        if tid not in seen_tids:
            seen_tids[tid] = _track_name(worker)
        ts = float(event.get("t", 0.0)) * 1e6
        name = str(event.get("name", "?"))
        fields = event.get("fields") or {}
        if kind == "span_start":
            chrome.append(
                {"ph": "B", "pid": _PID, "tid": tid, "ts": ts,
                 "name": name, "cat": "span", "args": dict(fields)}
            )
        elif kind == "span_end":
            chrome.append(
                {"ph": "E", "pid": _PID, "tid": tid, "ts": ts,
                 "name": name, "cat": "span", "args": dict(fields)}
            )
        elif kind in ("counter", "gauge"):
            chrome.append(
                {"ph": "C", "pid": _PID, "tid": tid, "ts": ts,
                 "name": name, "cat": kind, "args": _counter_args(fields)}
            )
        else:  # point / histogram samples → instant events
            chrome.append(
                {"ph": "i", "pid": _PID, "tid": tid, "ts": ts, "s": "t",
                 "name": name, "cat": kind, "args": dict(fields)}
            )
    metadata = [
        {"ph": "M", "pid": _PID, "tid": tid, "name": "thread_name",
         "args": {"name": label}}
        for tid, label in sorted(seen_tids.items())
    ]
    # Thread tracks sort by tid: main first, then workers in order.
    metadata.extend(
        {"ph": "M", "pid": _PID, "tid": tid, "name": "thread_sort_index",
         "args": {"sort_index": tid}}
        for tid in sorted(seen_tids)
    )
    return metadata + chrome


def convert_trace(
    trace_path: str | Path, output_path: str | Path | None = None
) -> Path:
    """Convert a JSONL trace file; return the Chrome-trace output path.

    The default output path replaces the input suffix with
    ``.chrome.json`` (``trace.jsonl`` → ``trace.chrome.json``).
    """
    trace_path = Path(trace_path)
    if output_path is None:
        output_path = trace_path.with_suffix(".chrome.json")
    output_path = Path(output_path)
    chrome = trace_to_chrome(read_jsonl(trace_path))
    document = {"traceEvents": chrome, "displayTimeUnit": "ms"}
    output_path.write_text(
        json.dumps(document, sort_keys=True) + "\n", encoding="utf-8"
    )
    return output_path


def run_trace2chrome(argv: Sequence[str] | None = None) -> int:
    """Implementation of ``python -m repro trace2chrome`` (exit code)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro trace2chrome",
        description="Convert a --trace JSONL file to Chrome trace-event "
        "JSON (openable in Perfetto or chrome://tracing).",
    )
    parser.add_argument("trace", help="input trace (.jsonl) written by --trace")
    parser.add_argument(
        "-o", "--output",
        help="output path (default: input with .chrome.json suffix)",
    )
    args = parser.parse_args(argv)
    trace = Path(args.trace)
    if not trace.exists():
        print(f"trace file not found: {trace}")
        return 2
    output = convert_trace(trace, args.output)
    events = json.loads(output.read_text(encoding="utf-8"))["traceEvents"]
    workers = {e["tid"] for e in events if e.get("ph") != "M"}
    print(
        f"wrote {output} ({len(events)} events, "
        f"{len(workers)} track(s))"
    )
    return 0


def chrome_main(argv: Sequence[str] | None = None) -> None:
    """Console entry point wrapper around :func:`run_trace2chrome`."""
    raise SystemExit(run_trace2chrome(argv))

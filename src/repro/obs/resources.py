"""Process resource sampling: RSS, CPU time, GC activity.

:class:`ResourceSampler` is a lightweight daemon thread that
periodically gauges the process's resident set size, accumulated CPU
time, and garbage-collector activity into an
:class:`~repro.obs.Instrumentation`:

==========================  =================================================
gauge                       meaning
==========================  =================================================
``proc.rss_bytes``          resident set size at the last sample
``proc.rss_peak_bytes``     maximum RSS seen by this sampler
``proc.cpu_seconds``        ``time.process_time()`` (user+system, this process)
``proc.gc_collections``     total collections across all GC generations
``proc.gc_objects``         currently tracked objects (gen-0 count proxy)
==========================  =================================================

Because gauges are ordinary instrumentation samples, the last values
land in the ``--profile`` report and every sample streams to ``--trace``
as a ``gauge`` event — no new event kind needed.  The sampler is
stdlib-only: RSS comes from ``/proc/self/statm`` where available and
falls back to ``resource.getrusage`` peak-RSS elsewhere (``0`` on
platforms with neither, rather than a crash).

Usage::

    with ResourceSampler(instrumentation, interval=0.1):
        result = synthesize_problem(problem, instrumentation=instrumentation)

The CLI arms this automatically for ``--profile`` runs.
"""

from __future__ import annotations

import gc
import os
import threading
import time

from repro.obs.instrument import Instrumentation

__all__ = ["ResourceSampler", "read_rss_bytes"]

#: Default sampling period (seconds): coarse enough to be invisible in
#: profiles, fine enough to catch a phase-sized allocation spike.
DEFAULT_INTERVAL = 0.1

try:  # pragma: no cover - exercised indirectly via read_rss_bytes
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _PAGE_SIZE = 4096


def read_rss_bytes() -> int:
    """Current resident set size in bytes (best effort, stdlib only)."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as statm:
            return int(statm.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        # ru_maxrss is KiB on Linux, bytes on macOS; this branch only
        # runs where /proc is absent (i.e. not Linux), so prefer bytes
        # unless the value is implausibly small for a python process.
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return peak if peak > 1 << 22 else peak * 1024
    except Exception:  # pragma: no cover - exotic platforms
        return 0


def _gc_collections() -> int:
    """Total completed collections across all generations."""
    try:
        return sum(stat.get("collections", 0) for stat in gc.get_stats())
    except Exception:  # pragma: no cover - get_stats is CPython-specific
        return 0


class ResourceSampler:
    """Background thread gauging process resources into instrumentation.

    Parameters
    ----------
    instrumentation:
        Receiver of the ``proc.*`` gauges.
    interval:
        Seconds between samples.  The thread wakes via an
        :class:`threading.Event` wait, so :meth:`stop` never blocks for
        a full interval.
    """

    def __init__(
        self,
        instrumentation: Instrumentation,
        interval: float = DEFAULT_INTERVAL,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.instrumentation = instrumentation
        self.interval = interval
        self.samples = 0
        self.peak_rss = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def sample_once(self) -> None:
        """Take one sample synchronously (also used by the thread loop)."""
        instr = self.instrumentation
        rss = read_rss_bytes()
        if rss > self.peak_rss:
            self.peak_rss = rss
        instr.gauge("proc.rss_bytes", float(rss))
        instr.gauge("proc.rss_peak_bytes", float(self.peak_rss))
        instr.gauge("proc.cpu_seconds", time.process_time())
        instr.gauge("proc.gc_collections", float(_gc_collections()))
        instr.gauge("proc.gc_objects", float(gc.get_count()[0]))
        self.samples += 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def start(self) -> "ResourceSampler":
        """Take an initial sample and start the sampling thread."""
        if self._thread is not None:
            return self
        self.sample_once()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take one final sample (idempotent)."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self.sample_once()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

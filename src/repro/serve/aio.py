"""Minimal asyncio HTTP/1.1 client for shard-to-shard traffic.

The front tier proxies every request to a backend, and backends ask
their peers' caches — all inside asyncio event loops where the
blocking :class:`~repro.serve.client.ServeClient` cannot run.  This is
the stdlib-streams counterpart of :mod:`repro.serve.http`:

* request + buffered response (``Content-Length`` bodies), with
  connection reuse when the server answers keep-alive;
* streaming responses (SSE pass-through) — the caller drains the
  reader; the connection is closed afterwards, never reused;
* per-call timeouts, and a pool bounding idle kept-alive connections
  per target.

Scope mirrors the server: no chunked encoding, no TLS, no redirects —
shard traffic is same-deployment JSON over loopback or a trusted LAN.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator

__all__ = ["AioHttpError", "AsyncHttpClient", "HttpResponse"]

#: Cap on a response head (status line + headers).
MAX_RESPONSE_HEAD = 32 * 1024

#: Cap on buffered response bodies (matches the server's request cap).
MAX_RESPONSE_BODY = 64 * 1024 * 1024


class AioHttpError(Exception):
    """Transport-level failure talking to a peer/backend (dead node,
    malformed response, timeout) — never an HTTP status."""


class HttpResponse:
    """One parsed response: status, headers, and body access."""

    def __init__(
        self,
        status: int,
        headers: dict[str, str],
        body: bytes | None,
        reader: asyncio.StreamReader | None = None,
    ) -> None:
        self.status = status
        self.headers = headers
        self.body = b"" if body is None else body
        self._reader = reader
        self._connection: Any = None

    def close(self) -> None:
        """Release a streaming call's connection (no-op when buffered)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def json(self) -> Any:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None

    async def iter_chunks(self, size: int = 4096) -> AsyncIterator[bytes]:
        """Stream the (connection-delimited) body of a streaming call."""
        assert self._reader is not None, "not a streaming response"
        while True:
            chunk = await self._reader.read(size)
            if not chunk:
                return
            yield chunk


class _Connection:
    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer

    def close(self) -> None:
        try:
            self.writer.close()
        except Exception:
            pass


async def _read_head(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str]]:
    head = await reader.readuntil(b"\r\n\r\n")
    if len(head) > MAX_RESPONSE_HEAD:
        raise AioHttpError("response head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise AioHttpError(f"malformed status line: {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise AioHttpError(f"malformed status line: {lines[0]!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return status, headers


class AsyncHttpClient:
    """HTTP/1.1 client for one ``host:port`` target with keep-alive.

    Safe for concurrent use from one event loop: each in-flight call
    holds its own connection; completed keep-alive connections return
    to an idle pool (bounded — extras close).
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 5.0,
        idle_limit: int = 8,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.idle_limit = idle_limit
        self._idle: list[_Connection] = []

    # -- connection management -----------------------------------------
    async def _connect(self) -> _Connection:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.connect_timeout,
            )
        except (OSError, asyncio.TimeoutError) as error:
            raise AioHttpError(
                f"cannot connect to {self.host}:{self.port}: {error}"
            ) from error
        return _Connection(reader, writer)

    def _release(self, connection: _Connection, reusable: bool) -> None:
        if reusable and len(self._idle) < self.idle_limit:
            self._idle.append(connection)
        else:
            connection.close()

    def close(self) -> None:
        """Close every idle connection (in-flight ones close on exit)."""
        while self._idle:
            self._idle.pop().close()

    # -- requests -------------------------------------------------------
    def _head_bytes(
        self,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict[str, str] | None,
    ) -> bytes:
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
        ]
        if body is not None:
            lines.append("Content-Type: application/json")
            lines.append(f"Content-Length: {len(body)}")
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _exchange(
        self,
        connection: _Connection,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict[str, str] | None,
        timeout: float | None,
    ) -> tuple[int, dict[str, str], bytes | None]:
        connection.writer.write(self._head_bytes(method, path, body, headers))
        if body:
            connection.writer.write(body)
        await connection.writer.drain()
        status, response_headers = await asyncio.wait_for(
            _read_head(connection.reader), timeout=timeout
        )
        length = response_headers.get("content-length")
        if length is None:
            return status, response_headers, None  # stream (until EOF)
        size = int(length)
        if size > MAX_RESPONSE_BODY:
            raise AioHttpError(f"response too large ({size} bytes)")
        payload = await asyncio.wait_for(
            connection.reader.readexactly(size), timeout=timeout
        )
        return status, response_headers, payload

    async def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
        timeout: float | None = 30.0,
    ) -> HttpResponse:
        """One buffered request/response exchange.

        Reuses an idle keep-alive connection when one exists; a stale
        reused connection (peer closed it between calls) is retried
        once on a fresh one — the shard API is idempotent, so the
        retry is safe.  Raises :class:`AioHttpError` on transport
        failure (the caller treats the target as dead).
        """
        attempts = 0
        while True:
            reused = bool(self._idle)
            connection = self._idle.pop() if reused else await self._connect()
            attempts += 1
            try:
                status, response_headers, payload = await self._exchange(
                    connection, method, path, body, headers, timeout
                )
            except (
                OSError,
                EOFError,
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
                asyncio.TimeoutError,
                ConnectionError,
            ) as error:
                connection.close()
                if reused and attempts <= 1:
                    continue  # stale keep-alive connection: one retry
                if isinstance(error, asyncio.TimeoutError):
                    raise AioHttpError(
                        f"timeout talking to {self.host}:{self.port}"
                    ) from error
                raise AioHttpError(
                    f"request to {self.host}:{self.port} failed: {error}"
                ) from error
            if payload is None:
                # No Content-Length: body runs to EOF; drain it here.
                chunks = []
                total = 0
                while True:
                    chunk = await connection.reader.read(65536)
                    if not chunk:
                        break
                    total += len(chunk)
                    if total > MAX_RESPONSE_BODY:
                        connection.close()
                        raise AioHttpError("response too large")
                    chunks.append(chunk)
                connection.close()
                return HttpResponse(status, response_headers, b"".join(chunks))
            keep = (
                response_headers.get("connection", "").lower() == "keep-alive"
            )
            self._release(connection, reusable=keep)
            return HttpResponse(status, response_headers, payload)

    async def stream(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
        timeout: float | None = 30.0,
    ) -> HttpResponse:
        """Start a streaming exchange (SSE): returns once the response
        head arrives; the body is consumed via
        :meth:`HttpResponse.iter_chunks`.  Always a fresh connection,
        closed by the caller finishing the iterator (or GC)."""
        connection = await self._connect()
        try:
            connection.writer.write(
                self._head_bytes(method, path, body, headers)
            )
            if body:
                connection.writer.write(body)
            await connection.writer.drain()
            status, response_headers = await asyncio.wait_for(
                _read_head(connection.reader), timeout=timeout
            )
        except (
            OSError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ConnectionError,
        ) as error:
            connection.close()
            raise AioHttpError(
                f"stream to {self.host}:{self.port} failed: {error}"
            ) from error
        response = HttpResponse(
            status, response_headers, None, reader=connection.reader
        )
        # Tie the connection's lifetime to the response object.
        response._connection = connection  # type: ignore[attr-defined]
        return response

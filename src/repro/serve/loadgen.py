"""Service load generator: the ``bench --serve`` tier.

Measures the two numbers that justify the service's existence:

* **Cold latency** — end-to-end ``POST /jobs?wait=`` time for a fresh
  submission (queue + pool + synthesis + cache write).
* **Hot latency** — one client replaying the same submissions
  sequentially against the now-warm content-addressed cache.  Every
  request is a cache hit measured *unloaded* (no queueing on the event
  loop), which is the honest per-request cost of memoisation; the
  distribution comes from the obs
  :class:`~repro.obs.histogram.Histogram` (p50/p90/p99).
* **Throughput under load** — many concurrent clients hammering the
  warm cache; the aggregate request rate plus the latency distribution
  *with* queueing.

The headline gate: median cache-hit latency must be at least
``SPEEDUP_GATE``× faster than median cold synthesis — the artifact
(``BENCH_pr9.json``) records the ratio, and CI fails if memoisation
ever stops paying for itself.

The server under test is a real :class:`~repro.serve.server.SynthesisServer`
on an ephemeral port with throwaway state; clients are plain threads
using :class:`~repro.serve.client.ServeClient` — the same code paths a
production deployment exercises, minus the network between machines.
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.obs.histogram import Histogram

__all__ = [
    "SHARD_SCALING_GATE",
    "SPEEDUP_GATE",
    "run_serve_bench",
    "run_shard_bench",
]

#: Required cold-median / hot-median ratio (cache hits must be at
#: least this much faster than synthesis).
SPEEDUP_GATE = 100.0

#: Target loaded-ingest scaling at 2 shards vs the 1-shard baseline.
#: The artifact always records the measured ratio *and* the machine's
#: fsync-ceiling probe: on a single-core, single-fsync-domain host the
#: device group-commit bound (~1.4-1.5x for two writers) sits below
#: this target, and the bench reports that honestly instead of gaming
#: the workload (see docs/PERFORMANCE.md).
SHARD_SCALING_GATE = 1.6

#: Default artifact of the serve tier.
DEFAULT_SERVE_OUTPUT = "BENCH_pr9.json"

#: Default artifact of the sharded tier.
DEFAULT_SHARD_OUTPUT = "BENCH_pr10.json"

#: Cold-phase submissions: (benchmark, seed) pairs.  Quick keeps CI
#: fast; full covers three assay shapes.
QUICK_PLAN = (("PCR", 1), ("PCR", 2))
FULL_PLAN = (("PCR", 1), ("PCR", 2), ("IVD", 1), ("CPA", 1))


def _boot_server(state_dir: Path):
    """Start a throwaway server on an ephemeral port; returns
    ``(server, thread, client)``."""
    import asyncio

    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig, SynthesisServer

    config = ServeConfig(
        port=0,
        pool_jobs=1,
        inflight=2,
        state_dir=state_dir,
        ledger=None,
        heartbeats=False,
    )
    server = SynthesisServer(config)

    def runner() -> None:
        asyncio.run(server.run(install_signal_handlers=False))

    thread = threading.Thread(
        target=runner, name="repro-serve-bench", daemon=True
    )
    thread.start()
    if not server.ready.wait(30.0):
        raise ReproError("bench server failed to start within 30s")
    client = ServeClient(f"http://127.0.0.1:{server.bound_port}")
    return server, thread, client


def run_serve_bench(
    quick: bool = False,
    output: Path | None = None,
    clients: int | None = None,
    requests: int | None = None,
) -> int:
    """Run the serve tier; writes the artifact and returns an exit code."""
    import sys

    from repro.perf.report import write_bench_json
    from repro.serve.client import ServeClient  # noqa: F401 (re-export)

    plan = QUICK_PLAN if quick else FULL_PLAN
    n_clients = clients if clients is not None else (4 if quick else 8)
    n_requests = requests if requests is not None else (25 if quick else 50)
    artifact = output or Path(DEFAULT_SERVE_OUTPUT)

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        server, thread, client = _boot_server(Path(tmp))
        try:
            submissions = [
                {"benchmark": name, "parameters": {"seed": seed}}
                for name, seed in plan
            ]

            # -- cold phase: first-ever submissions, full synthesis ----
            cold = Histogram()
            for submission in submissions:
                started = time.perf_counter()
                status, _, body = client.submit(submission, wait=600.0)
                elapsed = time.perf_counter() - started
                if status != 200 or body.get("status") != "done":
                    raise ReproError(
                        f"cold submission failed ({status}): {body}"
                    )
                if body.get("cached"):
                    raise ReproError(
                        f"cold submission unexpectedly cached: {submission}"
                    )
                cold.record(elapsed)
                print(
                    f"  cold {submission['benchmark']} "
                    f"seed={submission['parameters']['seed']}: "
                    f"{elapsed:.3f}s",
                    file=sys.stderr,
                )

            # -- hot phase: one client, sequential — unloaded cache-hit
            # latency, the number the speedup gate judges -------------
            hot = Histogram()
            for i in range(n_requests):
                submission = submissions[i % len(submissions)]
                started = time.perf_counter()
                status, _, body = client.submit(submission)
                elapsed = time.perf_counter() - started
                if status != 200 or not body.get("cached"):
                    print(
                        f"error: hot request not a cache hit "
                        f"({status}): {body.get('status')}",
                        file=sys.stderr,
                    )
                    return 1
                hot.record(elapsed)

            # -- load phase: concurrent clients hammer the warm cache —
            # aggregate throughput plus latency *with* queueing -------
            loaded = Histogram()
            load_lock = threading.Lock()
            errors: list[str] = []

            def hammer(worker: int) -> None:
                worker_client = type(client)(
                    f"http://127.0.0.1:{server.bound_port}"
                )
                for i in range(n_requests):
                    submission = submissions[(worker + i) % len(submissions)]
                    started = time.perf_counter()
                    try:
                        status, _, body = worker_client.submit(submission)
                    except ReproError as error:
                        with load_lock:
                            errors.append(str(error))
                        return
                    elapsed = time.perf_counter() - started
                    with load_lock:
                        if status != 200 or not body.get("cached"):
                            errors.append(
                                f"loaded request not a cache hit "
                                f"({status}): {body.get('status')}"
                            )
                            return
                        loaded.record(elapsed)

            wall_started = time.perf_counter()
            workers = [
                threading.Thread(target=hammer, args=(w,), daemon=True)
                for w in range(n_clients)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            wall = time.perf_counter() - wall_started

            if errors:
                print(
                    f"error: load phase failed: {errors[0]}", file=sys.stderr
                )
                return 1

            stats = client.stats()
        finally:
            try:
                client.shutdown()
            except ReproError:
                server.request_shutdown()
            thread.join(timeout=30.0)

    throughput = loaded.count / wall if wall > 0 else 0.0
    speedup = (
        (cold.p50 or 0.0) / hot.p50
        if hot.p50 and cold.p50
        else 0.0
    )
    speedup_ok = speedup >= SPEEDUP_GATE

    payload = {
        "schema": 1,
        "label": artifact.stem,
        "tier": "serve",
        "quick": quick,
        "plan": [{"benchmark": name, "seed": seed} for name, seed in plan],
        "clients": n_clients,
        "requests_per_client": n_requests,
        "cold_seconds": cold.summary(),
        "hot_seconds": hot.summary(),
        "loaded_seconds": loaded.summary(),
        "loaded_wall_seconds": round(wall, 6),
        "throughput_rps": round(throughput, 3),
        "cache": stats["cache"],
        "speedup_p50": round(speedup, 3),
        "speedup_gate": SPEEDUP_GATE,
        "speedup_ok": speedup_ok,
    }
    write_bench_json(artifact, payload)

    print(f"\nserve tier: {len(plan)} cold submissions, "
          f"{hot.count} unloaded + {loaded.count} loaded cache hits "
          f"({n_clients} clients)")
    print(f"  cold p50: {cold.p50:.4f}s   hot p50: {hot.p50 * 1e3:.3f}ms   "
          f"p99: {hot.p99 * 1e3:.3f}ms")
    print(f"  loaded p50: {loaded.p50 * 1e3:.3f}ms   "
          f"p99: {loaded.p99 * 1e3:.3f}ms   "
          f"throughput: {throughput:.1f} req/s")
    print(f"  cache-hit speedup: {speedup:.0f}x "
          f"(gate: >={SPEEDUP_GATE:.0f}x)")
    print(f"wrote {artifact}")
    if not speedup_ok:
        print(
            f"error: cache-hit speedup {speedup:.1f}x below the "
            f"{SPEEDUP_GATE:.0f}x gate",
            file=sys.stderr,
        )
        return 1
    return 0


# ----------------------------------------------------------------------
# Sharded-tier benchmark: ``bench --serve --shards N``
# ----------------------------------------------------------------------
def _extract_result_bytes(raw: bytes) -> bytes:
    """The balanced ``"result"`` object sliced out of a job envelope.

    The envelope around it (job id, timestamps) legitimately differs
    per boot; the result object is spliced verbatim from the content-
    addressed cache and is the byte-identity surface the shard gate
    verifies.
    """
    text = raw.decode("utf-8")
    start = text.index('"result":') + len('"result":')
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[start: i + 1].encode("utf-8")
    raise ReproError("unbalanced result object in job envelope")


def _http_exchange(host: str, port: int, method: str, path: str,
                   body: bytes | None = None) -> tuple[int, bytes]:
    """One fresh-connection HTTP exchange returning raw body bytes."""
    import http.client

    connection = http.client.HTTPConnection(host, port, timeout=600.0)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


class _ShardTier:
    """One booted deployment: N backend processes + a front tier."""

    def __init__(self, state_dir: Path, shards: int) -> None:
        import asyncio
        import socket

        from repro.serve.client import ServeClient
        from repro.serve.shard import (
            ShardConfig,
            ShardFrontTier,
            backend_configs,
            spawn_backend,
            wait_for_http,
        )

        def free_port() -> int:
            probe = socket.socket()
            try:
                probe.bind(("127.0.0.1", 0))
                return probe.getsockname()[1]
            finally:
                probe.close()

        self.shards = shards
        ports = [free_port() for _ in range(shards)]
        self.configs = backend_configs(
            shards, "127.0.0.1", 0, state_dir,
            pool_jobs=1, inflight=2, queue_limit=1_000_000,
            ledger=None, heartbeats=False, ports=ports,
        )
        self.processes = [spawn_backend(c) for c in self.configs]
        for config in self.configs:
            if not wait_for_http(config.host, config.port):
                raise ReproError(
                    f"shard backend {config.self_id} failed to start"
                )
        self.admins = [
            ServeClient(f"http://{c.host}:{c.port}") for c in self.configs
        ]
        self.front = ShardFrontTier(ShardConfig(
            host="127.0.0.1", port=0,
            backends=tuple(
                (c.self_id, f"{c.host}:{c.port}") for c in self.configs
            ),
            probe_interval=0.5,
        ))
        self.front_thread = threading.Thread(
            target=lambda: __import__("asyncio").run(
                self.front.run(install_signal_handlers=False)
            ),
            name="repro-shard-bench-front", daemon=True,
        )
        self.front_thread.start()
        if not self.front.ready.wait(30.0):
            raise ReproError("shard front tier failed to start")
        self.host = "127.0.0.1"
        self.port = self.front.bound_port

    def pause(self) -> None:
        for admin in self.admins:
            admin._request("POST", "/admin/pause")

    def backend_stats(self) -> list[dict[str, Any]]:
        return [admin.stats() for admin in self.admins]

    def stop(self) -> None:
        for admin in self.admins:
            try:
                admin.shutdown()
            except ReproError:
                pass
            admin.close()
        for process in self.processes:
            process.join(timeout=30.0)
            if process.is_alive():  # pragma: no cover - hung backend
                process.kill()
                process.join(timeout=5.0)
        self.front.request_shutdown()
        self.front_thread.join(timeout=30.0)


def _fsync_worker(path: str, stop_at: float, counter: Any) -> None:
    """Tight append+fsync loop — the device-level scaling probe."""
    import os

    count = 0
    with open(path, "ab", buffering=0) as stream:
        line = b'{"kind":"probe","payload":"' + b"x" * 64 + b'"}\n'
        while time.monotonic() < stop_at:
            stream.write(line)
            os.fsync(stream.fileno())
            count += 1
    counter.value = count


def _fsync_ceiling(root: Path, seconds: float = 0.4) -> dict[str, Any]:
    """Measured aggregate fsync rate for 1 and 2 concurrent writers.

    This is the storage device's group-commit ceiling for durable
    appends — the hard upper bound on what sharding the journal across
    processes can deliver on this host, independent of any HTTP or
    parsing cost.  The artifact embeds it so a below-target scaling
    row is distinguishable from a tier inefficiency.
    """
    import multiprocessing

    rates: dict[int, float] = {}
    for procs in (1, 2):
        counters = [multiprocessing.Value("i", 0) for _ in range(procs)]
        stop_at = time.monotonic() + seconds
        workers = [
            multiprocessing.Process(
                target=_fsync_worker,
                args=(str(root / f"probe-{procs}-{i}.jsonl"), stop_at,
                      counters[i]),
            )
            for i in range(procs)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        rates[procs] = sum(c.value for c in counters) / seconds
    scaling = rates[2] / rates[1] if rates[1] else 0.0
    return {
        "writers_1_per_s": round(rates[1], 1),
        "writers_2_per_s": round(rates[2], 1),
        "device_scaling_2x": round(scaling, 3),
    }


def _pipelined_ingest(
    host: str,
    port: int,
    submissions: list[dict[str, Any]],
    *,
    workers: int = 2,
    batch_size: int = 50,
    depth: int = 3,
) -> tuple[float, int]:
    """Drive ``POST /jobs/batch`` flat out; returns ``(wall_s, accepted)``.

    Requests are pre-serialised and pipelined ``depth`` deep over
    keep-alive sockets so client-side CPU and round-trip bubbles stay
    out of the measurement; response bodies are parsed after the clock
    stops for the same reason.
    """
    import json as _json
    import socket

    def make_request(items: list[dict[str, Any]]) -> bytes:
        body = _json.dumps({"jobs": items}, separators=(",", ":")).encode()
        return (
            f"POST /jobs/batch HTTP/1.1\r\nHost: bench\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode() + body

    def read_response(sock: Any, buffer: bytes) -> tuple[int, bytes, bytes]:
        while b"\r\n\r\n" not in buffer:
            chunk = sock.recv(65536)
            if not chunk:
                raise ReproError("backend closed mid-response")
            buffer += chunk
        head, _, buffer = buffer.partition(b"\r\n\r\n")
        status = int(head.split(b" ", 2)[1])
        length = 0
        for line in head.split(b"\r\n")[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value)
        while len(buffer) < length:
            chunk = sock.recv(65536)
            if not chunk:
                raise ReproError("backend closed mid-body")
            buffer += chunk
        return status, buffer[:length], buffer[length:]

    requests = [
        make_request(submissions[i: i + batch_size])
        for i in range(0, len(submissions) - batch_size + 1, batch_size)
    ]
    per_worker = (len(requests) + workers - 1) // workers
    chunks = [
        requests[w * per_worker: (w + 1) * per_worker]
        for w in range(workers)
    ]
    chunks = [chunk for chunk in chunks if chunk]
    bodies: list[bytes] = []
    errors: list[str] = []
    lock = threading.Lock()

    def drive(chunk: list[bytes]) -> None:
        try:
            sock = socket.create_connection((host, port), timeout=120.0)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            try:
                buffer = b""
                sent = got = inflight = 0
                received: list[bytes] = []
                while got < len(chunk):
                    while sent < len(chunk) and inflight < depth:
                        sock.sendall(chunk[sent])
                        sent += 1
                        inflight += 1
                    status, body, buffer = read_response(sock, buffer)
                    got += 1
                    inflight -= 1
                    if status != 200:
                        raise ReproError(
                            f"batch ingest got HTTP {status}: {body[:200]!r}"
                        )
                    received.append(body)
                with lock:
                    bodies.extend(received)
            finally:
                sock.close()
        except Exception as error:  # noqa: BLE001 - reported to caller
            with lock:
                errors.append(str(error))

    threads = [
        threading.Thread(target=drive, args=(chunk,), daemon=True)
        for chunk in chunks
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise ReproError(f"loaded ingest failed: {errors[0]}")
    import json as _json

    accepted = 0
    for body in bodies:
        outcome = _json.loads(body)
        accepted += outcome.get("accepted", 0) + outcome.get("cached", 0)
        if outcome.get("rejected"):
            raise ReproError(
                f"loaded ingest saw {outcome['rejected']} rejections "
                "(queue limit too low for the bench)"
            )
    return wall, accepted


def run_shard_bench(
    max_shards: int = 4,
    quick: bool = False,
    output: Path | None = None,
) -> int:
    """Benchmark the sharded tier at 1..``max_shards`` (powers of two).

    Per shard count: boot N backends + front tier, verify that the
    front and every backend (via cache peering) serve byte-identical
    result bytes — and that the timing-excluded ``solution_digest``
    agrees across shard counts — then measure keep-alive vs
    fresh-connection hit latency at the 1-shard baseline, then pause execution and measure durable-ingest
    throughput through the front with pipelined clients (best of
    ``trials``).  Writes ``BENCH_pr10.json``.

    Exit code is 0 unless byte-identity fails or the tier errors; the
    scaling gate verdict is recorded in the artifact (with the device
    fsync-ceiling probe for context) rather than failing the run,
    because on a single-core/single-disk host the ceiling itself can
    sit below the target.
    """
    import json as _json
    import sys

    from repro.perf.report import write_bench_json
    from repro.serve.client import ServeClient

    shard_counts = [n for n in (1, 2, 4) if n <= max_shards]
    artifact = output or Path(DEFAULT_SHARD_OUTPUT)
    items = 400 if quick else 900
    trials = 2 if quick else 3
    hot_requests = 20 if quick else 40
    identity_plan = [
        {"benchmark": "PCR", "parameters": {"seed": 901}},
        {"benchmark": "PCR", "parameters": {"seed": 902}},
    ]

    rows: list[dict[str, Any]] = []
    identity: dict[int, list[str]] = {}
    keepalive: dict[str, Any] | None = None

    with tempfile.TemporaryDirectory(prefix="repro-shard-bench-") as tmp:
        root = Path(tmp)
        ceiling = _fsync_ceiling(root)
        for shards in shard_counts:
            tier = _ShardTier(root / f"n{shards}", shards)
            try:
                # -- identity: cold synthesis via the front, then the
                # same submission served by *every* path — front proxy
                # and each backend directly (the non-owners answer via
                # cache peering) — must replay the result byte for
                # byte.  Across shard counts the executions are
                # independent, so the raw bytes differ only in the
                # recorded timings; ``solution_digest`` (timing-
                # excluded) must still agree ---------------------------
                digests: list[str] = []
                for submission in identity_plan:
                    body = _json.dumps(submission).encode()
                    status, raw = _http_exchange(
                        tier.host, tier.port, "POST", "/jobs?wait=600",
                        body,
                    )
                    if status != 200:
                        raise ReproError(
                            f"cold identity run failed ({status}): "
                            f"{raw[:200]!r}"
                        )
                    served: list[bytes] = []
                    ports = [tier.port] + [
                        c.port for c in tier.configs
                    ]
                    for port in ports:
                        status, raw = _http_exchange(
                            tier.host, port, "POST", "/jobs", body
                        )
                        compact = raw.replace(b" ", b"")
                        if status != 200 or b'"cached":true' not in compact:
                            raise ReproError(
                                f"identity re-POST on :{port} was not "
                                f"a cache hit ({status})"
                            )
                        served.append(_extract_result_bytes(raw))
                    if any(bytes_ != served[0] for bytes_ in served[1:]):
                        raise ReproError(
                            "served result bytes differ between the "
                            "front and a backend (cache peering broke "
                            "byte identity)"
                        )
                    document = _json.loads(served[0])
                    digests.append(document["solution_digest"])
                identity[shards] = digests

                # -- keep-alive satellite: measured at the baseline ----
                if shards == 1:
                    url = f"http://{tier.host}:{tier.port}"
                    kept = ServeClient(url)
                    warm = Histogram()
                    for i in range(hot_requests):
                        started = time.perf_counter()
                        kept.submit(identity_plan[i % len(identity_plan)])
                        warm.record(time.perf_counter() - started)
                    kept.close()
                    fresh = Histogram()
                    for i in range(hot_requests):
                        one_shot = ServeClient(url)
                        started = time.perf_counter()
                        one_shot.submit(
                            identity_plan[i % len(identity_plan)]
                        )
                        fresh.record(time.perf_counter() - started)
                        one_shot.close()
                    keepalive = {
                        "keepalive_p50_ms": round(warm.p50 * 1e3, 3),
                        "fresh_p50_ms": round(fresh.p50 * 1e3, 3),
                        "delta_p50_ms": round(
                            (fresh.p50 - warm.p50) * 1e3, 3
                        ),
                    }

                # -- loaded ingest: pause execution, hammer the front --
                tier.pause()
                best_rate, best_wall = 0.0, 0.0
                for trial in range(trials + 1):
                    base = 10_000 + trial * items
                    submissions = [
                        {"benchmark": "PCR",
                         "parameters": {"seed": base + i}}
                        for i in range(items)
                    ]
                    wall, accepted = _pipelined_ingest(
                        tier.host, tier.port, submissions, workers=4
                    )
                    if accepted < items - 50:
                        raise ReproError(
                            f"loaded ingest lost items: {accepted}/{items}"
                        )
                    if trial == 0:
                        continue  # warmup: connections, fragments, GC
                    rate = accepted / wall
                    if rate > best_rate:
                        best_rate, best_wall = rate, wall
                backends = tier.backend_stats()
                peer_hits = sum(
                    b["counters"].get("serve.cache_peer_hits", 0)
                    for b in backends
                )
                peer_misses = sum(
                    b["counters"].get("serve.cache_peer_misses", 0)
                    for b in backends
                )
                rows.append({
                    "shards": shards,
                    "loaded_items_per_s": round(best_rate, 1),
                    "loaded_wall_s": round(best_wall, 4),
                    "loaded_items": items,
                    "trials": trials,
                    "cache_peer_hits": peer_hits,
                    "cache_peer_misses": peer_misses,
                    "solution_digests": identity[shards],
                })
                print(
                    f"  shards={shards}: loaded ingest "
                    f"{best_rate:.0f} items/s "
                    f"(peer probes: {peer_hits + peer_misses})",
                    file=sys.stderr,
                )
            finally:
                tier.stop()

    reference = identity[shard_counts[0]]
    identity_ok = all(
        identity[shards] == reference for shards in shard_counts
    )
    by_shards = {row["shards"]: row for row in rows}
    scaling_2x = 0.0
    if 1 in by_shards and 2 in by_shards:
        baseline = by_shards[1]["loaded_items_per_s"]
        if baseline:
            scaling_2x = by_shards[2]["loaded_items_per_s"] / baseline
    scaling_ok = scaling_2x >= SHARD_SCALING_GATE
    ceiling_2x = ceiling["device_scaling_2x"]
    ceiling_limited = (not scaling_ok) and ceiling_2x < SHARD_SCALING_GATE

    payload = {
        "schema": 1,
        "label": artifact.stem,
        "tier": "shard",
        "quick": quick,
        "shard_counts": shard_counts,
        "rows": rows,
        "identity_ok": identity_ok,
        "keepalive": keepalive,
        "scaling_2x": round(scaling_2x, 3),
        "scaling_gate": SHARD_SCALING_GATE,
        "scaling_ok": scaling_ok,
        "fsync_ceiling": ceiling,
        "ceiling_limited": ceiling_limited,
    }
    write_bench_json(artifact, payload)

    print(f"\nshard tier: counts {shard_counts}, "
          f"{items} ingest items/trial, best of {trials}")
    for row in rows:
        print(f"  shards={row['shards']}: "
              f"{row['loaded_items_per_s']:.0f} items/s")
    print(f"  2-shard scaling: {scaling_2x:.2f}x "
          f"(gate: >={SHARD_SCALING_GATE}x, device fsync ceiling: "
          f"{ceiling_2x:.2f}x)")
    if keepalive:
        print(f"  keep-alive hit p50: {keepalive['keepalive_p50_ms']}ms "
              f"vs fresh-connection {keepalive['fresh_p50_ms']}ms")
    print(f"  identity (serve paths + cross-shard-count solutions): "
          f"{'ok' if identity_ok else 'FAILED'}")
    print(f"wrote {artifact}")
    if not identity_ok:
        print(
            "error: solution digests differ across shard counts",
            file=sys.stderr,
        )
        return 1
    if not scaling_ok:
        note = (
            " (device fsync ceiling on this host is below the target; "
            "see fsync_ceiling in the artifact)"
            if ceiling_limited else ""
        )
        print(
            f"warning: 2-shard scaling {scaling_2x:.2f}x below the "
            f"{SHARD_SCALING_GATE}x target{note}",
            file=sys.stderr,
        )
    return 0

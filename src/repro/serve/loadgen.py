"""Service load generator: the ``bench --serve`` tier.

Measures the two numbers that justify the service's existence:

* **Cold latency** — end-to-end ``POST /jobs?wait=`` time for a fresh
  submission (queue + pool + synthesis + cache write).
* **Hot latency** — one client replaying the same submissions
  sequentially against the now-warm content-addressed cache.  Every
  request is a cache hit measured *unloaded* (no queueing on the event
  loop), which is the honest per-request cost of memoisation; the
  distribution comes from the obs
  :class:`~repro.obs.histogram.Histogram` (p50/p90/p99).
* **Throughput under load** — many concurrent clients hammering the
  warm cache; the aggregate request rate plus the latency distribution
  *with* queueing.

The headline gate: median cache-hit latency must be at least
``SPEEDUP_GATE``× faster than median cold synthesis — the artifact
(``BENCH_pr9.json``) records the ratio, and CI fails if memoisation
ever stops paying for itself.

The server under test is a real :class:`~repro.serve.server.SynthesisServer`
on an ephemeral port with throwaway state; clients are plain threads
using :class:`~repro.serve.client.ServeClient` — the same code paths a
production deployment exercises, minus the network between machines.
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.obs.histogram import Histogram

__all__ = ["SPEEDUP_GATE", "run_serve_bench"]

#: Required cold-median / hot-median ratio (cache hits must be at
#: least this much faster than synthesis).
SPEEDUP_GATE = 100.0

#: Default artifact of the serve tier.
DEFAULT_SERVE_OUTPUT = "BENCH_pr9.json"

#: Cold-phase submissions: (benchmark, seed) pairs.  Quick keeps CI
#: fast; full covers three assay shapes.
QUICK_PLAN = (("PCR", 1), ("PCR", 2))
FULL_PLAN = (("PCR", 1), ("PCR", 2), ("IVD", 1), ("CPA", 1))


def _boot_server(state_dir: Path):
    """Start a throwaway server on an ephemeral port; returns
    ``(server, thread, client)``."""
    import asyncio

    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig, SynthesisServer

    config = ServeConfig(
        port=0,
        pool_jobs=1,
        inflight=2,
        state_dir=state_dir,
        ledger=None,
        heartbeats=False,
    )
    server = SynthesisServer(config)

    def runner() -> None:
        asyncio.run(server.run(install_signal_handlers=False))

    thread = threading.Thread(
        target=runner, name="repro-serve-bench", daemon=True
    )
    thread.start()
    if not server.ready.wait(30.0):
        raise ReproError("bench server failed to start within 30s")
    client = ServeClient(f"http://127.0.0.1:{server.bound_port}")
    return server, thread, client


def run_serve_bench(
    quick: bool = False,
    output: Path | None = None,
    clients: int | None = None,
    requests: int | None = None,
) -> int:
    """Run the serve tier; writes the artifact and returns an exit code."""
    import sys

    from repro.perf.report import write_bench_json
    from repro.serve.client import ServeClient  # noqa: F401 (re-export)

    plan = QUICK_PLAN if quick else FULL_PLAN
    n_clients = clients if clients is not None else (4 if quick else 8)
    n_requests = requests if requests is not None else (25 if quick else 50)
    artifact = output or Path(DEFAULT_SERVE_OUTPUT)

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        server, thread, client = _boot_server(Path(tmp))
        try:
            submissions = [
                {"benchmark": name, "parameters": {"seed": seed}}
                for name, seed in plan
            ]

            # -- cold phase: first-ever submissions, full synthesis ----
            cold = Histogram()
            for submission in submissions:
                started = time.perf_counter()
                status, _, body = client.submit(submission, wait=600.0)
                elapsed = time.perf_counter() - started
                if status != 200 or body.get("status") != "done":
                    raise ReproError(
                        f"cold submission failed ({status}): {body}"
                    )
                if body.get("cached"):
                    raise ReproError(
                        f"cold submission unexpectedly cached: {submission}"
                    )
                cold.record(elapsed)
                print(
                    f"  cold {submission['benchmark']} "
                    f"seed={submission['parameters']['seed']}: "
                    f"{elapsed:.3f}s",
                    file=sys.stderr,
                )

            # -- hot phase: one client, sequential — unloaded cache-hit
            # latency, the number the speedup gate judges -------------
            hot = Histogram()
            for i in range(n_requests):
                submission = submissions[i % len(submissions)]
                started = time.perf_counter()
                status, _, body = client.submit(submission)
                elapsed = time.perf_counter() - started
                if status != 200 or not body.get("cached"):
                    print(
                        f"error: hot request not a cache hit "
                        f"({status}): {body.get('status')}",
                        file=sys.stderr,
                    )
                    return 1
                hot.record(elapsed)

            # -- load phase: concurrent clients hammer the warm cache —
            # aggregate throughput plus latency *with* queueing -------
            loaded = Histogram()
            load_lock = threading.Lock()
            errors: list[str] = []

            def hammer(worker: int) -> None:
                worker_client = type(client)(
                    f"http://127.0.0.1:{server.bound_port}"
                )
                for i in range(n_requests):
                    submission = submissions[(worker + i) % len(submissions)]
                    started = time.perf_counter()
                    try:
                        status, _, body = worker_client.submit(submission)
                    except ReproError as error:
                        with load_lock:
                            errors.append(str(error))
                        return
                    elapsed = time.perf_counter() - started
                    with load_lock:
                        if status != 200 or not body.get("cached"):
                            errors.append(
                                f"loaded request not a cache hit "
                                f"({status}): {body.get('status')}"
                            )
                            return
                        loaded.record(elapsed)

            wall_started = time.perf_counter()
            workers = [
                threading.Thread(target=hammer, args=(w,), daemon=True)
                for w in range(n_clients)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            wall = time.perf_counter() - wall_started

            if errors:
                print(
                    f"error: load phase failed: {errors[0]}", file=sys.stderr
                )
                return 1

            stats = client.stats()
        finally:
            try:
                client.shutdown()
            except ReproError:
                server.request_shutdown()
            thread.join(timeout=30.0)

    throughput = loaded.count / wall if wall > 0 else 0.0
    speedup = (
        (cold.p50 or 0.0) / hot.p50
        if hot.p50 and cold.p50
        else 0.0
    )
    speedup_ok = speedup >= SPEEDUP_GATE

    payload = {
        "schema": 1,
        "label": artifact.stem,
        "tier": "serve",
        "quick": quick,
        "plan": [{"benchmark": name, "seed": seed} for name, seed in plan],
        "clients": n_clients,
        "requests_per_client": n_requests,
        "cold_seconds": cold.summary(),
        "hot_seconds": hot.summary(),
        "loaded_seconds": loaded.summary(),
        "loaded_wall_seconds": round(wall, 6),
        "throughput_rps": round(throughput, 3),
        "cache": stats["cache"],
        "speedup_p50": round(speedup, 3),
        "speedup_gate": SPEEDUP_GATE,
        "speedup_ok": speedup_ok,
    }
    write_bench_json(artifact, payload)

    print(f"\nserve tier: {len(plan)} cold submissions, "
          f"{hot.count} unloaded + {loaded.count} loaded cache hits "
          f"({n_clients} clients)")
    print(f"  cold p50: {cold.p50:.4f}s   hot p50: {hot.p50 * 1e3:.3f}ms   "
          f"p99: {hot.p99 * 1e3:.3f}ms")
    print(f"  loaded p50: {loaded.p50 * 1e3:.3f}ms   "
          f"p99: {loaded.p99 * 1e3:.3f}ms   "
          f"throughput: {throughput:.1f} req/s")
    print(f"  cache-hit speedup: {speedup:.0f}x "
          f"(gate: >={SPEEDUP_GATE:.0f}x)")
    print(f"wrote {artifact}")
    if not speedup_ok:
        print(
            f"error: cache-hit speedup {speedup:.1f}x below the "
            f"{SPEEDUP_GATE:.0f}x gate",
            file=sys.stderr,
        )
        return 1
    return 0

"""Job execution over the process pool: deadlines, death, retries.

One job = one synthesis run in a :class:`~repro.parallel.pool.PoolSession`
worker.  The executor owns the long-lived session and gives the server
the semantics a service needs on top of the pool's wave contract:

* **Per-job deadlines** — a wave timeout raises
  :class:`~repro.errors.ParallelTimeoutError`; the job *fails* (it blew
  its own budget — no retry) and the session is :meth:`reset
  <repro.parallel.pool.PoolSession.reset>` so the poisoned pool never
  wedges the server.
* **Worker death is survivable** — any other
  :class:`~repro.errors.ParallelExecutionError` (a worker killed by the
  OOM killer, a deadline kill on a *sibling* wave recycling the shared
  workers) resets the session and retries the job, up to ``retries``
  times.  Queued jobs are untouched; only the interrupted execution
  repeats — which is safe, because synthesis is deterministic.
* **Domain errors stay domain errors** — a
  :class:`~repro.errors.ReproError` raised *inside* the worker (bad
  submission values, strict-check violations) crosses the pool as data
  and re-raises with its original type; the server maps it to a failed
  job, never a retry.

``pool_jobs=1`` runs jobs inline in the executor thread (no worker
processes): deadlines and death-recovery are then inert, which is the
documented trade-off of a single-process deployment.

Workers bridge progress out through the existing obs heartbeat channel
(:class:`~repro.obs.live.HeartbeatRelay` watching ``sa.step`` /
``route.task`` events); the server pumps those beats into per-job SSE
streams.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.errors import (
    ParallelExecutionError,
    ParallelTimeoutError,
    ReproError,
)
from repro.obs.instrument import Instrumentation, InstrumentationSnapshot
from repro.obs.live import HeartbeatSpec
from repro.parallel.pool import PoolSession

__all__ = [
    "DEFAULT_RETRIES",
    "JobDeadlineError",
    "JobExecutor",
    "JobOutcome",
    "JobTask",
    "execute_submission",
]

#: Default pool-rebuild retries per job before giving up.
DEFAULT_RETRIES = 3


class JobDeadlineError(ReproError):
    """Raised when a job exceeds its deadline (the job fails; the
    server's worker pool is recycled and keeps serving)."""


@dataclass(frozen=True)
class JobTask:
    """Picklable pool payload: one submission document to synthesize."""

    document: dict[str, Any]
    #: Live-progress relay recipe (queue proxy + job label); ``None``
    #: runs silent.
    heartbeat: HeartbeatSpec | None = None


@dataclass(frozen=True)
class JobOutcome:
    """What one executed job ships back across the pool boundary."""

    #: Canonical result-document text (what the cache stores verbatim).
    result_text: str
    #: Schema-1 ledger record for the run (``source`` added server-side).
    record: dict[str, Any]
    #: Worker telemetry, absorbed into the server's instrumentation.
    snapshot: InstrumentationSnapshot


def execute_submission(task: JobTask) -> JobOutcome:
    """Worker entry point: parse, synthesize, serialise.

    Runs with a private :class:`~repro.obs.Instrumentation` whose sink
    is the heartbeat relay (when wired), so SA convergence and routing
    progress stream back to the server while histograms/counters ride
    home in the snapshot.
    """
    from repro.core.baseline import synthesize_baseline
    from repro.core.digest import canonical_json
    from repro.core.synthesizer import synthesize_problem
    from repro.obs.ledger import build_record
    from repro.serve.protocol import parse_submission, result_document

    submission = parse_submission(task.document)
    relay = task.heartbeat.build() if task.heartbeat is not None else None
    instrumentation = Instrumentation(sink=relay)
    problem = submission.problem()
    try:
        if submission.algorithm == "baseline":
            result = synthesize_baseline(
                problem.assay,
                problem.allocation,
                problem.parameters,
                instrumentation=instrumentation,
            )
        else:
            result = synthesize_problem(
                problem, instrumentation=instrumentation
            )
    finally:
        if relay is not None:
            relay.close()
    text = canonical_json(result_document(result, submission.digest))
    record = build_record(
        result, histograms=instrumentation.histogram_summaries()
    )
    return JobOutcome(
        result_text=text,
        record=record,
        snapshot=instrumentation.snapshot(),
    )


class JobExecutor:
    """The server's bridge from accepted jobs to pool executions."""

    def __init__(
        self,
        pool_jobs: int = 1,
        retries: int = DEFAULT_RETRIES,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.session = PoolSession(jobs=pool_jobs)
        self.retries = max(0, retries)
        self.instrumentation = instrumentation
        self._lock = threading.Lock()

    @property
    def pool_jobs(self) -> int:
        return self.session.jobs

    def close(self) -> None:
        self.session.close()

    def _count(self, name: str) -> None:
        if self.instrumentation is not None:
            self.instrumentation.count(name)

    def execute(
        self,
        document: dict[str, Any],
        deadline: float | None = None,
        heartbeat: HeartbeatSpec | None = None,
    ) -> JobOutcome:
        """Run one job to completion (blocking; call from a thread).

        Raises :class:`JobDeadlineError` past *deadline* seconds,
        re-raises worker domain errors with their original type, and
        raises :class:`~repro.errors.ParallelExecutionError` only after
        ``retries`` pool rebuilds failed in a row.
        """
        task = JobTask(document=document, heartbeat=heartbeat)
        attempt = 0
        while True:
            try:
                [outcome] = self.session.run(
                    execute_submission, [task], timeout=deadline
                )
                return outcome
            except ParallelTimeoutError as error:
                # The deadline kill poisoned (and terminated) the shared
                # pool; recycle it so the *next* job gets fresh workers.
                self._reset()
                self._count("serve.deadline_kills")
                raise JobDeadlineError(
                    f"job exceeded its {deadline:.1f}s deadline "
                    f"(worker pool recycled): {error}"
                ) from None
            except ParallelExecutionError as error:
                # Pool infrastructure died under this wave (worker
                # death, or a sibling's deadline kill took the shared
                # workers).  Rebuild and retry — synthesis is
                # deterministic, so re-running is always safe.
                self._reset()
                attempt += 1
                self._count("serve.pool_rebuilds")
                if attempt > self.retries:
                    raise ParallelExecutionError(
                        f"job failed after {attempt} pool rebuild(s): "
                        f"{error}"
                    ) from error
                self._count("serve.jobs_retried")

    def _reset(self) -> None:
        with self._lock:
            self.session.reset()

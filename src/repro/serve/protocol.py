"""Submission and result documents of the synthesis service.

A *submission* is the JSON body of ``POST /jobs``: either a registered
benchmark name or an inline assay document plus allocation, with an
optional subset of :class:`~repro.core.problem.SynthesisParameters`
overrides and a flow selector::

    {"benchmark": "PCR", "parameters": {"seed": 3, "check": "strict"}}

    {"assay": {...repro-assay JSON...},
     "allocation": {"mixers": 2, "heaters": 1, "filters": 0,
                    "detectors": 1},
     "parameters": {"seed": 1},
     "algorithm": "ours",
     "job_id": "client-chosen-idempotency-key"}

:func:`parse_submission` validates the document (through the same
machinery the CLI uses — bad assays, allocations, or parameter values
fail with the library's own error messages), canonicalises it, and
computes its content address.  The synthesis flow is deterministic for
a fixed problem, so the address doubles as the result-cache key:
submissions with equal digests are *the same job*.

``jobs`` (process-pool width) is rejected in submissions: parallelism
is the server's resource decision, never the client's, and the digest
excludes it by construction (see :mod:`repro.core.digest`).

The *result document* (:func:`result_document`) is the canonical JSON
value a finished job serialises to.  Its canonical text — produced by
:func:`repro.core.digest.canonical_json` — is what the cache stores,
so a cache hit replays the original run's result byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Mapping

from repro.core.digest import (
    DIGEST_EXCLUDED_PARAMETERS,
    canonical_json,
    problem_digest,
    problem_document,
    text_digest,
)
from repro.errors import ReproError

__all__ = [
    "ALGORITHMS",
    "RESULT_SCHEMA_VERSION",
    "Submission",
    "SubmissionError",
    "parse_submission",
    "result_document",
]

#: Synthesis flows a submission may select.
ALGORITHMS = ("ours", "baseline")

#: Version stamp of the result document.
RESULT_SCHEMA_VERSION = 1

#: Parameters a submission may not set: pool width belongs to the
#: server (and is digest-excluded anyway).
_FORBIDDEN_PARAMETERS = frozenset({"jobs"})

#: Maximum accepted client job-id length (it becomes a journal key and
#: part of URLs).
_MAX_JOB_ID = 120


class SubmissionError(ReproError):
    """Raised when a submission document is malformed (HTTP 400)."""


#: Lazily-computed (once) views of the ``SynthesisParameters`` schema —
#: recomputing ``dataclasses.fields`` per submission is measurable on
#: the service accept path.
_PARAMETER_NAMES: frozenset[str] | None = None
_DIGEST_FIELDS: tuple[str, ...] | None = None


def _parameter_names() -> frozenset[str]:
    global _PARAMETER_NAMES
    if _PARAMETER_NAMES is None:
        from repro.core.problem import SynthesisParameters

        _PARAMETER_NAMES = frozenset(
            f.name for f in dataclass_fields(SynthesisParameters)
        )
    return _PARAMETER_NAMES


def _digest_fields() -> tuple[str, ...]:
    global _DIGEST_FIELDS
    if _DIGEST_FIELDS is None:
        from repro.core.problem import SynthesisParameters

        _DIGEST_FIELDS = tuple(
            f.name
            for f in dataclass_fields(SynthesisParameters)
            if f.name not in DIGEST_EXCLUDED_PARAMETERS
        )
    return _DIGEST_FIELDS


@dataclass(frozen=True)
class Submission:
    """One validated, canonicalised assay submission.

    ``document`` re-parses to an equal submission (it is what the job
    journal stores), ``digest`` is the problem content address, and
    ``cache_key`` namespaces it by algorithm — the baseline flow must
    never serve a cache entry produced by the proposed flow.
    """

    document: dict[str, Any]
    algorithm: str
    digest: str
    cache_key: str
    job_id: str | None = None

    @property
    def benchmark(self) -> str:
        """The assay's display name (benchmark name or assay name)."""
        if "benchmark" in self.document:
            return str(self.document["benchmark"])
        return str(self.document["assay"].get("name", "assay"))

    def problem(self):
        """Build the :class:`~repro.core.problem.SynthesisProblem`."""
        return _build_problem(self.document)


def _check_benchmark_name(name: str) -> None:
    from repro.benchmarks.registry import benchmark_names

    if name not in benchmark_names():
        raise SubmissionError(
            f"unknown benchmark {name!r}; expected one of "
            f"{', '.join(benchmark_names())}"
        )


def _build_problem(document: Mapping[str, Any]):
    from repro.assay.io import assay_from_dict
    from repro.benchmarks.registry import get_benchmark
    from repro.components.allocation import Allocation
    from repro.core.problem import SynthesisParameters, SynthesisProblem

    if "benchmark" in document:
        name = document["benchmark"]
        _check_benchmark_name(name)
        case = get_benchmark(name)
        assay, allocation = case.assay, case.allocation
    else:
        assay = assay_from_dict(document["assay"])
        alloc_doc = document.get("allocation") or {}
        allocation = Allocation(
            mixers=int(alloc_doc.get("mixers", 0)),
            heaters=int(alloc_doc.get("heaters", 0)),
            filters=int(alloc_doc.get("filters", 0)),
            detectors=int(alloc_doc.get("detectors", 0)),
        )
    parameters = SynthesisParameters(**document.get("parameters", {}))
    return SynthesisProblem(
        assay=assay, allocation=allocation, parameters=parameters
    )


#: Benchmark name -> ``(allocation, assay, grid)`` canonical-JSON
#: fragments.  A registered benchmark's assay/allocation half of the
#: digest document never varies between submissions, so it is rendered
#: once and spliced into the canonical text thereafter; only immutable
#: strings are cached, so no shared mutable state leaks between
#: requests.  Populating an entry builds the full problem once, which
#: also runs the assay-vs-allocation feasibility check that is likewise
#: parameter-independent.
_BENCHMARK_FRAGMENTS: dict[str, tuple[str, str, str]] = {}


def _benchmark_fragments(name: str) -> tuple[str, str, str]:
    fragments = _BENCHMARK_FRAGMENTS.get(name)
    if fragments is None:
        document = problem_document(_build_problem({"benchmark": name}))
        fragments = (
            canonical_json(document["allocation"]),
            canonical_json(document["assay"]),
            canonical_json(document["grid"]),
        )
        _BENCHMARK_FRAGMENTS[name] = fragments
    return fragments


def _digest_submission(document: Mapping[str, Any]) -> str:
    """Content address of *document*, validating it along the way.

    Equivalent to ``problem_digest(_build_problem(document))`` — the
    top-level keys of the digest document sort as ``allocation``,
    ``assay``, ``grid``, ``parameters``, so splicing independently
    canonicalised fragments reproduces
    :func:`~repro.core.digest.canonical_json` of the whole byte for
    byte (pinned by tests) — but for benchmark submissions the
    assay-side fragments come from :data:`_BENCHMARK_FRAGMENTS` and
    only the parameters are validated and rendered per call.
    """
    if "benchmark" not in document:
        return problem_digest(_build_problem(document))
    from repro.core.problem import SynthesisParameters

    name = document["benchmark"]
    _check_benchmark_name(name)
    allocation_txt, assay_txt, grid_txt = _benchmark_fragments(name)
    parameters = SynthesisParameters(**document.get("parameters", {}))
    parameters_txt = canonical_json(
        {name: getattr(parameters, name) for name in _digest_fields()}
    )
    return text_digest(
        '{"allocation":%s,"assay":%s,"grid":%s,"parameters":%s}'
        % (allocation_txt, assay_txt, grid_txt, parameters_txt)
    )


def parse_submission(data: Any) -> Submission:
    """Validate and canonicalise one submission document.

    Raises :class:`SubmissionError` for structural problems; parameter
    and assay value errors surface as the library's own
    :class:`~repro.errors.ReproError` subclasses (the server maps any
    of them to HTTP 400).
    """
    if not isinstance(data, Mapping):
        raise SubmissionError(
            f"submission must be a JSON object, got {type(data).__name__}"
        )
    unknown = set(data) - {
        "benchmark", "assay", "allocation", "parameters", "algorithm",
        "job_id",
    }
    if unknown:
        raise SubmissionError(
            f"unknown submission field(s): {', '.join(sorted(unknown))}"
        )
    if ("benchmark" in data) == ("assay" in data):
        raise SubmissionError(
            "submission needs exactly one of 'benchmark' or 'assay'"
        )
    algorithm = data.get("algorithm", "ours")
    if algorithm not in ALGORITHMS:
        raise SubmissionError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    parameters = data.get("parameters") or {}
    if not isinstance(parameters, Mapping):
        raise SubmissionError("'parameters' must be a JSON object")
    forbidden = set(parameters) & _FORBIDDEN_PARAMETERS
    if forbidden:
        raise SubmissionError(
            f"parameter(s) not accepted by the service: "
            f"{', '.join(sorted(forbidden))} (pool width is a server "
            "resource decision)"
        )
    unknown_params = set(parameters) - _parameter_names()
    if unknown_params:
        raise SubmissionError(
            f"unknown parameter(s): {', '.join(sorted(unknown_params))}"
        )
    job_id = data.get("job_id")
    if job_id is not None:
        job_id = str(job_id)
        if not job_id or len(job_id) > _MAX_JOB_ID:
            raise SubmissionError(
                f"job_id must be 1..{_MAX_JOB_ID} characters"
            )
        if any(c.isspace() or c == "/" for c in job_id):
            raise SubmissionError(
                "job_id may not contain whitespace or '/'"
            )

    document: dict[str, Any] = {"algorithm": algorithm}
    if "benchmark" in data:
        document["benchmark"] = str(data["benchmark"])
    else:
        document["assay"] = dict(data["assay"])
        document["allocation"] = dict(data.get("allocation") or {})
    if parameters:
        document["parameters"] = dict(parameters)

    # Digesting runs the full validation stack (assay schema,
    # allocation feasibility, parameter ranges) and yields the content
    # address; benchmark submissions take the cached-fragment fast
    # path.
    digest = _digest_submission(document)
    cache_key = digest if algorithm == "ours" else f"{algorithm}-{digest}"
    return Submission(
        document=document,
        algorithm=algorithm,
        digest=digest,
        cache_key=cache_key,
        job_id=job_id,
    )


def result_document(result: Any, digest: str) -> dict[str, Any]:
    """The canonical JSON value of one finished synthesis run.

    Everything in it is a pure function of the submission (metrics,
    engines, check verdict) except ``phase_times``/``cpu_time``, which
    record how long *this* execution took — a cache hit replays them
    verbatim from the original run, which is exactly what
    content-addressed result identity means.
    """
    problem = result.problem
    params = problem.parameters
    grid = result.placement.grid
    metrics = result.metrics.as_dict()
    check = None
    if result.check_report is not None:
        check = {
            "mode": params.check,
            "ok": result.check_report.ok,
            "errors": result.check_report.error_count,
        }
    document: dict[str, Any] = {
        "schema": RESULT_SCHEMA_VERSION,
        "digest": digest,
        "benchmark": problem.assay.name,
        "algorithm": result.algorithm,
        "seed": params.seed,
        "engines": {
            "placement": params.placement_engine,
            "route": params.route_engine,
        },
        "grid": [grid.width, grid.height],
        "metrics": metrics,
        # Identity proof of the solution: digest of the deterministic
        # metrics (cpu time is measurement, not solution).
        "solution_digest": text_digest(
            canonical_json(
                {k: v for k, v in metrics.items() if k != "cpu_time_s"}
            )
        ),
        "phase_times": {k: round(v, 6) for k, v in result.phase_times.items()},
        "check": check,
        "summary": result.summary(),
    }
    if result.portfolio is not None:
        document["portfolio"] = {
            "winner": result.portfolio.get("winner"),
            "winner_spec": result.portfolio.get("winner_spec"),
        }
    return document

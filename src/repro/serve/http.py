"""Minimal asyncio HTTP/1.1 plumbing for the synthesis service.

Just enough protocol for a JSON API plus Server-Sent Events, on stdlib
``asyncio`` streams only — the repository's no-new-dependencies rule
is a feature here: the service deploys anywhere the library does.

Scope (deliberate):

* request line + headers + ``Content-Length`` bodies (no chunked
  request bodies, no multipart);
* keep-alive for JSON exchanges: responses carry ``Content-Length``
  and ``Connection: keep-alive``, so one client connection serves many
  requests (per-request TCP setup was measurable in the load
  generator); a client may still opt out with ``Connection: close``,
  and SSE streams always close (the body is connection-delimited);
* hard caps on header and body size, so a confused client cannot
  balloon the server.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "dumps_with_raw",
    "read_request",
    "sse_event",
    "write_json",
    "write_response",
]

#: Cap on the request head (request line + headers).
MAX_HEAD_BYTES = 32 * 1024

#: Cap on request bodies (inline assays are a few hundred KB at most).
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """Protocol-level failure with an HTTP status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(message)


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def wants_close(self) -> bool:
        """True when the client asked for one-shot ``Connection: close``."""
        return self.headers.get("connection", "").lower() == "close"

    def json(self) -> Any:
        """The request body parsed as JSON (400 on garbage)."""
        if not self.body:
            raise HttpError(400, "request body required")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise HttpError(400, f"request body is not JSON: {error}")


async def read_request(
    reader: asyncio.StreamReader,
) -> Request | None:
    """Parse one request from *reader*; ``None`` on a clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as eof:
        if not eof.partial.strip():
            return None
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request head too large")
    if len(head) > MAX_HEAD_BYTES:
        raise HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query))
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length")
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(413, f"body too large ({length} bytes)")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body")
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")
    return Request(
        method=method, path=path, query=query, headers=headers, body=body
    )


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
    head_only: bool = False,
    close: bool = True,
) -> None:
    """Write one complete response.

    *close* selects the connection disposition header: keep-alive
    responses always carry ``Content-Length``, so the client knows
    where the body ends and can reuse the connection.  *head_only*
    starts a stream (SSE): no ``Content-Length`` — the body is
    delimited by connection close (*close* is forced) — and the caller
    keeps writing frames to the open connection.
    """
    reason = _REASONS.get(status, "Unknown")
    if head_only:
        close = True
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        "Connection: close" if close else "Connection: keep-alive",
    ]
    if not head_only:
        head.insert(2, f"Content-Length: {len(body)}")
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    if body and not head_only:
        writer.write(body)
    await writer.drain()


def dumps_with_raw(payload: Any, raw: dict[str, str] | None = None) -> str:
    """Canonical JSON of *payload*, splicing pre-serialised fields in raw.

    *raw* maps top-level field names to already-canonical JSON text;
    each is spliced into the output verbatim instead of being parsed
    and re-serialised.  This is the cache-hit fast path **and** the
    byte-identity guarantee: the stored result text reaches the wire
    untouched.  Placeholders are random per call, so no client-supplied
    value can collide with one.
    """
    if not raw:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))
    import secrets

    document = dict(payload)
    tokens: dict[str, str] = {}
    for name, text in raw.items():
        token = f"__raw_{secrets.token_hex(16)}__"
        document[name] = token
        tokens[token] = text
    body = json.dumps(document, sort_keys=True, separators=(",", ":"))
    for token, text in tokens.items():
        body = body.replace(f'"{token}"', text, 1)
    return body


async def write_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Any,
    extra_headers: dict[str, str] | None = None,
    raw: dict[str, str] | None = None,
    close: bool = True,
) -> None:
    """Serialise *payload* canonically and write it as the response.

    Canonical serialisation (sorted keys, compact separators) keeps
    responses stable; *raw* fields (see :func:`dumps_with_raw`) are
    spliced in verbatim — cached results ship byte-identical without a
    parse/re-serialise round trip.
    """
    body = dumps_with_raw(payload, raw).encode("utf-8")
    await write_response(
        writer, status, body, extra_headers=extra_headers, close=close
    )


def sse_event(
    data: Any, event: str | None = None, event_id: int | None = None
) -> bytes:
    """One Server-Sent-Events frame carrying *data* as JSON.

    *event_id* emits an ``id:`` line — the stream position a client
    resumes from (``?start=``) after a dropped connection.
    """
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    if event:
        lines.append(f"event: {event}")
    lines.append(
        "data: " + json.dumps(data, sort_keys=True, separators=(",", ":"))
    )
    return ("\n".join(lines) + "\n\n").encode("utf-8")

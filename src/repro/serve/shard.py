"""Horizontal scale-out: a digest-routing front tier over N shards.

``python -m repro serve --shards N`` turns the single-node service
into a small cluster on one listening port:

* N backend :class:`~repro.serve.server.SynthesisServer` processes,
  each with its own journal, result cache, and synthesis pool under
  ``<state-dir>/shard-k``;
* one :class:`ShardFrontTier` (this module) that speaks the *same*
  HTTP/JSON protocol and proxies every request to the right backend.

Routing is rendezvous hashing (:mod:`repro.serve.ring`) of the
submission's routing digest over stable shard ids: one problem, one
home shard, so identical submissions always meet their own cached
result and their own journal entry.  Batch submissions fan out
per-item to each item's home shard and the verdicts merge back in
submission order — the response is byte-identical to what a single
server would have answered, which is the scale-out contract: shard
count is a deployment knob, not an API change.

Failure handling:

* a background prober marks backends dead/alive (``/healthz`` every
  ``probe_interval``); the request path marks a backend dead the
  moment a proxied call fails at transport level;
* submissions for a dead shard fail over to the next node in the
  key's rendezvous rank — only the dead shard's keys move (the
  rendezvous property), and the moved keys find warm results via
  cache peering (backends ask the digest owner on a local miss);
* with every backend down the front answers 503, never hangs;
* backpressure passes through: a backend's 429 (with its
  deterministic ``Retry-After``) reaches the client unchanged.

The front tier holds no job state beyond a bounded job-id -> shard
map (an optimisation for ``GET /jobs/{id}``; unknown ids fan out),
so it can restart freely — durability lives in the backends'
journals.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any
from urllib.parse import urlencode

from repro.errors import ReproError
from repro.obs.instrument import Instrumentation
from repro.serve.aio import AioHttpError, AsyncHttpClient, HttpResponse
from repro.serve.http import (
    HttpError,
    Request,
    read_request,
    write_json,
    write_response,
)
from repro.serve.ring import RendezvousRing, routing_digest

__all__ = [
    "DEFAULT_SHARD_PORT",
    "ShardConfig",
    "ShardFrontTier",
    "backend_configs",
    "run_shard",
    "run_shard_supervisor",
    "spawn_backend",
    "wait_for_http",
]

DEFAULT_SHARD_PORT = 8076

#: Cap on the job-id -> home-shard map (pure optimisation; evicted
#: ids fall back to the fan-out lookup).
MAX_JOB_HOMES = 65536

#: Base timeout for one proxied exchange (a ``?wait=`` long-poll adds
#: its wait on top).
REQUEST_TIMEOUT = 300.0


@dataclass
class ShardConfig:
    """Everything ``python -m repro shard`` lets you turn."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_SHARD_PORT
    #: The backend fleet: ``(shard_id, "host:port")`` per shard.
    backends: tuple[tuple[str, str], ...] = ()
    #: Seconds between background health probes.
    probe_interval: float = 1.0
    #: Per-probe timeout (a wedged backend must not stall the prober).
    probe_timeout: float = 2.0
    #: Base timeout for proxied requests.
    request_timeout: float = REQUEST_TIMEOUT


class ShardFrontTier:
    """The routing proxy: one listening port over N shard backends."""

    def __init__(
        self,
        config: ShardConfig,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        if not config.backends:
            raise ReproError("shard front tier needs at least one backend")
        ids = [shard_id for shard_id, _ in config.backends]
        if len(set(ids)) != len(ids):
            raise ReproError(f"duplicate shard ids: {ids}")
        self.config = config
        self.instr = instrumentation or Instrumentation()
        self.ring = RendezvousRing(ids)
        self._addresses = dict(config.backends)
        self._clients: dict[str, AsyncHttpClient] = {}
        #: Optimistic at boot — the prober corrects within one cycle,
        #: and the request path demotes on the first failed proxy.
        self._alive: dict[str, bool] = {shard_id: True for shard_id in ids}
        self._job_homes: dict[str, str] = {}
        self._job_order: deque[str] = deque()
        self.bound_port: int | None = None
        self.ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._prober: asyncio.Task | None = None
        self._stop_event: asyncio.Event | None = None
        self._draining = False
        self._stopping = False
        self._started_at = time.time()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        cfg = self.config
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        for shard_id, address in cfg.backends:
            host, _, port = address.rpartition(":")
            self._clients[shard_id] = AsyncHttpClient(
                host or "127.0.0.1", int(port)
            )
        self._server = await asyncio.start_server(
            self._handle_connection, host=cfg.host, port=cfg.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]
        self._prober = asyncio.create_task(self._probe_loop())
        self._started_at = time.time()
        self.ready.set()

    async def run(self, install_signal_handlers: bool = True) -> None:
        await self.start()
        if install_signal_handlers:
            import signal

            for signum in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError, ValueError):
                    self._loop.add_signal_handler(
                        signum, self.request_shutdown
                    )
        assert self._stop_event is not None
        await self._stop_event.wait()
        await self.shutdown()

    def request_shutdown(self) -> None:
        loop, event = self._loop, self._stop_event
        if loop is None or event is None:
            return
        loop.call_soon_threadsafe(event.set)

    async def shutdown(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._prober is not None:
            self._prober.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._prober
        for client in self._clients.values():
            client.close()
        self.ready.clear()

    # ------------------------------------------------------------------
    # Backend health
    # ------------------------------------------------------------------
    def alive_ids(self) -> list[str]:
        return [
            shard_id for shard_id, up in self._alive.items() if up
        ]

    def _mark_dead(self, shard_id: str) -> None:
        if self._alive.get(shard_id):
            self._alive[shard_id] = False
            self.instr.count("shard.backend_deaths")
            self._clients[shard_id].close()

    def _mark_alive(self, shard_id: str) -> None:
        if not self._alive.get(shard_id):
            self._alive[shard_id] = True
            self.instr.count("shard.backend_revivals")

    async def _probe_one(self, shard_id: str) -> None:
        try:
            response = await self._clients[shard_id].request(
                "GET", "/healthz", timeout=self.config.probe_timeout
            )
        except AioHttpError:
            self._mark_dead(shard_id)
            return
        if response.status == 200:
            self._mark_alive(shard_id)
        else:  # pragma: no cover - a backend answering non-200
            self._mark_dead(shard_id)

    async def _probe_loop(self) -> None:
        while True:
            await asyncio.gather(
                *(self._probe_one(shard_id) for shard_id in self._alive)
            )
            self.instr.gauge(
                "shard.backends_alive", float(len(self.alive_ids()))
            )
            await asyncio.sleep(self.config.probe_interval)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _remember_home(self, job_id: str, shard_id: str) -> None:
        if job_id in self._job_homes:
            self._job_homes[job_id] = shard_id
            return
        self._job_homes[job_id] = shard_id
        self._job_order.append(job_id)
        while len(self._job_order) > MAX_JOB_HOMES:
            self._job_homes.pop(self._job_order.popleft(), None)

    def _owner_walk(self, key: str) -> list[str]:
        """The key's rendezvous rank restricted to live backends."""
        alive = set(self.alive_ids())
        return [
            shard_id for shard_id in self.ring.rank(key)
            if shard_id in alive
        ]

    async def _proxy(
        self,
        shard_id: str,
        method: str,
        path: str,
        body: bytes | None = None,
        timeout: float | None = None,
    ) -> HttpResponse:
        """One proxied exchange; transport failure demotes the backend
        and re-raises for the caller's failover walk."""
        try:
            return await self._clients[shard_id].request(
                method,
                path,
                body=body,
                timeout=timeout or self.config.request_timeout,
            )
        except AioHttpError:
            self._mark_dead(shard_id)
            raise

    async def _proxy_with_failover(
        self,
        key: str,
        method: str,
        path: str,
        body: bytes | None = None,
        timeout: float | None = None,
    ) -> tuple[str, HttpResponse] | None:
        """Walk the key's rendezvous rank until a backend answers.

        ``None`` means every live candidate failed (or none was live):
        the caller answers 503.  Retrying a submission on the next
        ranked shard is safe — synthesis is deterministic and content
        addressed, so the worst case of an ambiguous first attempt is
        a duplicate execution of the same result.
        """
        for shard_id in self._owner_walk(key):
            try:
                response = await self._proxy(
                    shard_id, method, path, body, timeout
                )
            except AioHttpError:
                self.instr.count("shard.failovers")
                continue
            return shard_id, response
        return None

    @staticmethod
    def _forward_path(path: str, query: dict[str, str]) -> str:
        return f"{path}?{urlencode(query)}" if query else path

    def _wait_margin(self, request: Request) -> float:
        raw = request.query.get("wait")
        try:
            return max(0.0, float(raw)) if raw is not None else 0.0
        except ValueError:
            return 0.0

    @staticmethod
    def _passthrough_headers(response: HttpResponse) -> dict[str, str]:
        extra = {}
        if "retry-after" in response.headers:
            extra["Retry-After"] = response.headers["retry-after"]
        return extra

    async def _relay(
        self,
        writer: asyncio.StreamWriter,
        response: HttpResponse,
        keep: bool,
    ) -> None:
        """Pass a buffered backend response through byte for byte."""
        await write_response(
            writer,
            response.status,
            response.body,
            content_type=response.headers.get(
                "content-type", "application/json"
            ),
            extra_headers=self._passthrough_headers(response),
            close=not keep,
        )

    # ------------------------------------------------------------------
    # HTTP front
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                    if request is None:
                        return
                    keep = await self._route(request, writer)
                    if not keep:
                        return
                except asyncio.CancelledError:
                    # Server closing while this keep-alive connection
                    # idles between requests: end quietly.
                    return
                except HttpError as error:
                    await write_json(
                        writer, error.status, {"error": str(error)}
                    )
                    return
                except ConnectionError:
                    return
                except Exception as error:  # pragma: no cover - defensive
                    with contextlib.suppress(Exception):
                        await write_json(
                            writer,
                            500,
                            {"error": f"internal error: {error!r}"},
                        )
                    return
        finally:
            # CancelledError too (a BaseException): the close
            # handshake itself gets cancelled at front-tier shutdown.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    async def _route(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        keep = not request.wants_close
        method, path = request.method, request.path.rstrip("/")
        self.instr.count("shard.requests")
        if path == "/healthz" and method == "GET":
            await self._handle_healthz(writer, keep)
            return keep
        if path == "/stats" and method == "GET":
            await self._handle_stats(writer, keep)
            return keep
        if path == "/jobs" and method == "POST":
            await self._handle_submit(request, writer, keep)
            return keep
        if path == "/jobs/batch" and method == "POST":
            await self._handle_batch(request, writer, keep)
            return keep
        if path == "/admin/shutdown" and method == "POST":
            await self._handle_shutdown(writer)
            return False
        if path in ("/admin/pause", "/admin/resume") and method == "POST":
            await self._handle_pause(path.endswith("pause"), writer, keep)
            return keep
        if path.startswith("/jobs/") and method == "GET":
            rest = path[len("/jobs/"):]
            if rest.endswith("/events"):
                await self._handle_events(
                    request, rest[: -len("/events")], writer
                )
                return False
            if "/" not in rest:
                await self._handle_status(request, rest, writer, keep)
                return keep
        raise HttpError(
            404 if method in ("GET", "POST") else 405,
            f"no route for {method} {request.path}",
        )

    async def _handle_submit(
        self, request: Request, writer: asyncio.StreamWriter, keep: bool
    ) -> None:
        if self._draining:
            await write_json(
                writer, 503, {"error": "server is draining"}, close=not keep
            )
            return
        document = request.json()  # same 400 text a backend would send
        key = routing_digest(document)
        forward = self._forward_path("/jobs", request.query)
        routed = await self._proxy_with_failover(
            key,
            "POST",
            forward,
            request.body,
            timeout=self.config.request_timeout + self._wait_margin(request),
        )
        if routed is None:
            self.instr.count("shard.unrouted")
            await write_json(
                writer, 503, {"error": "no backend available"},
                close=not keep,
            )
            return
        shard_id, response = routed
        self.instr.count("shard.jobs_routed")
        payload = response.json()
        if isinstance(payload, dict) and payload.get("job_id"):
            self._remember_home(str(payload["job_id"]), shard_id)
        await self._relay(writer, response, keep)

    async def _handle_batch(
        self, request: Request, writer: asyncio.StreamWriter, keep: bool
    ) -> None:
        if self._draining:
            await write_json(
                writer, 503, {"error": "server is draining"}, close=not keep
            )
            return
        data = request.json()
        items = data.get("jobs") if isinstance(data, dict) else None
        if not isinstance(items, list) or not items:
            raise HttpError(400, "body must be {'jobs': [submission, …]}")
        entries: list[dict[str, Any] | None] = [None] * len(items)
        pending = list(enumerate(items))
        # Group per home shard, forward the groups concurrently, and
        # re-group whatever a dying backend dropped — each item is
        # answered or explicitly unavailable, never lost or hung.
        for _ in range(len(self.config.backends) + 1):
            if not pending:
                break
            groups: dict[str, list[tuple[int, Any]]] = {}
            unroutable: list[tuple[int, Any]] = []
            for index, item in pending:
                walk = self._owner_walk(routing_digest(item))
                if not walk:
                    unroutable.append((index, item))
                else:
                    groups.setdefault(walk[0], []).append((index, item))
            for index, _ in unroutable:
                self.instr.count("shard.unrouted")
                entries[index] = {
                    "status": "unavailable",
                    "error": "no backend available",
                }
            pending = []
            if not groups:
                break
            results = await asyncio.gather(
                *(
                    self._forward_batch(shard_id, group)
                    for shard_id, group in groups.items()
                )
            )
            for group, verdicts in zip(groups.values(), results):
                if verdicts is None:  # backend died: re-route the group
                    pending.extend(group)
                    continue
                for (index, _), verdict in zip(group, verdicts):
                    entries[index] = verdict
        accepted = rejected = hits = 0
        for entry in entries:
            assert entry is not None
            if entry.get("status") in ("rejected", "invalid", "unavailable"):
                rejected += 1
            elif entry.get("cached"):
                hits += 1
            else:
                accepted += 1
        await write_json(
            writer,
            200,
            {
                "jobs": entries,
                "accepted": accepted,
                "cached": hits,
                "rejected": rejected,
            },
            close=not keep,
        )

    async def _forward_batch(
        self, shard_id: str, group: list[tuple[int, Any]]
    ) -> list[dict[str, Any]] | None:
        """One shard's slice of a batch; ``None`` = backend died."""
        body = json.dumps(
            {"jobs": [item for _, item in group]},
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        try:
            response = await self._proxy(
                shard_id, "POST", "/jobs/batch", body
            )
        except AioHttpError:
            self.instr.count("shard.failovers")
            return None
        payload = response.json()
        verdicts = (
            payload.get("jobs") if isinstance(payload, dict) else None
        )
        if response.status != 200 or not isinstance(verdicts, list):
            # A whole-batch error (e.g. draining backend): every item
            # in the group re-routes.
            return None
        self.instr.count("shard.batch_items", len(verdicts))
        for (_, _), verdict in zip(group, verdicts):
            if isinstance(verdict, dict) and verdict.get("job_id"):
                self._remember_home(str(verdict["job_id"]), shard_id)
        return verdicts

    async def _locate(self, job_id: str) -> str | None:
        """The shard that knows *job_id*: the remembered home when
        live, else a fan-out probe of every live backend."""
        home = self._job_homes.get(job_id)
        if home is not None and self._alive.get(home):
            return home
        for shard_id in self.alive_ids():
            try:
                response = await self._proxy(
                    shard_id, "GET", f"/jobs/{job_id}"
                )
            except AioHttpError:
                continue
            if response.status == 200:
                self._remember_home(job_id, shard_id)
                return shard_id
        return None

    async def _handle_status(
        self,
        request: Request,
        job_id: str,
        writer: asyncio.StreamWriter,
        keep: bool,
    ) -> None:
        if not self.alive_ids():
            await write_json(
                writer, 503, {"error": "no backend available"},
                close=not keep,
            )
            return
        shard_id = await self._locate(job_id)
        if shard_id is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        forward = self._forward_path(f"/jobs/{job_id}", request.query)
        try:
            response = await self._proxy(
                shard_id,
                "GET",
                forward,
                timeout=self.config.request_timeout
                + self._wait_margin(request),
            )
        except AioHttpError:
            await write_json(
                writer,
                503,
                {"error": f"backend for job {job_id!r} is unavailable"},
                close=not keep,
            )
            return
        await self._relay(writer, response, keep)

    async def _handle_events(
        self, request: Request, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        shard_id = await self._locate(job_id)
        if shard_id is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        forward = self._forward_path(f"/jobs/{job_id}/events", request.query)
        try:
            upstream = await self._clients[shard_id].stream(
                "GET", forward, timeout=self.config.request_timeout
            )
        except AioHttpError:
            self._mark_dead(shard_id)
            raise HttpError(
                503, f"backend for job {job_id!r} is unavailable"
            )
        try:
            if upstream.status != 200:
                # Backend refused the stream (e.g. compaction evicted
                # the job): buffer the small error body and relay it.
                chunks = [chunk async for chunk in upstream.iter_chunks()]
                await write_response(
                    writer,
                    upstream.status,
                    b"".join(chunks),
                    content_type=upstream.headers.get(
                        "content-type", "application/json"
                    ),
                )
                return
            await write_response(
                writer,
                200,
                b"",
                content_type="text/event-stream",
                extra_headers={"Cache-Control": "no-cache"},
                head_only=True,
            )
            self.instr.count("shard.sse_streams")
            async for chunk in upstream.iter_chunks():
                writer.write(chunk)
                await writer.drain()
        finally:
            upstream.close()

    async def _handle_healthz(
        self, writer: asyncio.StreamWriter, keep: bool
    ) -> None:
        alive = {
            shard_id: bool(up) for shard_id, up in sorted(self._alive.items())
        }
        up_count = sum(alive.values())
        status = (
            "ok" if up_count == len(alive)
            else ("degraded" if up_count else "down")
        )
        await write_json(
            writer,
            200 if up_count else 503,
            {
                "status": status,
                "role": "front",
                "draining": self._draining,
                "backends": alive,
            },
            close=not keep,
        )

    async def _handle_stats(
        self, writer: asyncio.StreamWriter, keep: bool
    ) -> None:
        async def fetch(shard_id: str) -> Any:
            try:
                response = await self._proxy(shard_id, "GET", "/stats")
            except AioHttpError:
                return None
            return response.json() if response.status == 200 else None

        ids = sorted(self._alive)
        shard_stats = await asyncio.gather(*(fetch(s) for s in ids))
        await write_json(
            writer,
            200,
            {
                "role": "front",
                "uptime_s": round(time.time() - self._started_at, 3),
                "draining": self._draining,
                "backends": {
                    shard_id: {
                        "address": self._addresses[shard_id],
                        "alive": bool(self._alive[shard_id]),
                    }
                    for shard_id in ids
                },
                "shards": dict(zip(ids, shard_stats)),
                "counters": self.instr.counters,
                "gauges": self.instr.gauges,
            },
            close=not keep,
        )

    async def _handle_pause(
        self, pause: bool, writer: asyncio.StreamWriter, keep: bool
    ) -> None:
        verb = "pause" if pause else "resume"

        async def one(shard_id: str) -> str | None:
            try:
                response = await self._proxy(
                    shard_id, "POST", f"/admin/{verb}"
                )
            except AioHttpError:
                return None
            return shard_id if response.status == 200 else None

        done = await asyncio.gather(*(one(s) for s in self.alive_ids()))
        await write_json(
            writer,
            200,
            {
                "status": "paused" if pause else "running",
                "shards": sorted(filter(None, done)),
            },
            close=not keep,
        )

    async def _handle_shutdown(self, writer: asyncio.StreamWriter) -> None:
        """Drain-aware shutdown: refuse new work, tell every live
        backend to drain, then stop the front tier itself."""
        self._draining = True

        async def one(shard_id: str) -> None:
            with contextlib.suppress(AioHttpError):
                await self._proxy(shard_id, "POST", "/admin/shutdown")

        await asyncio.gather(*(one(s) for s in self.alive_ids()))
        await write_json(writer, 200, {"status": "draining"}, close=True)
        self.request_shutdown()


# ----------------------------------------------------------------------
# Supervisor: backends as child processes + the front tier
# ----------------------------------------------------------------------
def backend_configs(
    count: int,
    host: str,
    base_port: int,
    state_dir: Path,
    *,
    pool_jobs: int = 1,
    inflight: int = 2,
    queue_limit: int | None = None,
    deadline: float | None = None,
    retries: int = 3,
    ledger: Path | None = None,
    heartbeats: bool = True,
    journal_limit: int | None = None,
    cache_limit: int | None = None,
    ports: list[int] | None = None,
) -> list[Any]:
    """The N backend :class:`~repro.serve.server.ServeConfig` objects
    for one sharded deployment: fixed ports (``base_port + 1 + k`` by
    default), per-shard state dirs, and the full peer table on every
    shard so cache peering works."""
    from repro.serve.jobs import DEFAULT_QUEUE_LIMIT
    from repro.serve.server import ServeConfig

    if ports is None:
        ports = [base_port + 1 + k for k in range(count)]
    peers = tuple(
        (f"shard-{k}", f"{host}:{ports[k]}") for k in range(count)
    )
    return [
        ServeConfig(
            host=host,
            port=ports[k],
            pool_jobs=pool_jobs,
            inflight=inflight,
            queue_limit=(
                queue_limit if queue_limit is not None
                else DEFAULT_QUEUE_LIMIT
            ),
            deadline=deadline,
            retries=retries,
            state_dir=state_dir / f"shard-{k}",
            ledger=ledger,
            heartbeats=heartbeats,
            journal_limit=journal_limit,
            cache_limit=cache_limit,
            peers=peers,
            self_id=f"shard-{k}",
        )
        for k in range(count)
    ]


def _backend_main(config: Any) -> None:  # pragma: no cover - child process
    """Child-process entry point: run one shard backend to drain."""
    from repro.serve.server import SynthesisServer

    server = SynthesisServer(config)
    asyncio.run(server.run())


def spawn_backend(config: Any) -> Any:
    """Start one shard backend as a child process (returns it)."""
    import multiprocessing

    process = multiprocessing.Process(
        target=_backend_main, args=(config,), daemon=False
    )
    process.start()
    return process


def wait_for_http(
    host: str, port: int, timeout: float = 30.0
) -> bool:
    """Block until ``GET /healthz`` on ``host:port`` answers 200."""
    import http.client

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        connection = http.client.HTTPConnection(host, port, timeout=2.0)
        try:
            connection.request("GET", "/healthz")
            if connection.getresponse().status == 200:
                return True
        except OSError:
            time.sleep(0.05)
        finally:
            connection.close()
    return False


def run_shard_supervisor(args: Any) -> int:
    """``python -m repro serve --shards N``: spawn N backends, then
    run the front tier on the requested port until drained."""
    import sys

    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    from repro.obs.ledger import DEFAULT_LEDGER_PATH

    ledger = None if args.no_ledger else (args.ledger or DEFAULT_LEDGER_PATH)
    configs = backend_configs(
        args.shards,
        args.host,
        args.port,
        args.state_dir,
        pool_jobs=args.jobs,
        inflight=args.inflight,
        queue_limit=args.queue_limit,
        deadline=args.deadline,
        retries=args.retries,
        ledger=ledger,
        heartbeats=not args.no_heartbeats,
        journal_limit=args.journal_limit,
        cache_limit=args.cache_limit,
    )
    processes = [spawn_backend(config) for config in configs]
    try:
        for config in configs:
            if not wait_for_http(config.host, config.port):
                print(
                    f"error: shard on port {config.port} never came up",
                    file=sys.stderr,
                )
                return 3
        front = ShardFrontTier(
            ShardConfig(
                host=args.host,
                port=args.port,
                backends=tuple(
                    (config.self_id, f"{config.host}:{config.port}")
                    for config in configs
                ),
            )
        )
        print(
            f"repro-shard: front tier on http://{args.host}:{args.port} "
            f"over {args.shards} shards "
            f"(ports {configs[0].port}..{configs[-1].port})",
            file=sys.stderr,
        )
        try:
            asyncio.run(front.run())
        except KeyboardInterrupt:  # pragma: no cover - double ^C
            pass
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()  # SIGTERM -> backend drains
        for process in processes:
            process.join(timeout=30.0)
            if process.is_alive():  # pragma: no cover - wedged child
                process.kill()
                process.join(timeout=5.0)
    print("repro-shard: front tier and shards stopped", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# The ``python -m repro shard`` command (front tier over existing
# backends — the supervisor spelling is ``repro serve --shards N``)
# ----------------------------------------------------------------------
def run_shard(argv: list[str] | None = None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="repro shard",
        description=(
            "Digest-routing front tier over running repro-serve "
            "backends (docs/SERVICE.md: Scaling out)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_SHARD_PORT,
                        help=f"front-tier TCP port (default: "
                             f"{DEFAULT_SHARD_PORT}; 0 picks a free port)")
    parser.add_argument("--backends", required=True,
                        metavar="HOST:PORT,… | ID=HOST:PORT,…",
                        help="the shard fleet; bare addresses get ids "
                             "shard-0, shard-1, … in order (ids must "
                             "match the backends' --self-id for cache "
                             "peering to agree with routing)")
    parser.add_argument("--probe-interval", type=float, default=1.0,
                        metavar="SECONDS",
                        help="backend health-probe period (default: 1.0)")
    args = parser.parse_args(argv)

    backends: list[tuple[str, str]] = []
    for index, pair in enumerate(args.backends.split(",")):
        pair = pair.strip()
        if not pair:
            continue
        if "=" in pair:
            shard_id, _, address = pair.partition("=")
        else:
            shard_id, address = f"shard-{index}", pair
        backends.append((shard_id, address))
    if not backends:
        parser.error("--backends needs at least one host:port")

    front = ShardFrontTier(
        ShardConfig(
            host=args.host,
            port=args.port,
            backends=tuple(backends),
            probe_interval=args.probe_interval,
        )
    )

    async def _main() -> None:
        started = asyncio.create_task(front.run())
        while not front.ready.is_set() and not started.done():
            await asyncio.sleep(0.01)
        if front.ready.is_set():
            print(
                f"repro-shard: routing http://{args.host}:"
                f"{front.bound_port} across "
                f"{len(backends)} backends",
                file=sys.stderr,
            )
        await started

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - double ^C
        pass
    except OSError as error:
        print(f"error: cannot serve: {error}", file=sys.stderr)
        return 3
    print("repro-shard: stopped", file=sys.stderr)
    return 0


def shard_main(argv: list[str] | None = None) -> None:  # pragma: no cover
    raise SystemExit(run_shard(argv))

"""Bounded persistent job queue: a JSONL journal replayed on restart.

Accepted jobs must survive a server crash — acceptance is a promise.
The queue therefore journals every state transition as one JSON line
(``job`` / ``start`` / ``done`` / ``fail``) appended with fsync, the
same crash-parseable-prefix discipline as the run ledger and the
hardened :class:`~repro.obs.sinks.JsonlSink`: a process killed
mid-append leaves at most one damaged *final* line, which replay
skips.

Replay rules (:meth:`JobQueue.replay`):

* a ``job`` line (re)creates the job as *queued*; duplicate ids are
  idempotent — the first submission wins, later ones are ignored;
* a ``start`` line bumps the attempt counter but the job stays
  *queued* unless a terminal line follows: a job that was running when
  the server died was lost mid-flight and must run again;
* ``done`` / ``fail`` are terminal (``done`` jobs re-serve from the
  result cache; they are kept for status queries, not re-executed).

The bound (*limit*) applies to **pending** jobs only — that is the
backpressure surface: a full queue makes ``POST /jobs`` answer 429
with ``Retry-After`` instead of accepting work it cannot promise.

All methods are thread-safe: the asyncio loop submits, executor
threads finish, the journal serialises under one lock.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.errors import ReproError

__all__ = [
    "DEFAULT_QUEUE_LIMIT",
    "Job",
    "JobQueue",
    "QueueFullError",
    "read_journal",
]

#: Default cap on pending (accepted but not yet running) jobs.
DEFAULT_QUEUE_LIMIT = 64

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


class QueueFullError(ReproError):
    """Raised when the pending-job bound is hit (HTTP 429)."""


@dataclass
class Job:
    """One accepted submission and its lifecycle state."""

    job_id: str
    document: dict[str, Any]
    digest: str
    cache_key: str
    status: str = QUEUED
    attempts: int = 0
    error: str | None = None
    #: True when the job was answered from the result cache without a
    #: synthesis execution (only for journal-replayed duplicates).
    cached: bool = False
    created: float = 0.0
    started: float | None = None
    finished: float | None = None

    def as_status(self) -> dict[str, Any]:
        """The JSON status document of ``GET /jobs/{id}``."""
        return {
            "job_id": self.job_id,
            "status": self.status,
            "benchmark": self.document.get(
                "benchmark",
                (self.document.get("assay") or {}).get("name", "assay"),
            ),
            "digest": self.digest,
            "attempts": self.attempts,
            "cached": self.cached,
            "error": self.error,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
        }


def read_journal(path: str | Path) -> list[dict[str, Any]]:
    """All parseable journal records, oldest first.

    Damaged lines (a crash mid-append) are skipped, never fatal — the
    journal must stay replayable after any crash.
    """
    journal = Path(path)
    if not journal.exists():
        return []
    records: list[dict[str, Any]] = []
    with open(journal, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "kind" in record:
                records.append(record)
    return records


class JobQueue:
    """The bounded, journal-backed job queue of one server instance."""

    def __init__(
        self,
        journal_path: str | Path,
        limit: int = DEFAULT_QUEUE_LIMIT,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if limit < 1:
            raise ReproError(f"queue limit must be >= 1, got {limit}")
        self.journal_path = Path(journal_path)
        self.limit = limit
        self._clock = clock
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._pending: deque[str] = deque()
        self._seq = 0
        #: Jobs requeued by journal replay (lost mid-flight in a crash).
        self.recovered = 0
        self.replay()

    # -- journal --------------------------------------------------------
    def _append(self, record: dict[str, Any]) -> None:
        self.journal_path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, default=repr)
        with open(self.journal_path, "a", encoding="utf-8") as stream:
            stream.write(line + "\n")
            stream.flush()
            os.fsync(stream.fileno())

    def replay(self) -> None:
        """Rebuild in-memory state from the journal (idempotent)."""
        with self._lock:
            self._jobs.clear()
            self._pending.clear()
            started: set[str] = set()
            for record in read_journal(self.journal_path):
                kind = record.get("kind")
                job_id = str(record.get("id", ""))
                if kind == "job":
                    if job_id in self._jobs:
                        continue  # duplicate submission: idempotent
                    document = record.get("document")
                    if not isinstance(document, dict):
                        continue
                    self._jobs[job_id] = Job(
                        job_id=job_id,
                        document=document,
                        digest=str(record.get("digest", "")),
                        cache_key=str(record.get("cache_key", "")),
                        created=float(record.get("ts", 0.0)),
                    )
                    self._pending.append(job_id)
                    continue
                job = self._jobs.get(job_id)
                if job is None:
                    continue
                if kind == "start":
                    job.attempts = max(
                        job.attempts, int(record.get("attempt", 1))
                    )
                    started.add(job_id)
                elif kind == "done":
                    job.status = DONE
                    job.cached = bool(record.get("cached", False))
                    job.finished = float(record.get("ts", 0.0))
                    if job_id in self._pending:
                        self._pending.remove(job_id)
                elif kind == "fail":
                    job.status = FAILED
                    job.error = str(record.get("error", "unknown"))
                    job.finished = float(record.get("ts", 0.0))
                    if job_id in self._pending:
                        self._pending.remove(job_id)
            # Jobs with a start but no terminal record were in flight
            # when the process died: they stay queued and run again.
            self.recovered = sum(
                1 for job_id in self._pending if job_id in started
            )
            self._seq = len(self._jobs)

    # -- submission -----------------------------------------------------
    def submit(
        self,
        document: dict[str, Any],
        digest: str,
        cache_key: str,
        job_id: str | None = None,
    ) -> tuple[Job, bool]:
        """Accept one submission; returns ``(job, created)``.

        A known *job_id* returns the existing job unchanged (idempotent
        resubmission); a full queue raises :class:`QueueFullError`.
        """
        with self._lock:
            if job_id is not None and job_id in self._jobs:
                return self._jobs[job_id], False
            if len(self._pending) >= self.limit:
                raise QueueFullError(
                    f"job queue full ({self.limit} pending); retry later"
                )
            if job_id is None:
                self._seq += 1
                job_id = f"j{self._seq:06d}-{digest[:8]}"
                while job_id in self._jobs:  # pragma: no cover - paranoia
                    self._seq += 1
                    job_id = f"j{self._seq:06d}-{digest[:8]}"
            job = Job(
                job_id=job_id,
                document=dict(document),
                digest=digest,
                cache_key=cache_key,
                created=self._clock(),
            )
            self._jobs[job_id] = job
            self._pending.append(job_id)
            self._append(
                {
                    "kind": "job",
                    "id": job_id,
                    "document": job.document,
                    "digest": digest,
                    "cache_key": cache_key,
                    "ts": job.created,
                }
            )
            return job, True

    # -- lifecycle ------------------------------------------------------
    def claim(self) -> Job | None:
        """Pop the oldest pending job and mark it running (or ``None``)."""
        with self._lock:
            if not self._pending:
                return None
            job = self._jobs[self._pending.popleft()]
            job.status = RUNNING
            job.attempts += 1
            job.started = self._clock()
            self._append(
                {
                    "kind": "start",
                    "id": job.job_id,
                    "attempt": job.attempts,
                    "ts": job.started,
                }
            )
            return job

    def finish(self, job_id: str, cached: bool = False) -> Job:
        """Mark a running job done (its result is in the cache)."""
        with self._lock:
            job = self._jobs[job_id]
            job.status = DONE
            job.cached = cached
            job.finished = self._clock()
            self._append(
                {
                    "kind": "done",
                    "id": job_id,
                    "cached": cached,
                    "ts": job.finished,
                }
            )
            return job

    def fail(self, job_id: str, error: str) -> Job:
        """Mark a running job failed with *error*."""
        with self._lock:
            job = self._jobs[job_id]
            job.status = FAILED
            job.error = error
            job.finished = self._clock()
            self._append(
                {
                    "kind": "fail",
                    "id": job_id,
                    "error": error,
                    "ts": job.finished,
                }
            )
            return job

    # -- introspection --------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    @property
    def depth(self) -> int:
        """Pending (accepted, not yet running) job count."""
        with self._lock:
            return len(self._pending)

    def jobs(self) -> Iterable[Job]:
        """Snapshot of every known job (insertion order)."""
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        """Job tally by status (for ``GET /stats``)."""
        with self._lock:
            tally: dict[str, int] = {
                QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0,
            }
            for job in self._jobs.values():
                tally[job.status] = tally.get(job.status, 0) + 1
            return tally

"""Bounded persistent job queue: a JSONL journal replayed on restart.

Accepted jobs must survive a server crash — acceptance is a promise.
The queue therefore journals every state transition as one JSON line
(``job`` / ``start`` / ``done`` / ``fail``) appended with fsync, the
same crash-parseable-prefix discipline as the run ledger and the
hardened :class:`~repro.obs.sinks.JsonlSink`: a process killed
mid-append leaves at most one damaged *final* line, which replay
skips.

Replay rules (:meth:`JobQueue.replay`):

* a ``job`` line (re)creates the job as *queued*; duplicate ids are
  idempotent — the first submission wins, later ones are ignored;
* a ``start`` line bumps the attempt counter but the job stays
  *queued* unless a terminal line follows: a job that was running when
  the server died was lost mid-flight and must run again;
* ``done`` / ``fail`` are terminal (``done`` jobs re-serve from the
  result cache; they are kept for status queries, not re-executed).

The bound (*limit*) applies to **pending** jobs only — that is the
backpressure surface: a full queue makes ``POST /jobs`` answer 429
with ``Retry-After`` instead of accepting work it cannot promise.

**Compaction** (:meth:`JobQueue.compact`) keeps long-lived shards'
journals from growing without bound.  The live state is snapshotted —
one ``job`` line per retained job, a ``start`` line where attempts
were made, a terminal line where one was reached — into a sibling
temp file (fsynced), then atomically :func:`os.replace`\\ d over the
journal.  A crash *before* or *during* the snapshot leaves the old
journal untouched (replay ignores the temp file); a crash *after*
replays the compacted one: the same crash-parseable-prefix discipline
as appends.  Terminal jobs beyond the newest ``keep_terminal`` are
evicted (their results live in the result cache; their ids stop
answering ``GET /jobs/{id}``).  With ``journal_limit`` set, appends
trigger compaction automatically; after a compaction that cannot
shrink below the limit (everything is live), the trigger threshold
doubles so a full-of-pending queue never thrashes.

All methods are thread-safe: the asyncio loop submits, executor
threads finish, the journal serialises under one lock.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.errors import ReproError

__all__ = [
    "DEFAULT_QUEUE_LIMIT",
    "Job",
    "JobQueue",
    "QueueFullError",
    "read_journal",
]

#: Default cap on pending (accepted but not yet running) jobs.
DEFAULT_QUEUE_LIMIT = 64

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


class QueueFullError(ReproError):
    """Raised when the pending-job bound is hit (HTTP 429)."""


@dataclass
class Job:
    """One accepted submission and its lifecycle state."""

    job_id: str
    document: dict[str, Any]
    digest: str
    cache_key: str
    status: str = QUEUED
    attempts: int = 0
    error: str | None = None
    #: True when the job was answered from the result cache without a
    #: synthesis execution (only for journal-replayed duplicates).
    cached: bool = False
    created: float = 0.0
    started: float | None = None
    finished: float | None = None

    def as_status(self) -> dict[str, Any]:
        """The JSON status document of ``GET /jobs/{id}``."""
        return {
            "job_id": self.job_id,
            "status": self.status,
            "benchmark": self.document.get(
                "benchmark",
                (self.document.get("assay") or {}).get("name", "assay"),
            ),
            "digest": self.digest,
            "attempts": self.attempts,
            "cached": self.cached,
            "error": self.error,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
        }


def read_journal(path: str | Path) -> list[dict[str, Any]]:
    """All parseable journal records, oldest first.

    Damaged lines (a crash mid-append) are skipped, never fatal — the
    journal must stay replayable after any crash.
    """
    journal = Path(path)
    if not journal.exists():
        return []
    records: list[dict[str, Any]] = []
    with open(journal, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "kind" in record:
                records.append(record)
    return records


class JobQueue:
    """The bounded, journal-backed job queue of one server instance."""

    def __init__(
        self,
        journal_path: str | Path,
        limit: int = DEFAULT_QUEUE_LIMIT,
        clock: Callable[[], float] = time.time,
        journal_limit: int | None = None,
        keep_terminal: int | None = None,
        on_compaction: Callable[[list[str]], None] | None = None,
    ) -> None:
        if limit < 1:
            raise ReproError(f"queue limit must be >= 1, got {limit}")
        if journal_limit is not None and journal_limit < 8:
            raise ReproError(
                f"journal limit must be >= 8, got {journal_limit}"
            )
        self.journal_path = Path(journal_path)
        self.limit = limit
        self._clock = clock
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._pending: deque[str] = deque()
        self._seq = 0
        #: Jobs requeued by journal replay (lost mid-flight in a crash).
        self.recovered = 0
        #: Compaction policy: trigger line count (``None`` = manual
        #: only) and how many newest terminal jobs survive a snapshot.
        self.journal_limit = journal_limit
        self.keep_terminal = (
            keep_terminal
            if keep_terminal is not None
            else (journal_limit // 4 if journal_limit else None)
        )
        #: Called after each compaction with the evicted job ids (the
        #: server prunes its event logs and bumps its counter here).
        self.on_compaction = on_compaction
        #: Journal lines written so far (parseable records after
        #: replay; every append increments it).
        self.journal_lines = 0
        #: Compactions performed over this instance's lifetime.
        self.compactions = 0
        self._compact_threshold = journal_limit
        #: Persistent append handle — reopening the journal per record
        #: costs more CPU than the record itself on the accept path.
        #: Invalidated by compaction (``os.replace`` swaps the inode).
        self._journal_stream: Any = None
        self.replay()

    # -- journal --------------------------------------------------------
    def _close_journal_stream(self) -> None:
        if self._journal_stream is not None:
            try:
                self._journal_stream.close()
            except OSError:  # pragma: no cover - best effort
                pass
            self._journal_stream = None

    def _append(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=repr)
        stream = self._journal_stream
        if stream is None:
            self.journal_path.parent.mkdir(parents=True, exist_ok=True)
            stream = open(self.journal_path, "a", encoding="utf-8")
            self._journal_stream = stream
        stream.write(line + "\n")
        stream.flush()
        os.fsync(stream.fileno())
        self.journal_lines += 1
        if (
            self._compact_threshold is not None
            and self.journal_lines >= self._compact_threshold
        ):
            self._compact_locked()

    def close(self) -> None:
        """Release the persistent journal append handle (idempotent)."""
        with self._lock:
            self._close_journal_stream()

    def replay(self) -> None:
        """Rebuild in-memory state from the journal (idempotent)."""
        with self._lock:
            self._close_journal_stream()
            self._jobs.clear()
            self._pending.clear()
            started: set[str] = set()
            meta_seq = 0
            records = read_journal(self.journal_path)
            self.journal_lines = len(records)
            for record in records:
                kind = record.get("kind")
                job_id = str(record.get("id", ""))
                if kind == "meta":
                    meta_seq = max(meta_seq, int(record.get("seq", 0)))
                    continue
                if kind == "job":
                    if job_id in self._jobs:
                        continue  # duplicate submission: idempotent
                    document = record.get("document")
                    if not isinstance(document, dict):
                        continue
                    self._jobs[job_id] = Job(
                        job_id=job_id,
                        document=document,
                        digest=str(record.get("digest", "")),
                        cache_key=str(record.get("cache_key", "")),
                        created=float(record.get("ts", 0.0)),
                    )
                    self._pending.append(job_id)
                    continue
                job = self._jobs.get(job_id)
                if job is None:
                    continue
                if kind == "start":
                    job.attempts = max(
                        job.attempts, int(record.get("attempt", 1))
                    )
                    started.add(job_id)
                elif kind == "done":
                    job.status = DONE
                    job.cached = bool(record.get("cached", False))
                    job.finished = float(record.get("ts", 0.0))
                    if job_id in self._pending:
                        self._pending.remove(job_id)
                elif kind == "fail":
                    job.status = FAILED
                    job.error = str(record.get("error", "unknown"))
                    job.finished = float(record.get("ts", 0.0))
                    if job_id in self._pending:
                        self._pending.remove(job_id)
            # Jobs with a start but no terminal record were in flight
            # when the process died: they stay queued and run again.
            self.recovered = sum(
                1 for job_id in self._pending if job_id in started
            )
            # meta records (written by compaction) carry the id
            # sequence forward so evicted ids are never reissued.
            self._seq = max(len(self._jobs), meta_seq)
            if (
                self._compact_threshold is not None
                and self.journal_lines >= self._compact_threshold
            ):
                self._compact_locked()

    # -- compaction -----------------------------------------------------
    def _snapshot_records(self) -> tuple[list[dict[str, Any]], list[str]]:
        """The compacted journal's records, plus the evicted job ids.

        Non-terminal jobs are always retained (queued order preserved:
        records are written in original insertion order, and replay
        rebuilds the pending deque from it).  Terminal jobs beyond the
        newest ``keep_terminal`` are evicted.
        """
        terminal = [
            job_id
            for job_id, job in self._jobs.items()
            if job.status in (DONE, FAILED)
        ]
        evict: set[str] = set()
        if self.keep_terminal is not None and len(terminal) > self.keep_terminal:
            cutoff = len(terminal) - self.keep_terminal
            evict = set(terminal[:cutoff])
        records: list[dict[str, Any]] = [
            {"kind": "meta", "seq": self._seq, "ts": self._clock()}
        ]
        for job_id, job in self._jobs.items():
            if job_id in evict:
                continue
            records.append(
                {
                    "kind": "job",
                    "id": job_id,
                    "document": job.document,
                    "digest": job.digest,
                    "cache_key": job.cache_key,
                    "ts": job.created,
                }
            )
            if job.attempts > 0:
                records.append(
                    {
                        "kind": "start",
                        "id": job_id,
                        "attempt": job.attempts,
                        "ts": job.started or job.created,
                    }
                )
            if job.status == DONE:
                records.append(
                    {
                        "kind": "done",
                        "id": job_id,
                        "cached": job.cached,
                        "ts": job.finished or job.created,
                    }
                )
            elif job.status == FAILED:
                records.append(
                    {
                        "kind": "fail",
                        "id": job_id,
                        "error": job.error or "unknown",
                        "ts": job.finished or job.created,
                    }
                )
        return records, sorted(evict)

    def _compact_locked(self) -> list[str]:
        """Snapshot + truncate (caller holds the lock)."""
        records, evicted = self._snapshot_records()
        self.journal_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.journal_path.with_name(
            self.journal_path.name + ".compact"
        )
        with open(tmp, "w", encoding="utf-8") as stream:
            for record in records:
                stream.write(
                    json.dumps(record, sort_keys=True, default=repr) + "\n"
                )
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, self.journal_path)
        # The old append handle now points at the replaced (unlinked)
        # inode; drop it so the next append reopens the new journal.
        self._close_journal_stream()
        for job_id in evicted:
            job = self._jobs.pop(job_id, None)
            if job is not None and job_id in self._pending:
                self._pending.remove(job_id)  # pragma: no cover - paranoia
        self.journal_lines = len(records)
        self.compactions += 1
        if self.journal_limit is not None:
            # Back off while the journal is mostly live state: a queue
            # full of pending jobs cannot shrink, and recompacting on
            # every append would turn each accept into a full rewrite.
            self._compact_threshold = max(
                self.journal_limit, self.journal_lines * 2
            )
        if self.on_compaction is not None:
            self.on_compaction(evicted)
        return evicted

    def compact(self) -> list[str]:
        """Snapshot live state and truncate the journal; returns the
        evicted (old terminal) job ids."""
        with self._lock:
            return self._compact_locked()

    # -- submission -----------------------------------------------------
    def submit(
        self,
        document: dict[str, Any],
        digest: str,
        cache_key: str,
        job_id: str | None = None,
    ) -> tuple[Job, bool]:
        """Accept one submission; returns ``(job, created)``.

        A known *job_id* returns the existing job unchanged (idempotent
        resubmission); a full queue raises :class:`QueueFullError`.
        """
        with self._lock:
            if job_id is not None and job_id in self._jobs:
                return self._jobs[job_id], False
            if len(self._pending) >= self.limit:
                raise QueueFullError(
                    f"job queue full ({self.limit} pending); retry later"
                )
            if job_id is None:
                self._seq += 1
                job_id = f"j{self._seq:06d}-{digest[:8]}"
                while job_id in self._jobs:  # pragma: no cover - paranoia
                    self._seq += 1
                    job_id = f"j{self._seq:06d}-{digest[:8]}"
            job = Job(
                job_id=job_id,
                document=dict(document),
                digest=digest,
                cache_key=cache_key,
                created=self._clock(),
            )
            self._jobs[job_id] = job
            self._pending.append(job_id)
            self._append(
                {
                    "kind": "job",
                    "id": job_id,
                    "document": job.document,
                    "digest": digest,
                    "cache_key": cache_key,
                    "ts": job.created,
                }
            )
            return job, True

    # -- lifecycle ------------------------------------------------------
    def claim(self) -> Job | None:
        """Pop the oldest pending job and mark it running (or ``None``)."""
        with self._lock:
            if not self._pending:
                return None
            job = self._jobs[self._pending.popleft()]
            job.status = RUNNING
            job.attempts += 1
            job.started = self._clock()
            self._append(
                {
                    "kind": "start",
                    "id": job.job_id,
                    "attempt": job.attempts,
                    "ts": job.started,
                }
            )
            return job

    def finish(self, job_id: str, cached: bool = False) -> Job:
        """Mark a running job done (its result is in the cache)."""
        with self._lock:
            job = self._jobs[job_id]
            job.status = DONE
            job.cached = cached
            job.finished = self._clock()
            self._append(
                {
                    "kind": "done",
                    "id": job_id,
                    "cached": cached,
                    "ts": job.finished,
                }
            )
            return job

    def fail(self, job_id: str, error: str) -> Job:
        """Mark a running job failed with *error*."""
        with self._lock:
            job = self._jobs[job_id]
            job.status = FAILED
            job.error = error
            job.finished = self._clock()
            self._append(
                {
                    "kind": "fail",
                    "id": job_id,
                    "error": error,
                    "ts": job.finished,
                }
            )
            return job

    # -- introspection --------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    @property
    def depth(self) -> int:
        """Pending (accepted, not yet running) job count."""
        with self._lock:
            return len(self._pending)

    def jobs(self) -> Iterable[Job]:
        """Snapshot of every known job (insertion order)."""
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        """Job tally by status (for ``GET /stats``)."""
        with self._lock:
            tally: dict[str, int] = {
                QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0,
            }
            for job in self._jobs.values():
                tally[job.status] = tally.get(job.status, 0) + 1
            return tally

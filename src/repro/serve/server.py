"""The synthesis server: asyncio orchestration of queue, pool, cache.

``python -m repro serve`` binds an HTTP/JSON API over the rest of the
subsystem:

=======================  =============================================
``POST /jobs``           submit one assay; cache hits answer 200
                         ``{"cached": true, "result": …}`` immediately,
                         misses answer 202 with a job id (add
                         ``?wait=SECONDS`` to long-poll for the result);
                         full queue answers 429 + ``Retry-After``
``POST /jobs/batch``     submit many (``{"jobs": […]}``); per-item
                         verdicts, accepted jobs are never lost
``GET /jobs/{id}``       job status, result when done (``?wait=`` to
                         long-poll)
``GET /jobs/{id}/events``  Server-Sent-Events progress stream (queued /
                         started / SA + routing heartbeats / done)
``GET /stats``           queue depth, cache hit/miss, counters,
                         latency histograms
``GET /healthz``         liveness
``POST /admin/shutdown`` graceful drain (also SIGINT/SIGTERM)
=======================  =============================================

Design points:

* **Accepted means durable** — submissions are journaled before the
  202 goes out; a crash replays them (:mod:`repro.serve.jobs`).
* **Backpressure is explicit** — pending jobs are bounded
  (``--queue-limit``), concurrency is bounded (``--inflight`` jobs,
  each one wave on a ``--jobs``-wide process pool), and a full queue
  is a 429 with a measured ``Retry-After``, not an unbounded buffer.
* **Cache before queue** — the content address is computed at accept
  time; a hit never touches the queue or the pool and returns in
  microseconds with the original run's result byte for byte.
* **Progress is the obs stream** — workers' ``sa.step`` /
  ``route.task`` events ride the existing heartbeat relay; the server
  pumps them into per-job SSE streams.  Worker counter/histogram
  aggregates are absorbed into the server's instrumentation, and every
  executed job appends a ``source: "serve"`` run-ledger record
  (inspect with ``python -m repro stats --serve``).
* **Graceful shutdown drains** — new submissions get 503, in-flight
  jobs finish (journaled ``done``), queued jobs stay journaled for the
  next boot.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import math
import queue as queue_module
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, AsyncIterator

from repro.errors import ReproError
from repro.obs.instrument import Instrumentation
from repro.obs.live import Heartbeat, HeartbeatSpec
from repro.serve.cache import ResultCache
from repro.serve.executor import JobExecutor
from repro.serve.http import (
    HttpError,
    Request,
    read_request,
    sse_event,
    write_json,
    write_response,
)
from repro.serve.jobs import DEFAULT_QUEUE_LIMIT, Job, JobQueue, QueueFullError
from repro.serve.protocol import Submission, parse_submission

__all__ = [
    "DEFAULT_PORT",
    "DEFAULT_STATE_DIR",
    "ServeConfig",
    "SynthesisServer",
    "run_serve",
]

DEFAULT_PORT = 8077
DEFAULT_STATE_DIR = Path(".repro") / "serve"

#: Cap on a single long-poll / SSE wait.
MAX_WAIT_SECONDS = 3600.0

#: Cap on retained events per job (heartbeats are throttled, so this
#: is minutes of progress; lifecycle events are never dropped).
MAX_JOB_EVENTS = 500


@dataclass
class ServeConfig:
    """Everything ``python -m repro serve`` lets you turn."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    #: Worker processes in the synthesis pool (0 = one per CPU;
    #: 1 = inline execution — no deadlines / death recovery).
    pool_jobs: int = 0
    #: Concurrently executing jobs (each is one wave on the pool).
    inflight: int = 2
    #: Pending-job bound; beyond it submissions get 429.
    queue_limit: int = DEFAULT_QUEUE_LIMIT
    #: Per-job deadline in seconds (``None`` = unbounded).
    deadline: float | None = None
    #: Pool rebuilds tolerated per job (worker death recovery).
    retries: int = 3
    #: Journal + cache directory.
    state_dir: Path = field(default_factory=lambda: DEFAULT_STATE_DIR)
    #: Run-ledger path for executed jobs (``None`` disables).
    ledger: Path | None = None
    #: Worker progress heartbeats (SSE); off saves the relay plumbing.
    heartbeats: bool = True
    heartbeat_interval: float = 0.25
    #: ``Retry-After`` fallback before any job has finished.
    retry_after: float = 2.0
    #: Journal line count that triggers snapshot + truncate
    #: (``None`` = never compact automatically).
    journal_limit: int | None = None
    #: Result-cache entry bound; beyond it cold entries are evicted
    #: LRU-by-mtime (``None`` = unbounded).
    cache_limit: int | None = None
    #: Start with the dispatcher paused: jobs are accepted, journaled,
    #: and queued, but none executes until ``POST /admin/resume``.
    paused: bool = False
    #: Shard topology for cache peering: every shard as
    #: ``(shard_id, "host:port")``, plus this server's own id.  A local
    #: cache miss asks the digest-owner peer before synthesizing.
    peers: tuple[tuple[str, str], ...] = ()
    self_id: str | None = None
    #: Peer cache-probe timeout (a slow peer must not stall accepts).
    peer_timeout: float = 5.0


class JobEventLog:
    """Per-job progress events with asyncio followers (loop-confined)."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []
        self.terminal = False
        self._changed = asyncio.Event()
        self._dropped = 0

    def append(self, event: dict[str, Any]) -> None:
        if event.get("event") in ("done", "failed"):
            self.terminal = True
        elif len(self.events) >= MAX_JOB_EVENTS:
            # Only progress events are droppable; count the loss.
            self._dropped += 1
            return
        self.events.append(event)
        self._changed.set()

    async def wait_terminal(self) -> None:
        while not self.terminal:
            self._changed.clear()
            await self._changed.wait()

    async def follow(
        self, start: int = 0
    ) -> AsyncIterator[tuple[int, dict[str, Any]]]:
        """Yield ``(index, event)`` pairs from position *start* onward.

        The index is the SSE resume token: a reconnecting client passes
        ``?start=<last index + 1>`` and continues without loss."""
        index = max(0, start)
        while True:
            while index < len(self.events):
                yield index, self.events[index]
                index += 1
            if self.terminal:
                return
            self._changed.clear()
            await self._changed.wait()


class SynthesisServer:
    """One service instance: HTTP front, queue, pool, cache, telemetry."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        instrumentation: Instrumentation | None = None,
        executor: JobExecutor | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.instr = instrumentation or Instrumentation()
        self.queue: JobQueue | None = None
        self.cache: ResultCache | None = None
        self.executor = executor
        #: Bound TCP port (useful with ``port=0``); set by :meth:`start`.
        self.bound_port: int | None = None
        #: Set once the server accepts connections (cross-thread).
        self.ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._threads: ThreadPoolExecutor | None = None
        self._events: dict[str, JobEventLog] = {}
        self._inflight = 0
        self._draining = False
        self._stopping = False
        self._paused = self.config.paused
        self._peer_ring: Any = None
        self._peer_clients: dict[str, Any] = {}
        self._wake: asyncio.Event | None = None
        self._stop_event: asyncio.Event | None = None
        self._dispatcher: asyncio.Task | None = None
        self._beats: Any = None
        self._beat_manager: Any = None
        self._pump: threading.Thread | None = None
        self._started_at = time.time()
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        cfg = self.config
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._stop_event = asyncio.Event()
        cfg.state_dir.mkdir(parents=True, exist_ok=True)
        self.queue = JobQueue(
            cfg.state_dir / "journal.jsonl",
            limit=cfg.queue_limit,
            journal_limit=cfg.journal_limit,
            on_compaction=self._on_compaction,
        )
        self.cache = ResultCache(
            cfg.state_dir / "cache",
            limit=cfg.cache_limit,
            on_evict=lambda n: self.instr.count("serve.cache_evictions", n),
        )
        if cfg.peers and cfg.self_id is not None:
            from repro.serve.ring import RendezvousRing

            ids = [shard_id for shard_id, _ in cfg.peers]
            if cfg.self_id not in ids:
                raise ReproError(
                    f"self_id {cfg.self_id!r} missing from peers {ids}"
                )
            self._peer_ring = RendezvousRing(ids)
        if self.executor is None:
            self.executor = JobExecutor(
                pool_jobs=cfg.pool_jobs,
                retries=cfg.retries,
                instrumentation=self.instr,
            )
        self._threads = ThreadPoolExecutor(
            max_workers=max(1, cfg.inflight),
            thread_name_prefix="repro-serve-job",
        )
        if cfg.heartbeats:
            if self.executor.pool_jobs == 1:
                self._beats = queue_module.Queue()
            else:
                import multiprocessing

                self._beat_manager = multiprocessing.Manager()
                self._beats = self._beat_manager.Queue()
            self._pump = threading.Thread(
                target=self._pump_beats, name="repro-serve-beats", daemon=True
            )
            self._pump.start()
        # Journal-replayed jobs re-enter the event machinery as queued.
        for job in self.queue.jobs():
            if job.status == "queued":
                self._event_log(job.job_id).append(
                    {"event": "queued", "recovered": True, "ts": time.time()}
                )
        if self.queue.recovered:
            self.instr.count("serve.jobs_recovered", self.queue.recovered)
        self._server = await asyncio.start_server(
            self._handle_connection, host=cfg.host, port=cfg.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.create_task(self._dispatch())
        self._gauges()
        self._wake.set()
        self._started_at = time.time()
        self._epoch = time.perf_counter()
        self.ready.set()

    async def run(self, install_signal_handlers: bool = True) -> None:
        """Start, serve until a shutdown request, then drain and stop."""
        await self.start()
        if install_signal_handlers:
            import signal

            for signum in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError, ValueError):
                    self._loop.add_signal_handler(
                        signum, self.request_shutdown
                    )
        assert self._stop_event is not None
        await self._stop_event.wait()
        await self.shutdown()

    def request_shutdown(self) -> None:
        """Thread-safe graceful-shutdown trigger (signals, admin API)."""
        loop, event = self._loop, self._stop_event
        if loop is None or event is None:
            return
        loop.call_soon_threadsafe(event.set)

    async def shutdown(self, drain_timeout: float | None = 60.0) -> None:
        """Drain in-flight jobs and release every resource.

        New submissions are refused (503) the moment draining starts;
        queued-but-unstarted jobs stay in the journal for the next
        boot.
        """
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = (
            None
            if drain_timeout is None
            else time.monotonic() + drain_timeout
        )
        while self._inflight > 0:
            if deadline is not None and time.monotonic() > deadline:
                break
            assert self._wake is not None
            self._wake.clear()
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._wake.wait(), timeout=0.5)
        self._stopping = True
        if self._wake is not None:
            self._wake.set()
        if self._dispatcher is not None:
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
        if self._pump is not None:
            with contextlib.suppress(Exception):
                self._beats.put(None)
            self._pump.join(timeout=5.0)
            self._pump = None
        if self._beat_manager is not None:
            self._beat_manager.shutdown()
            self._beat_manager = None
        if self._threads is not None:
            self._threads.shutdown(wait=True)
        if self.executor is not None:
            self.executor.close()
        self.ready.clear()

    # ------------------------------------------------------------------
    # Dispatch + execution
    # ------------------------------------------------------------------
    def _event_log(self, job_id: str) -> JobEventLog:
        log = self._events.get(job_id)
        if log is None:
            log = self._events[job_id] = JobEventLog()
        return log

    def _on_compaction(self, evicted: list[str]) -> None:
        """Journal-compaction hook (any thread; also boot-time replay)."""
        self.instr.count("serve.journal_compactions")
        if not evicted:
            return
        loop = self._loop
        if loop is None:
            # Boot-time compaction: the event machinery is empty.
            return
        try:
            loop.call_soon_threadsafe(self._prune_events, evicted)
        except RuntimeError:  # pragma: no cover - loop mid-shutdown
            pass

    def _prune_events(self, evicted: list[str]) -> None:
        for job_id in evicted:
            self._events.pop(job_id, None)

    def _gauges(self) -> None:
        assert self.queue is not None
        self.instr.gauge("serve.queue_depth", float(self.queue.depth))
        self.instr.gauge("serve.inflight", float(self._inflight))

    def _kick(self) -> None:
        if self._wake is not None:
            self._wake.set()

    async def _dispatch(self) -> None:
        assert self._wake is not None and self.queue is not None
        while not self._stopping:
            self._wake.clear()
            while (
                not self._draining
                and not self._paused
                and self._inflight < self.config.inflight
            ):
                job = self.queue.claim()
                if job is None:
                    break
                self._inflight += 1
                self._gauges()
                asyncio.create_task(self._run_job(job))
            await self._wake.wait()

    def set_paused(self, paused: bool) -> None:
        """Pause/resume execution: accepted jobs keep queueing and
        journaling, but no new job starts while paused (in-flight jobs
        finish).  The operational lever behind ``POST /admin/pause``."""
        self._paused = paused
        if not paused:
            self._kick()

    async def _run_job(self, job: Job) -> None:
        assert self._loop is not None and self._threads is not None
        log = self._event_log(job.job_id)
        log.append(
            {"event": "started", "attempt": job.attempts, "ts": time.time()}
        )
        self.instr.count("serve.jobs_started")
        spec = None
        if self._beats is not None:
            seed = int(
                (job.document.get("parameters") or {}).get("seed", 0)
            )
            spec = HeartbeatSpec(
                queue=self._beats,
                worker=0,
                seed=seed,
                interval=self.config.heartbeat_interval,
                label=job.job_id,
            )
        started = time.perf_counter()
        try:
            outcome = await self._loop.run_in_executor(
                self._threads,
                lambda: self.executor.execute(
                    job.document,
                    deadline=self.config.deadline,
                    heartbeat=spec,
                ),
            )
        except ReproError as error:
            self.queue.fail(job.job_id, str(error))
            self.instr.count("serve.jobs_failed")
            log.append(
                {"event": "failed", "error": str(error), "ts": time.time()}
            )
        except Exception as error:  # pragma: no cover - defensive
            self.queue.fail(job.job_id, f"internal error: {error!r}")
            self.instr.count("serve.jobs_failed")
            log.append(
                {"event": "failed", "error": repr(error), "ts": time.time()}
            )
        else:
            elapsed = time.perf_counter() - started
            self.cache.put(job.cache_key, outcome.result_text)
            self.queue.finish(job.job_id)
            self.instr.absorb(outcome.snapshot, worker=0)
            self.instr.count("serve.jobs_done")
            self.instr.observe("serve.job_seconds", elapsed)
            self._append_ledger(job, outcome.record)
            log.append(
                {
                    "event": "done",
                    "cached": False,
                    "seconds": round(elapsed, 6),
                    "ts": time.time(),
                }
            )
        finally:
            self._inflight -= 1
            self._gauges()
            self._kick()

    # -- cache peering --------------------------------------------------
    def _peer_client(self, shard_id: str) -> Any:
        client = self._peer_clients.get(shard_id)
        if client is None:
            from repro.serve.aio import AsyncHttpClient

            address = dict(self.config.peers)[shard_id]
            host, _, port = address.rpartition(":")
            client = AsyncHttpClient(host or "127.0.0.1", int(port))
            self._peer_clients[shard_id] = client
        return client

    async def _peer_lookup(
        self, route_key: str, cache_key: str
    ) -> str | None:
        """Ask the digest-owner peer for a cache entry we miss locally.

        *route_key* is the submission's **routing digest** — the same
        key the front tier hashes — so under normal front-routed
        traffic the owner is *us* and no probe is paid; a probe fires
        exactly when routing and ownership diverge (direct submission
        to a non-owner shard, or rerouting around a dead peer).

        Returns the owner's stored result text (then cached locally so
        the next hit is local), or ``None`` on owner-side miss, owner
        being *us*, or any transport trouble — peering is an
        optimisation and must never make an accept fail.
        """
        if self._peer_ring is None:
            return None
        owner = self._peer_ring.owner(route_key)
        if owner == self.config.self_id:
            return None
        from repro.serve.aio import AioHttpError

        try:
            response = await self._peer_client(owner).request(
                "GET",
                f"/cache/{cache_key}",
                timeout=self.config.peer_timeout,
            )
        except AioHttpError:
            self.instr.count("serve.cache_peer_errors")
            return None
        if response.status != 200:
            self.instr.count("serve.cache_peer_misses")
            return None
        self.instr.count("serve.cache_peer_hits")
        return response.body.decode("utf-8")

    def _append_ledger(self, job: Job, record: dict[str, Any]) -> None:
        if self.config.ledger is None:
            return
        from repro.obs.ledger import append_record

        tagged = dict(record)
        tagged["source"] = "serve"
        tagged["job_id"] = job.job_id
        if self.config.self_id is not None:
            tagged["shard"] = self.config.self_id
        try:
            append_record(tagged, self.config.ledger)
        except OSError as error:  # pragma: no cover - disk trouble
            self.instr.count("serve.ledger_errors")
            self.instr.event("serve.ledger_error", error=str(error))

    # -- heartbeat pump (thread) ----------------------------------------
    def _pump_beats(self) -> None:
        while True:
            try:
                beat = self._beats.get(timeout=0.2)
            except queue_module.Empty:
                continue
            except Exception:
                return  # queue torn down
            if beat is None:
                return
            if isinstance(beat, Heartbeat) and self._loop is not None:
                try:
                    self._loop.call_soon_threadsafe(self._on_beat, beat)
                except RuntimeError:
                    return  # loop closed mid-shutdown

    def _on_beat(self, beat: Heartbeat) -> None:
        log = self._events.get(beat.label)
        if log is None:
            return
        self.instr.count("serve.heartbeats")
        event = {
            "event": "progress",
            "kind": beat.kind,
            "t": round(beat.t, 6),
        }
        for key, value in beat.fields.items():
            if isinstance(value, (int, float, str, bool)):
                event[key] = value
        log.append(event)

    # ------------------------------------------------------------------
    # HTTP front
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve requests on one connection until it closes.

        Keep-alive: JSON exchanges loop; SSE streams, protocol errors,
        and ``Connection: close`` requests end the connection.
        """
        try:
            while True:
                try:
                    request = await read_request(reader)
                    if request is None:
                        return
                    keep = await self._route(request, writer)
                    if not keep:
                        return
                except asyncio.CancelledError:
                    # Server closing while this keep-alive connection
                    # idles between requests: end quietly.
                    return
                except HttpError as error:
                    await write_json(
                        writer, error.status, {"error": str(error)}
                    )
                    return
                except ConnectionError:
                    return
                except Exception as error:  # pragma: no cover - defensive
                    with contextlib.suppress(Exception):
                        await write_json(
                            writer,
                            500,
                            {"error": f"internal error: {error!r}"},
                        )
                    return
        finally:
            # CancelledError too: the close handshake itself gets
            # cancelled when the server shuts down mid-connection
            # (it derives from BaseException, which plain
            # ``suppress(Exception)`` would let escape to the loop's
            # exception handler as noise).
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    async def _route(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        """Dispatch one request; returns True to keep the connection."""
        keep = not request.wants_close
        method, path = request.method, request.path.rstrip("/")
        if path == "/healthz" and method == "GET":
            await write_json(
                writer,
                200,
                {"status": "ok", "draining": self._draining},
                close=not keep,
            )
            return keep
        if path == "/stats" and method == "GET":
            await write_json(writer, 200, self.stats(), close=not keep)
            return keep
        if path == "/jobs" and method == "POST":
            await self._handle_submit(request, writer, keep)
            return keep
        if path == "/jobs/batch" and method == "POST":
            await self._handle_batch(request, writer, keep)
            return keep
        if path == "/admin/shutdown" and method == "POST":
            self.request_shutdown()
            await write_json(writer, 200, {"status": "draining"}, close=True)
            return False
        if path == "/admin/pause" and method == "POST":
            self.set_paused(True)
            await write_json(
                writer, 200, {"status": "paused"}, close=not keep
            )
            return keep
        if path == "/admin/resume" and method == "POST":
            self.set_paused(False)
            await write_json(
                writer, 200, {"status": "running"}, close=not keep
            )
            return keep
        if path.startswith("/cache/") and method == "GET":
            await self._handle_cache(path[len("/cache/"):], writer, keep)
            return keep
        if path.startswith("/jobs/") and method == "GET":
            rest = path[len("/jobs/"):]
            if rest.endswith("/events"):
                await self._handle_events(
                    request, rest[: -len("/events")], writer
                )
                return False  # SSE bodies are connection-delimited
            if "/" not in rest:
                await self._handle_status(request, rest, writer, keep)
                return keep
        raise HttpError(
            404 if method in ("GET", "POST") else 405,
            f"no route for {method} {request.path}",
        )

    async def _handle_cache(
        self, key: str, writer: asyncio.StreamWriter, keep: bool
    ) -> None:
        """``GET /cache/{key}``: raw stored result text, for cache
        peering (a shard's local miss asks the digest owner here)."""
        try:
            text = self.cache.peek(key) if key else None
        except ValueError as error:
            raise HttpError(400, str(error))
        if text is None:
            raise HttpError(404, f"no cache entry {key!r}")
        self.instr.count("serve.cache_peer_serves")
        await write_response(
            writer, 200, text.encode("utf-8"), close=not keep
        )

    def _wait_seconds(self, request: Request) -> float | None:
        raw = request.query.get("wait")
        if raw is None:
            return None
        try:
            value = float(raw)
        except ValueError:
            raise HttpError(400, f"malformed wait={raw!r}")
        return max(0.0, min(value, MAX_WAIT_SECONDS))

    def _retry_after(self, key: str | None = None) -> int:
        """Measured backpressure hint: mean job time, or the configured
        fallback while the histogram is empty.

        With *key* (job id or digest) the hint carries deterministic
        jitter — a 1.0–1.5× multiplier derived from the key's hash — so
        a herd of rejected clients retrying on schedule does not
        stampede back in the same second.  Deterministic, so a client
        retrying the same job always hears the same number and tests
        can assert it.
        """
        histogram = self.instr.histogram("serve.job_seconds")
        if histogram is not None and histogram.count:
            mean = histogram.total / histogram.count
        else:
            mean = self.config.retry_after
        if key:
            token = int.from_bytes(
                hashlib.sha256(key.encode("utf-8")).digest()[:4], "big"
            )
            mean *= 1.0 + 0.5 * (token / 2**32)
        return max(1, int(math.ceil(mean)))

    def _result_payload(
        self, job: Job
    ) -> tuple[dict[str, Any], dict[str, str] | None]:
        """Job status payload plus the raw result text to splice in."""
        payload = job.as_status()
        if job.status == "done":
            text = self.cache.peek(job.cache_key)
            if text is not None:
                return payload, {"result": text}
        return payload, None

    async def _handle_submit(
        self, request: Request, writer: asyncio.StreamWriter, keep: bool
    ) -> None:
        if self._draining:
            await write_json(
                writer, 503, {"error": "server is draining"}, close=not keep
            )
            return
        self.instr.count("serve.requests")
        started = time.perf_counter()
        try:
            submission = parse_submission(request.json())
        except ReproError as error:
            self.instr.count("serve.requests_invalid")
            await write_json(
                writer, 400, {"error": str(error)}, close=not keep
            )
            return
        try:
            status, payload, raw = await self._accept(submission)
        except QueueFullError as error:
            retry = self._retry_after(submission.job_id or submission.digest)
            self.instr.count("serve.jobs_rejected")
            await write_json(
                writer,
                429,
                {"error": str(error), "retry_after": retry},
                extra_headers={"Retry-After": str(retry)},
                close=not keep,
            )
            return
        wait = self._wait_seconds(request)
        if wait and status == 202:
            job_id = payload["job_id"]
            log = self._event_log(job_id)
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(log.wait_terminal(), timeout=wait)
            job = self.queue.get(job_id)
            payload, raw = self._result_payload(job)
            payload["cached"] = False
            status = 200 if job.status in ("done", "failed") else 202
        self.instr.observe(
            "serve.request_seconds", time.perf_counter() - started
        )
        await write_json(writer, status, payload, raw=raw, close=not keep)

    async def _accept(
        self, submission: Submission
    ) -> tuple[int, dict[str, Any], dict[str, str] | None]:
        """Cache-or-queue one parsed submission (429 raises through).

        Returns ``(status, payload, raw)``; *raw* carries pre-serialised
        result text for :func:`~repro.serve.http.write_json` to splice
        in verbatim (the cache-hit fast path).  With peering configured,
        a local miss asks the digest-owner shard's cache before paying
        for a synthesis run.
        """
        text = self.cache.get(submission.cache_key)
        if text is None and self._peer_ring is not None:
            from repro.serve.ring import routing_digest

            text = await self._peer_lookup(
                routing_digest(submission.document), submission.cache_key
            )
            if text is not None:
                self.cache.put(submission.cache_key, text)
        if text is not None:
            self.instr.count("serve.cache_hits")
            payload = {
                "job_id": submission.job_id,
                "status": "done",
                "cached": True,
                "digest": submission.digest,
            }
            return 200, payload, {"result": text}
        self.instr.count("serve.cache_misses")
        job, created = self.queue.submit(
            submission.document,
            digest=submission.digest,
            cache_key=submission.cache_key,
            job_id=submission.job_id,
        )
        if created:
            self.instr.count("serve.jobs_accepted")
            self._event_log(job.job_id).append(
                {"event": "queued", "ts": time.time()}
            )
            self._gauges()
            self._kick()
            return 202, {
                "job_id": job.job_id,
                "status": "queued",
                "cached": False,
                "digest": submission.digest,
            }, None
        # Idempotent resubmission of a known job id.
        payload, raw = self._result_payload(job)
        payload["cached"] = False
        return (200 if job.status == "done" else 202), payload, raw

    async def _handle_batch(
        self, request: Request, writer: asyncio.StreamWriter, keep: bool
    ) -> None:
        if self._draining:
            await write_json(
                writer, 503, {"error": "server is draining"}, close=not keep
            )
            return
        self.instr.count("serve.requests")
        data = request.json()
        items = data.get("jobs") if isinstance(data, dict) else None
        if not isinstance(items, list) or not items:
            raise HttpError(400, "body must be {'jobs': [submission, …]}")
        entries: list[dict[str, Any]] = []
        accepted = rejected = hits = 0
        for item in items:
            try:
                submission = parse_submission(item)
                status, payload, raw = await self._accept(submission)
                if raw is not None:
                    # Batch responses embed results as parsed objects;
                    # write_json's canonical serialisation keeps them
                    # byte-identical to the stored text.
                    payload["result"] = json.loads(raw["result"])
            except QueueFullError as error:
                rejected += 1
                self.instr.count("serve.jobs_rejected")
                entries.append(
                    {
                        "status": "rejected",
                        "error": str(error),
                        "retry_after": self._retry_after(
                            submission.job_id or submission.digest
                        ),
                    }
                )
                continue
            except ReproError as error:
                rejected += 1
                entries.append(
                    {"status": "invalid", "error": str(error)}
                )
                continue
            if payload.get("cached"):
                hits += 1
            else:
                accepted += 1
            entries.append(payload)
        await write_json(
            writer,
            200,
            {
                "jobs": entries,
                "accepted": accepted,
                "cached": hits,
                "rejected": rejected,
            },
            close=not keep,
        )

    async def _handle_status(
        self,
        request: Request,
        job_id: str,
        writer: asyncio.StreamWriter,
        keep: bool,
    ) -> None:
        job = self.queue.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        wait = self._wait_seconds(request)
        if wait and job.status in ("queued", "running"):
            log = self._event_log(job_id)
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(log.wait_terminal(), timeout=wait)
            job = self.queue.get(job_id)
        payload, raw = self._result_payload(job)
        await write_json(writer, 200, payload, raw=raw, close=not keep)

    async def _handle_events(
        self, request: Request, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        job = self.queue.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        raw_start = request.query.get("start")
        start = 0
        if raw_start is not None:
            try:
                start = int(raw_start)
            except ValueError:
                raise HttpError(400, f"malformed start={raw_start!r}")
            if start < 0:
                raise HttpError(400, "start must be >= 0")
        await write_response(
            writer,
            200,
            b"",
            content_type="text/event-stream",
            extra_headers={"Cache-Control": "no-cache"},
            head_only=True,
        )
        log = self._event_log(job_id)
        async for index, event in log.follow(start):
            # Each frame carries its stream position (``id:`` line and
            # an ``i`` field): a dropped client reconnects with
            # ``?start=i+1`` and resumes without replay or loss.
            data = dict(event)
            data["i"] = index
            writer.write(sse_event(data, event.get("event"), event_id=index))
            await writer.drain()
        end_index = len(log.events)
        writer.write(
            sse_event({"event": "end", "i": end_index}, "end",
                      event_id=end_index)
        )
        await writer.drain()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        return {
            "uptime_s": round(time.time() - self._started_at, 3),
            "draining": self._draining,
            "paused": self._paused,
            "shard": self.config.self_id,
            "queue": {
                "depth": self.queue.depth,
                "limit": self.queue.limit,
                "inflight": self._inflight,
                "inflight_limit": self.config.inflight,
                "recovered": self.queue.recovered,
                "counts": self.queue.counts(),
            },
            "journal": {
                "lines": self.queue.journal_lines,
                "limit": self.queue.journal_limit,
                "compactions": self.queue.compactions,
            },
            "cache": self.cache.stats(),
            "pool": {
                "jobs": self.executor.pool_jobs,
                "generations": self.executor.session.generations,
                "deadline": self.config.deadline,
                "retries": self.executor.retries,
            },
            "counters": self.instr.counters,
            "gauges": self.instr.gauges,
            "histograms": self.instr.histogram_summaries(),
        }


# ----------------------------------------------------------------------
# The ``python -m repro serve`` command
# ----------------------------------------------------------------------
def run_serve(argv: list[str] | None = None) -> int:
    """Implementation of ``python -m repro serve`` (returns exit code)."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve synthesis over HTTP/JSON with a persistent job queue "
            "and a content-addressed result cache (docs/SERVICE.md)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"TCP port (default: {DEFAULT_PORT}; 0 picks "
                             "a free port)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="synthesis pool worker processes "
                             "(default: 0 = one per CPU; 1 = inline, "
                             "which disables deadlines and worker-death "
                             "recovery)")
    parser.add_argument("--inflight", type=int, default=2,
                        help="jobs executing concurrently (default: 2)")
    parser.add_argument("--queue-limit", type=int,
                        default=DEFAULT_QUEUE_LIMIT,
                        help="pending-job bound; beyond it submissions "
                             f"get 429 (default: {DEFAULT_QUEUE_LIMIT})")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job deadline; an overdue job fails and "
                             "its worker pool is recycled (default: none)")
    parser.add_argument("--retries", type=int, default=3,
                        help="pool rebuilds tolerated per job after "
                             "worker death (default: 3)")
    parser.add_argument("--state-dir", type=Path,
                        default=DEFAULT_STATE_DIR,
                        help="journal + cache directory "
                             f"(default: {DEFAULT_STATE_DIR})")
    parser.add_argument("--ledger", type=Path, default=None, metavar="PATH",
                        help="append a 'source: serve' run-ledger record "
                             "per executed job (default: "
                             ".repro/ledger.jsonl; see --no-ledger)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="skip run-ledger records entirely")
    parser.add_argument("--no-heartbeats", action="store_true",
                        help="disable worker progress heartbeats (SSE "
                             "streams then carry lifecycle events only)")
    parser.add_argument("--journal-limit", type=int, default=None,
                        metavar="LINES",
                        help="journal line count that triggers snapshot + "
                             "truncate compaction (default: never)")
    parser.add_argument("--cache-limit", type=int, default=None,
                        metavar="ENTRIES",
                        help="result-cache entry bound; oldest entries are "
                             "evicted LRU-by-mtime (default: unbounded)")
    parser.add_argument("--peers", default=None, metavar="ID=HOST:PORT,…",
                        help="shard topology for cache peering: "
                             "comma-separated id=host:port pairs including "
                             "this server (see --self-id)")
    parser.add_argument("--self-id", default=None, metavar="ID",
                        help="this server's shard id within --peers")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="supervise N sharded backends behind a "
                             "digest-routing front tier on --port "
                             "(delegates to 'python -m repro shard')")
    args = parser.parse_args(argv)

    if args.shards is not None:
        from repro.serve.shard import run_shard_supervisor

        return run_shard_supervisor(args)

    from repro.obs.ledger import DEFAULT_LEDGER_PATH

    peers: tuple[tuple[str, str], ...] = ()
    if args.peers:
        try:
            peers = tuple(
                (pair.split("=", 1)[0], pair.split("=", 1)[1])
                for pair in args.peers.split(",")
                if pair
            )
        except IndexError:
            parser.error("--peers must be id=host:port[,id=host:port…]")
        if args.self_id is None:
            parser.error("--peers requires --self-id")

    ledger = None if args.no_ledger else (args.ledger or DEFAULT_LEDGER_PATH)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        pool_jobs=args.jobs,
        inflight=args.inflight,
        queue_limit=args.queue_limit,
        deadline=args.deadline,
        retries=args.retries,
        state_dir=args.state_dir,
        ledger=ledger,
        heartbeats=not args.no_heartbeats,
        journal_limit=args.journal_limit,
        cache_limit=args.cache_limit,
        peers=peers,
        self_id=args.self_id,
    )
    server = SynthesisServer(config)

    async def _main() -> None:
        started = asyncio.create_task(server.run())
        while not server.ready.is_set() and not started.done():
            await asyncio.sleep(0.01)
        if server.ready.is_set():
            print(
                f"repro-serve: listening on "
                f"http://{config.host}:{server.bound_port} "
                f"(pool jobs={server.executor.pool_jobs}, "
                f"inflight={config.inflight}, "
                f"queue limit={config.queue_limit})",
                file=sys.stderr,
            )
        await started

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - double ^C
        pass
    except OSError as error:
        print(f"error: cannot serve: {error}", file=sys.stderr)
        return 3
    print("repro-serve: drained and stopped", file=sys.stderr)
    return 0


def serve_main(argv: list[str] | None = None) -> None:  # pragma: no cover
    raise SystemExit(run_serve(argv))

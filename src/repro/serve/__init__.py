"""Synthesis-as-a-service: async HTTP job server with a result cache.

The subsystem converts the single-shot synthesis CLI into a long-lived
service (ROADMAP item 1).  Layers, bottom up:

* :mod:`repro.serve.protocol` — submission documents: validation,
  canonicalisation, content addressing (via :mod:`repro.core.digest`),
  and the serialised result document.
* :mod:`repro.serve.jobs` — the bounded persistent job queue: an
  append-only JSONL journal under ``.repro/serve/`` replayed on
  restart, so accepted jobs survive a crash.
* :mod:`repro.serve.cache` — the content-addressed result cache:
  identical submissions are served from cache in microseconds instead
  of re-synthesized.
* :mod:`repro.serve.executor` — job execution over the
  :class:`~repro.parallel.pool.PoolSession` process pool with per-job
  deadlines and retry-after-worker-death.
* :mod:`repro.serve.http` — a minimal asyncio HTTP/1.1 layer (stdlib
  only; no new dependencies).
* :mod:`repro.serve.server` — the orchestrator tying the above into
  ``python -m repro serve``: endpoints, backpressure (429 +
  ``Retry-After``), SSE progress streams, graceful shutdown.
* :mod:`repro.serve.client` — a blocking client and the
  ``python -m repro submit`` command.
* :mod:`repro.serve.ring` — rendezvous hashing of submission digests
  over shard ids (the scale-out routing function).
* :mod:`repro.serve.aio` — the asyncio HTTP client used for
  shard-to-shard and front-to-backend traffic.
* :mod:`repro.serve.shard` — horizontal scale-out: the digest-routing
  front tier and the ``python -m repro serve --shards N`` supervisor.
* :mod:`repro.serve.loadgen` — the async load generator behind
  ``bench --serve`` (throughput / latency / cache-speedup artifact).

See ``docs/SERVICE.md`` for the API reference and semantics.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient
from repro.serve.jobs import JobQueue, QueueFullError
from repro.serve.protocol import (
    Submission,
    SubmissionError,
    parse_submission,
    result_document,
)
from repro.serve.ring import RendezvousRing, routing_digest
from repro.serve.server import ServeConfig, SynthesisServer
from repro.serve.shard import ShardConfig, ShardFrontTier

__all__ = [
    "JobQueue",
    "QueueFullError",
    "RendezvousRing",
    "ResultCache",
    "ServeClient",
    "ServeConfig",
    "ShardConfig",
    "ShardFrontTier",
    "Submission",
    "SubmissionError",
    "SynthesisServer",
    "parse_submission",
    "result_document",
    "routing_digest",
]

"""Rendezvous hashing: the shard-routing heart of the front tier.

The service's natural shard key is the problem content address
(:mod:`repro.core.digest`) — it already names "the same job" for the
result cache and the run ledger, so hashing it across backends gives
every problem exactly one home shard, and identical submissions always
meet their own cached result.

The shared key is the **routing digest** (:func:`routing_digest`) —
SHA-256 of the canonical JSON of the raw submission document (minus
``job_id``, so idempotent resubmissions land on the same shard).  The
front tier computes it without building the synthesis problem: routing
must cost microseconds, not the ~200µs validation stack.  Backends
hash the *same* key over the *same* ring for cache peering, so under
normal front-routed traffic every job lands on its own cache owner and
no peer probe is paid; a backend that misses locally on a job it does
**not** own (direct submission, or rerouting around a dead shard) asks
``owner(routing_digest)`` for the entry before paying for a synthesis
run.

:class:`RendezvousRing` implements highest-random-weight (rendezvous)
hashing over stable node ids (never addresses — ports are ephemeral;
ids like ``shard-0`` keep ownership deterministic across boots).  Its
defining property is minimal disruption: removing a node only remaps
the keys that node owned, every other key keeps its shard — exactly
the failover contract (``rank`` is the ring order the front tier walks
when shards die).
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, Mapping, Sequence

from repro.core.digest import canonical_json, text_digest

__all__ = ["RendezvousRing", "routing_digest"]


def routing_digest(document: Any) -> str:
    """The front tier's cheap shard key for one submission document.

    SHA-256 over the canonical JSON of the document with the same
    normalisation :func:`~repro.serve.protocol.parse_submission`
    applies to the stored job document — ``job_id`` removed (the
    idempotency key must not move a resubmission to a different
    shard), ``algorithm`` defaulted, empty ``parameters``/
    ``allocation`` dropped.  The front tier hashes the *raw* client
    item and backends hash the *canonicalised* journal document, so
    without this normalisation the two sides would disagree on the
    owner for every submission that relies on a default, and each
    disagreement costs a pointless cache-peer probe.  Non-mapping
    values (malformed batch items the backend will reject) hash as-is
    — they still need *some* deterministic home.
    """
    if isinstance(document, Mapping):
        document = {
            key: value
            for key, value in document.items()
            if key != "job_id" and not (
                key in ("parameters", "allocation") and not value
            )
        }
        document.setdefault("algorithm", "ours")
    return text_digest(canonical_json(document))


class RendezvousRing:
    """Highest-random-weight hashing over a fixed set of node ids."""

    def __init__(self, nodes: Iterable[str]) -> None:
        self.nodes: tuple[str, ...] = tuple(nodes)
        if not self.nodes:
            raise ValueError("rendezvous ring needs at least one node")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError(f"duplicate node ids: {self.nodes!r}")

    @staticmethod
    def _score(node: str, key: str) -> int:
        digest = hashlib.sha256(f"{node}|{key}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def rank(self, key: str) -> list[str]:
        """Every node, best owner first — the failover walk order.

        Deterministic for a given ``(nodes, key)`` pair across
        processes and boots (pure SHA-256, no process hash seed).
        """
        return sorted(
            self.nodes,
            key=lambda node: (self._score(node, key), node),
            reverse=True,
        )

    def owner(
        self, key: str, alive: Sequence[str] | None = None
    ) -> str | None:
        """The best-ranked node for *key*, restricted to *alive* nodes
        when given; ``None`` when no candidate survives."""
        candidates = self.nodes if alive is None else [
            node for node in self.rank(key) if node in set(alive)
        ]
        if not candidates:
            return None
        if alive is not None:
            return candidates[0]
        return max(
            candidates, key=lambda node: (self._score(node, key), node)
        )

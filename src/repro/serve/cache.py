"""Content-addressed synthesis result cache.

The synthesis flow is deterministic for a fixed submission, so a
result is fully identified by its submission's content address
(:mod:`repro.core.digest`).  The cache maps that key to the canonical
result-document *text* produced by the first execution: a hit replays
the original result byte for byte, which is the service's cache
contract (``"cached": true`` responses are indistinguishable from the
original run's ``result`` object).

Storage is one file per entry under ``<root>/<key>.json``, written
atomically (temp file + :func:`os.replace`) so a crash mid-write can
never leave a half-result a later boot would serve.  A warm in-memory
mirror makes repeat hits microsecond-fast; cold hits (after a restart)
read the file once and re-warm.

Hit/miss counters live on the instance; the server republishes them as
``serve.cache_hits`` / ``serve.cache_misses`` counters and in
``GET /stats``.

With a *limit*, the cache evicts least-recently-used entries
(LRU-by-mtime: every hit — memory-warm or disk-cold — touches the
entry file's mtime) once a :meth:`put` pushes the entry count over the
bound.  Eviction only ever forgets a *reproducible* value: the flow is
deterministic, so a re-request of an evicted entry re-synthesizes the
byte-identical result text and re-caches it.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Callable

__all__ = ["ResultCache"]

#: Characters allowed in cache keys (hex digests plus the lowercase
#: algorithm namespace prefix) — anything else would risk path games.
_KEY_CHARS = frozenset("abcdefghijklmnopqrstuvwxyz0123456789-")


class ResultCache:
    """Disk-backed, memory-mirrored map of content key -> result text."""

    def __init__(
        self,
        root: str | Path,
        limit: int | None = None,
        on_evict: Callable[[int], None] | None = None,
    ) -> None:
        if limit is not None and limit < 1:
            raise ValueError(f"cache limit must be >= 1, got {limit}")
        self.root = Path(root)
        self.limit = limit
        self.on_evict = on_evict
        self._memory: dict[str, str] = {}
        #: Keys known to exist on disk.  The cache directory is owned
        #: exclusively by this instance's process, so the index only
        #: changes through :meth:`put` and eviction — misses then cost
        #: one set lookup instead of a filesystem probe (measurable on
        #: the service accept path, where every fresh submission
        #: misses).
        self._known: set[str] = set()
        try:
            with os.scandir(self.root) as entries:
                self._known = {
                    entry.name[: -len(".json")]
                    for entry in entries
                    if entry.name.endswith(".json")
                }
        except OSError:
            pass
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _touch(self, key: str) -> None:
        """Refresh the entry's mtime — the LRU recency signal."""
        try:
            os.utime(self._path(key))
        except OSError:
            pass

    @staticmethod
    def _check_key(key: str) -> str:
        if not key or not set(key) <= _KEY_CHARS:
            raise ValueError(f"invalid cache key: {key!r}")
        return key

    def _path(self, key: str) -> Path:
        return self.root / f"{self._check_key(key)}.json"

    def get(self, key: str) -> str | None:
        """The cached result text for *key*, or ``None`` (counted)."""
        self._check_key(key)
        with self._lock:
            text = self._memory.get(key)
            if text is not None:
                self.hits += 1
                self._touch(key)
                return text
            known = key in self._known
        text = None
        if known:
            try:
                text = self._path(key).read_text(encoding="utf-8")
            except OSError:
                text = None
        with self._lock:
            if text is not None:
                self._memory[key] = text
                self.hits += 1
                self._touch(key)
            else:
                self._known.discard(key)
                self.misses += 1
        return text

    def peek(self, key: str) -> str | None:
        """Read *key* without touching the hit/miss counters.

        Status endpoints use this: retrieving an already-delivered
        result is not a cache decision and must not skew the ratio.
        """
        self._check_key(key)
        with self._lock:
            text = self._memory.get(key)
            if text is None and key not in self._known:
                return None
        if text is not None:
            return text
        try:
            text = self._path(key).read_text(encoding="utf-8")
        except OSError:
            return None
        with self._lock:
            self._memory[key] = text
        return text

    def contains(self, key: str) -> bool:
        """Presence probe that does not touch the hit/miss counters."""
        with self._lock:
            if key in self._memory:
                return True
        return self._path(key).exists()

    def put(self, key: str, text: str) -> None:
        """Store *text* under *key* (atomic; last writer wins)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp-{os.getpid()}-{threading.get_ident()}")
        with open(tmp, "w", encoding="utf-8") as stream:
            stream.write(text)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)
        with self._lock:
            self._memory[key] = text
            self._known.add(key)
            if self.limit is not None:
                self._evict_locked(keep=key)

    def _evict_locked(self, keep: str) -> None:
        """Drop oldest-mtime entries until the count fits the limit."""
        assert self.limit is not None
        try:
            candidates = [
                (path.stat().st_mtime, path)
                for path in self.root.glob("*.json")
            ]
        except OSError:  # pragma: no cover - directory races
            return
        excess = len(candidates) - self.limit
        if excess <= 0:
            return
        candidates.sort()
        evicted = 0
        for _, path in candidates:
            if evicted >= excess:
                break
            key = path.stem
            if key == keep:
                continue
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent eviction
                continue
            self._memory.pop(key, None)
            self._known.discard(key)
            evicted += 1
        self.evictions += evicted
        if evicted and self.on_evict is not None:
            self.on_evict(evicted)

    def entries(self) -> int:
        """Number of entries on disk (authoritative across restarts)."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": self.entries(),
                "warm": len(self._memory),
                "evictions": self.evictions,
                "limit": self.limit,
            }

"""Blocking client + ``python -m repro submit`` command.

:class:`ServeClient` is the library-side counterpart of
:class:`~repro.serve.server.SynthesisServer`: plain stdlib
``http.client`` with keep-alive — the server answers JSON exchanges
with ``Connection: keep-alive``, so the client holds one TCP
connection across calls (per-request connection setup was a measured
tax in the load generator; see ``BENCH_pr10.json``'s keep-alive
delta), retrying once on a fresh connection when a kept-alive one
went stale.  JSON in/out, plus a tiny SSE parser for the progress
stream; :meth:`ServeClient.follow_events` resumes a dropped stream
from the last seen event index (``?start=``) without losing the
terminal frame.

``run_submit`` is the command-line face::

    python -m repro submit PCR --seed 3                # wait for result
    python -m repro submit PCR --seed 3 --no-wait      # fire-and-poll
    python -m repro submit my_assay.json -m 2 -H 1 -d 1
    python -m repro submit PCR --follow                # SSE progress
    python -m repro submit --stats                     # server stats
    python -m repro submit --shutdown                  # graceful drain

It prints the result summary like the synthesis CLI does (or the whole
response with ``--json``) and exits 0 on success, 1 on a failed job,
2 on usage/validation errors, 3 when the server is unreachable.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection, HTTPException
from pathlib import Path
from typing import Any, Iterator
from urllib.parse import urlsplit

from repro.errors import ReproError

__all__ = ["ServeClient", "ServeUnavailableError", "run_submit"]

DEFAULT_URL = "http://127.0.0.1:8077"


class ServeUnavailableError(ReproError):
    """The synthesis server could not be reached at all."""


class ServeClient:
    """Minimal blocking client for the synthesis service."""

    def __init__(self, url: str = DEFAULT_URL, timeout: float = 600.0) -> None:
        split = urlsplit(url if "//" in url else f"http://{url}")
        if split.scheme not in ("", "http"):
            raise ReproError(
                f"unsupported scheme {split.scheme!r} (http only)"
            )
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout = timeout
        self._connection: HTTPConnection | None = None

    def close(self) -> None:
        """Drop the kept-alive connection (reconnects on next call)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- transport ------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Any = None
    ) -> tuple[int, dict[str, str], Any]:
        payload = (
            None
            if body is None
            else json.dumps(
                body, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
        )
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            reused = self._connection is not None
            connection = self._connection or HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._connection = None
            try:
                connection.request(method, path, body=payload,
                                   headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (OSError, HTTPException) as error:
                connection.close()
                if reused and attempt == 0:
                    continue  # stale keep-alive connection: one retry
                raise ServeUnavailableError(
                    f"cannot reach synthesis server at "
                    f"http://{self.host}:{self.port}: {error}"
                ) from error
            headers_out = {
                name.lower(): value for name, value in response.getheaders()
            }
            if response.will_close:
                connection.close()
            else:
                self._connection = connection  # keep-alive: reuse next call
            try:
                data = json.loads(raw) if raw else None
            except ValueError:
                data = {"error": raw.decode("utf-8", "replace")}
            return response.status, headers_out, data
        raise AssertionError("unreachable")  # pragma: no cover

    # -- API ------------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")[2]

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/stats")[2]

    def submit(
        self, submission: dict[str, Any], wait: float | None = None
    ) -> tuple[int, dict[str, str], dict[str, Any]]:
        """POST one submission; returns ``(status, headers, body)``.

        429 (queue full) is returned, not raised — the caller decides
        whether to honour ``Retry-After`` or give up.
        """
        path = "/jobs" if wait is None else f"/jobs?wait={wait:g}"
        return self._request("POST", path, submission)

    def submit_batch(
        self, submissions: list[dict[str, Any]]
    ) -> dict[str, Any]:
        status, _, body = self._request(
            "POST", "/jobs/batch", {"jobs": submissions}
        )
        if status != 200:
            raise ReproError(
                f"batch submission failed ({status}): "
                f"{(body or {}).get('error', 'unknown')}"
            )
        return body

    def job(self, job_id: str, wait: float | None = None) -> dict[str, Any]:
        path = f"/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait:g}"
        status, _, body = self._request("GET", path)
        if status == 404:
            raise ReproError(f"unknown job {job_id!r}")
        return body

    def wait_for(
        self,
        job_id: str,
        timeout: float = 3600.0,
        poll: float = 30.0,
    ) -> dict[str, Any]:
        """Long-poll *job_id* until it reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ReproError(
                    f"job {job_id} still {self.job(job_id)['status']} "
                    f"after {timeout:.0f}s"
                )
            status = self.job(job_id, wait=min(poll, max(0.1, remaining)))
            if status.get("status") in ("done", "failed"):
                return status

    def events(
        self, job_id: str, start: int = 0
    ) -> Iterator[dict[str, Any]]:
        """Yield SSE progress events for *job_id* until it finishes.

        *start* resumes the stream from that event index (each frame
        carries its index in the ``i`` field).  One shot: a broken
        connection raises; :meth:`follow_events` adds reconnection.
        """
        connection = HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        path = f"/jobs/{job_id}/events"
        if start:
            path += f"?start={start}"
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            if response.status != 200:
                raise ReproError(
                    f"events stream failed ({response.status}) "
                    f"for job {job_id!r}"
                )
            for frame in _read_sse(response):
                yield frame
        except (OSError, HTTPException) as error:
            raise ServeUnavailableError(
                f"events stream broke for job {job_id!r}: {error}"
            ) from error
        finally:
            connection.close()

    def follow_events(
        self,
        job_id: str,
        start: int = 0,
        max_reconnects: int = 5,
    ) -> Iterator[dict[str, Any]]:
        """Like :meth:`events`, but survive dropped connections.

        Tracks the last seen event index and reconnects with
        ``?start=<index + 1>``, so no event — in particular the
        terminal ``done``/``failed`` frame — is lost or repeated.
        Gives up (re-raising) after *max_reconnects* consecutive
        failures.
        """
        position = start
        failures = 0
        while True:
            try:
                for event in self.events(job_id, start=position):
                    index = event.get("i")
                    if isinstance(index, int):
                        position = index + 1
                    failures = 0
                    yield event
                    if event.get("event") == "end":
                        return
                return  # stream ended cleanly without an end frame
            except ServeUnavailableError:
                failures += 1
                if failures > max_reconnects:
                    raise
                time.sleep(min(0.2 * failures, 2.0))

    def shutdown(self) -> dict[str, Any]:
        return self._request("POST", "/admin/shutdown", {})[2]


def _read_sse(response: Any) -> Iterator[dict[str, Any]]:
    """Parse ``data:`` lines off a live SSE response body."""
    for raw in response:
        line = raw.decode("utf-8", "replace").rstrip("\r\n")
        if not line.startswith("data: "):
            continue
        try:
            data = json.loads(line[len("data: "):])
        except ValueError:
            continue
        if isinstance(data, dict):
            yield data
            if data.get("event") == "end":
                return


# ----------------------------------------------------------------------
# The ``python -m repro submit`` command
# ----------------------------------------------------------------------
def _build_submission(args: Any) -> dict[str, Any]:
    parameters: dict[str, Any] = {"seed": args.seed}
    if args.engine is not None:
        parameters["placement_engine"] = args.engine
    if args.route_engine is not None:
        parameters["route_engine"] = args.route_engine
    if args.restarts is not None:
        parameters["restarts"] = args.restarts
    if args.check is not None:
        parameters["check"] = args.check
    if args.tc is not None:
        parameters["transport_time"] = args.tc
    submission: dict[str, Any] = {
        "parameters": parameters,
        "algorithm": args.algorithm,
    }
    if args.job_id:
        submission["job_id"] = args.job_id
    target = args.target
    if target is None:
        raise ReproError(
            "a benchmark name or assay JSON path is required "
            "(or use --stats / --shutdown)"
        )
    path = Path(target)
    if path.suffix == ".json" or path.exists():
        document = json.loads(path.read_text(encoding="utf-8"))
        submission["assay"] = document
        submission["allocation"] = {
            "mixers": args.mixers,
            "heaters": args.heaters,
            "filters": args.filters,
            "detectors": args.detectors,
        }
    else:
        submission["benchmark"] = target
    return submission


def _print_result(body: dict[str, Any]) -> int:
    import sys

    status = body.get("status")
    if status == "failed":
        print(f"job {body.get('job_id')} failed: {body.get('error')}",
              file=sys.stderr)
        return 1
    result = body.get("result")
    if not result:
        print(f"job {body.get('job_id')}: {status}")
        return 0
    cached = " (cached)" if body.get("cached") else ""
    metrics = result.get("metrics") or {}
    facts = ", ".join(
        f"{name}={metrics[name]:g}"
        for name in (
            "execution_time_s",
            "total_channel_length_mm",
            "cpu_time_s",
        )
        if name in metrics
    )
    print(f"{result.get('benchmark')}{cached}: {facts}")
    return 0


def run_submit(argv: list[str] | None = None) -> int:
    """Implementation of ``python -m repro submit`` (returns exit code)."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="repro submit",
        description=(
            "Submit synthesis jobs to a running `python -m repro serve` "
            "instance (docs/SERVICE.md)."
        ),
    )
    parser.add_argument("target", nargs="?", default=None,
                        help="benchmark name (e.g. PCR) or assay JSON path")
    parser.add_argument("--url", default=DEFAULT_URL,
                        help=f"server base URL (default: {DEFAULT_URL})")
    parser.add_argument("-m", "--mixers", type=int, default=0)
    parser.add_argument("-H", "--heaters", type=int, default=0)
    parser.add_argument("-f", "--filters", type=int, default=0)
    parser.add_argument("-d", "--detectors", type=int, default=0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--engine", default=None,
                        choices=["naive", "incremental", "batch"])
    parser.add_argument("--route-engine", default=None,
                        choices=["grid", "flat", "flat2"])
    parser.add_argument("--restarts", type=int, default=None)
    parser.add_argument("--check", default=None,
                        choices=["off", "basic", "strict"])
    parser.add_argument("--tc", type=float, default=None,
                        help="transport time constant")
    parser.add_argument("--algorithm", default="ours",
                        choices=["ours", "baseline"])
    parser.add_argument("--job-id", default=None,
                        help="client-chosen idempotency key")
    parser.add_argument("--no-wait", action="store_true",
                        help="return the job id immediately instead of "
                             "waiting for the result")
    parser.add_argument("--timeout", type=float, default=3600.0,
                        help="seconds to wait for the result "
                             "(default: 3600)")
    parser.add_argument("--follow", action="store_true",
                        help="stream SSE progress events while waiting")
    parser.add_argument("--json", action="store_true",
                        help="print the raw JSON response")
    parser.add_argument("--stats", action="store_true",
                        help="print GET /stats and exit")
    parser.add_argument("--shutdown", action="store_true",
                        help="ask the server to drain and stop")
    args = parser.parse_args(argv)

    client = ServeClient(args.url)
    try:
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.shutdown:
            print(json.dumps(client.shutdown(), sort_keys=True))
            return 0
        submission = _build_submission(args)
        wait = None if (args.no_wait or args.follow) else args.timeout
        status, headers, body = client.submit(submission, wait=wait)
        if status == 429:
            retry = headers.get("retry-after", "?")
            print(
                f"server busy (429): queue full, retry after {retry}s",
                file=sys.stderr,
            )
            return 1
        if status not in (200, 202):
            print(f"error ({status}): {(body or {}).get('error')}",
                  file=sys.stderr)
            return 2
        if args.follow and body.get("status") not in ("done", "failed"):
            for event in client.follow_events(body["job_id"]):
                print(json.dumps(event, sort_keys=True), file=sys.stderr)
                if event.get("event") in ("done", "failed", "end"):
                    break
            body = client.job(body["job_id"])
        elif args.no_wait:
            print(json.dumps(body, sort_keys=True))
            return 0
        elif body.get("status") not in ("done", "failed"):
            body = client.wait_for(body["job_id"], timeout=args.timeout)
        if args.json:
            print(json.dumps(body, indent=2, sort_keys=True))
            return 1 if body.get("status") == "failed" else 0
        return _print_result(body)
    except ServeUnavailableError as error:
        print(f"error: {error}", file=sys.stderr)
        return 3
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        client.close()

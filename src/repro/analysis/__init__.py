"""Post-synthesis analysis: storage demand, bottlenecks, congestion."""

from repro.analysis.bottleneck import (
    BottleneckLink,
    BottleneckReport,
    analyse_bottleneck,
)
from repro.analysis.congestion import (
    CellCongestion,
    CongestionReport,
    analyse_congestion,
)
from repro.analysis.storage import StorageDemand, storage_demand

__all__ = [
    "BottleneckLink",
    "BottleneckReport",
    "CellCongestion",
    "CongestionReport",
    "StorageDemand",
    "analyse_bottleneck",
    "analyse_congestion",
    "storage_demand",
]

"""Schedule bottleneck analysis.

Explains *why* a schedule finishes when it does: reconstructs the chain
of binding constraints that ends at the makespan-defining operation and
classifies each link (dependency wait, transport, channel cache,
component wash, component busy).  Designers use this to decide whether
to allocate another component, shorten washes, or accept the critical
path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schedule.schedule import Schedule
from repro.units import Seconds, approx_eq

__all__ = ["BottleneckLink", "BottleneckReport", "analyse_bottleneck"]


@dataclass(frozen=True)
class BottleneckLink:
    """One step of the critical chain, ending at *op_id*'s start."""

    op_id: str
    start: Seconds
    #: What the start time was waiting for.
    reason: str
    #: The operation (or component) on the other side of the wait.
    blocker: str


@dataclass(frozen=True)
class BottleneckReport:
    """The critical chain from a source operation to the makespan."""

    makespan: Seconds
    final_operation: str
    chain: tuple[BottleneckLink, ...]

    def summary(self) -> str:
        lines = [
            f"makespan {self.makespan:g}s set by {self.final_operation}",
        ]
        for link in self.chain:
            lines.append(
                f"  {link.op_id} starts at {link.start:g}s — {link.reason} "
                f"({link.blocker})"
            )
        return "\n".join(lines)


def _classify(schedule: Schedule, op_id: str) -> BottleneckLink:
    """Find what pinned *op_id*'s start time."""
    record = schedule.operation(op_id)
    start = record.start
    assay = schedule.assay
    t_c = schedule.transport_time

    # Incoming fluid arrivals.
    for movement in schedule.movements:
        if movement.consumer != op_id:
            continue
        if approx_eq(movement.consume, start):
            if movement.in_place:
                if approx_eq(schedule.operation(movement.producer).end, start):
                    return BottleneckLink(
                        op_id, start, "waits for its in-place parent",
                        movement.producer,
                    )
            elif movement.cache_time > 0 and approx_eq(movement.arrive + movement.cache_time, start):
                # Cached arrival: the *start* was limited by something
                # else (cache absorbs slack) unless cache is zero.
                pass
            elif approx_eq(movement.arrive, start):
                return BottleneckLink(
                    op_id, start,
                    f"waits for the {t_c:g}s transport of its input",
                    movement.producer,
                )

    # Component predecessor (busy or washing).
    predecessors = [
        r for r in schedule.operations_on(record.component_id)
        if r.end <= start + 1e-9 and r.op_id != op_id
    ]
    if predecessors:
        previous = max(predecessors, key=lambda r: r.end)
        if approx_eq(previous.end, start):
            return BottleneckLink(
                op_id, start, "waits for its component to finish",
                previous.op_id,
            )
        if previous.end < start:
            return BottleneckLink(
                op_id, start,
                "waits for the component's wash/eviction after",
                previous.op_id,
            )

    parents = assay.parents(op_id)
    if parents:
        last_parent = max(parents, key=lambda p: schedule.operation(p).end)
        return BottleneckLink(
            op_id, start, "waits for its last parent", last_parent
        )
    return BottleneckLink(op_id, start, "starts at time zero", "-")


def analyse_bottleneck(schedule: Schedule) -> BottleneckReport:
    """Trace the chain of waits ending at the makespan-defining op."""
    if not schedule.operations:
        return BottleneckReport(makespan=0.0, final_operation="-", chain=())
    final = max(
        schedule.operations.values(), key=lambda r: (r.end, r.op_id)
    )
    chain: list[BottleneckLink] = []
    seen: set[str] = set()
    current = final.op_id
    while current not in seen:
        seen.add(current)
        link = _classify(schedule, current)
        chain.append(link)
        if link.blocker in schedule.operations:
            current = link.blocker
        else:
            break
    chain.reverse()
    return BottleneckReport(
        makespan=schedule.makespan,
        final_operation=final.op_id,
        chain=tuple(chain),
    )

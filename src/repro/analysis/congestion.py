"""Routing congestion analysis.

Summarises how hard each channel cell works: number of tasks crossing
it, total occupied seconds, and the residues it carried.  The hottest
cells explain channel-length and wash behaviour, and the report feeds
the heat-map SVG in :mod:`repro.viz.svg`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.place.grid import Cell
from repro.route.router import RoutingResult
from repro.units import Seconds

__all__ = ["CellCongestion", "CongestionReport", "analyse_congestion"]


@dataclass(frozen=True)
class CellCongestion:
    """Usage summary of one channel cell."""

    cell: Cell
    task_count: int
    occupied_seconds: Seconds
    distinct_fluids: int


@dataclass(frozen=True)
class CongestionReport:
    """Per-cell congestion of a routed layout, hottest first."""

    cells: tuple[CellCongestion, ...]

    @property
    def peak_task_count(self) -> int:
        return self.cells[0].task_count if self.cells else 0

    @property
    def total_occupied_seconds(self) -> Seconds:
        return sum(c.occupied_seconds for c in self.cells)

    @property
    def sharing_factor(self) -> float:
        """Mean tasks per used cell — >1 means paths share channels."""
        if not self.cells:
            return 0.0
        return sum(c.task_count for c in self.cells) / len(self.cells)

    def hottest(self, count: int = 5) -> tuple[CellCongestion, ...]:
        return self.cells[:count]

    def utilisation_of(self, cell: Cell) -> CellCongestion | None:
        for entry in self.cells:
            if entry.cell == cell:
                return entry
        return None


def analyse_congestion(routing: RoutingResult) -> CongestionReport:
    """Build the congestion report of a routed layout."""
    assert routing.grid is not None
    entries = []
    for cell, usages in routing.grid.usage_history().items():
        entries.append(
            CellCongestion(
                cell=cell,
                task_count=len(usages),
                occupied_seconds=sum(u.slot.duration for u in usages),
                distinct_fluids=len({u.fluid.name for u in usages}),
            )
        )
    entries.sort(key=lambda e: (-e.task_count, -e.occupied_seconds, e.cell))
    return CongestionReport(cells=tuple(entries))

"""Distributed-storage demand analysis.

DCSA has no dedicated storage unit, but the channels' caching duty is a
real resource: at any instant some number of fluid plugs sit parked in
the network.  :func:`storage_demand` computes that occupancy profile
from a schedule's movements — the peak tells a designer how much
channel capacity the assay actually needs, and comparing algorithms
shows how much caching pressure each policy creates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schedule.schedule import Schedule
from repro.units import Seconds

__all__ = ["StorageDemand", "storage_demand"]


@dataclass(frozen=True)
class StorageDemand:
    """Occupancy profile of distributed channel storage."""

    #: Step function as (time, cached plug count after this instant).
    profile: tuple[tuple[Seconds, int], ...]
    peak: int
    peak_time: Seconds
    #: Integral of the profile — equals the Fig. 8 total cache time.
    total_plug_seconds: Seconds

    def occupancy_at(self, time: Seconds) -> int:
        """Number of cached plugs at *time* (right-continuous)."""
        current = 0
        for instant, level in self.profile:
            if instant > time:
                break
            current = level
        return current


def storage_demand(schedule: Schedule) -> StorageDemand:
    """Compute the channel-storage occupancy profile of *schedule*.

    A movement contributes to storage occupancy during its cache
    interval ``[arrive, consume)``.  Movements without caching (direct
    transports, in-place consumptions) contribute nothing.
    """
    events: list[tuple[Seconds, int]] = []
    total = 0.0
    for movement in schedule.movements:
        if movement.cache_time <= 0:
            continue
        events.append((movement.arrive, +1))
        events.append((movement.consume, -1))
        total += movement.cache_time
    if not events:
        return StorageDemand(
            profile=((0.0, 0),), peak=0, peak_time=0.0, total_plug_seconds=0.0
        )
    events.sort()
    profile: list[tuple[Seconds, int]] = []
    level = 0
    peak = 0
    peak_time = events[0][0]
    index = 0
    while index < len(events):
        time = events[index][0]
        while index < len(events) and events[index][0] == time:
            level += events[index][1]
            index += 1
        profile.append((time, level))
        if level > peak:
            peak = level
            peak_time = time
    return StorageDemand(
        profile=tuple(profile),
        peak=peak,
        peak_time=peak_time,
        total_plug_seconds=total,
    )

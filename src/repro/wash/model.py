"""Wash-time estimation for components and flow channels (Section II-B).

The paper adopts the finding of Hu et al. [9] that, of the four factors
affecting wash time (channel length, channel width, buffer pressure,
contaminant diffusion coefficient), the diffusion coefficient dominates
and the others may be neglected.  :class:`WashModel` therefore maps a
fluid to a wash duration through the calibrated log-linear model of
:mod:`repro.assay.fluids`, while still exposing the three secondary
factors as explicit (default-neutral) multipliers so sensitivity studies
can re-enable them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.assay.fluids import Fluid, wash_time_from_diffusion
from repro.errors import ValidationError
from repro.units import Seconds

__all__ = ["WashModel", "DEFAULT_WASH_MODEL"]


@dataclass(frozen=True)
class WashModel:
    """Configurable wash-time estimator.

    Parameters
    ----------
    length_factor, width_factor, pressure_factor:
        Multipliers for the secondary effects the paper neglects.  All
        default to 1.0 (neutral), reproducing the paper's assumption; an
        ablation can set them away from 1 to measure how robust the flow
        is to the simplification.
    respect_overrides:
        When ``True`` (default) a fluid's explicit ``wash_time_override``
        wins over the diffusion model, matching how benchmark tables such
        as Fig. 2(b) specify wash times directly.
    """

    length_factor: float = 1.0
    width_factor: float = 1.0
    pressure_factor: float = 1.0
    respect_overrides: bool = True

    def __post_init__(self) -> None:
        for name in ("length_factor", "width_factor", "pressure_factor"):
            if getattr(self, name) <= 0:
                raise ValidationError(f"{name} must be positive")

    def wash_time(self, fluid: Fluid) -> Seconds:
        """Wash duration (s) to remove *fluid*'s residue."""
        if self.respect_overrides and fluid.wash_time_override is not None:
            base = fluid.wash_time_override
        else:
            base = wash_time_from_diffusion(fluid.diffusion_coefficient)
        return base * self.length_factor * self.width_factor * self.pressure_factor


#: The paper's model: diffusion coefficient only.
DEFAULT_WASH_MODEL = WashModel()

"""Channel wash planning from a routed layout.

The Fig. 9 metric sums the wash obligations accumulated on flow
channels; this module turns those obligations into an explicit *wash
plan*: one wash event per (path, residue) that must be flushed, with
its earliest feasible start time and duration, plus the optimisation
the conflict-aware router enables — **merged washes**: consecutive uses
of a cell by the *same* fluid need a single wash after the last use.

The plan's total duration equals
:func:`repro.core.metrics.channel_wash_time` by construction, which the
test-suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.instrument import Instrumentation
from repro.place.grid import Cell
from repro.route.router import RoutingResult
from repro.units import Seconds

__all__ = ["WashEvent", "WashPlan", "plan_channel_washes"]


@dataclass(frozen=True)
class WashEvent:
    """One required flush of one cell's residue."""

    cell: Cell
    fluid_name: str
    #: Earliest time the wash may start (when the residue's occupation ends).
    earliest_start: Seconds
    duration: Seconds


@dataclass
class WashPlan:
    """All wash events of a routed layout."""

    events: list[WashEvent] = field(default_factory=list)

    @property
    def total_duration(self) -> Seconds:
        """Σ durations — the Fig. 9 'total wash time of flow channels'."""
        return sum(event.duration for event in self.events)

    @property
    def event_count(self) -> int:
        return len(self.events)

    def events_for(self, cell: Cell) -> list[WashEvent]:
        return [event for event in self.events if event.cell == cell]


def plan_channel_washes(
    routing: RoutingResult,
    instrumentation: Instrumentation | None = None,
) -> WashPlan:
    """Derive the explicit wash plan of a routed layout.

    Per cell, usage events are replayed in slot order: a wash of the
    previous residue is scheduled whenever a *different* fluid reuses
    the cell (it must complete before the new fluid arrives, but its
    earliest start is when the previous occupation ends), and one final
    cleanup wash flushes the last residue of every used cell.
    """
    assert routing.grid is not None
    events: list[WashEvent] = []
    for cell, usages in sorted(routing.grid.usage_history().items()):
        ordered = sorted(usages, key=lambda u: (u.slot.start, u.task_id))
        for earlier, later in zip(ordered, ordered[1:]):
            if earlier.fluid.name != later.fluid.name:
                events.append(
                    WashEvent(
                        cell=cell,
                        fluid_name=earlier.fluid.name,
                        earliest_start=earlier.slot.end,
                        duration=earlier.fluid.wash_time,
                    )
                )
        last = ordered[-1]
        events.append(
            WashEvent(
                cell=cell,
                fluid_name=last.fluid.name,
                earliest_start=last.slot.end,
                duration=last.fluid.wash_time,
            )
        )
    events.sort(key=lambda e: (e.earliest_start, e.cell.x, e.cell.y))
    plan = WashPlan(events=events)
    if instrumentation is not None:
        instrumentation.count("wash.planned_events", plan.event_count)
        instrumentation.gauge("wash.plan_duration", plan.total_duration)
    return plan

"""Wash-flow access planning.

Washing a dirty channel cell means pushing buffer from a wash inlet,
through the cell, out to a waste outlet (Hu et al. [9], the paper's
wash-time reference).  The scheduler/ router account for the wash
*durations*; this module plans the wash *flows* on the finished layout:

* wash inlet and waste outlet sit on the chip boundary (configurable
  corners by default);
* for every wash event of the plan, a buffer path inlet → dirty cell →
  outlet is computed over free cells (component blocks remain
  obstacles; other channel cells may be traversed — buffer is clean);
* the report lists unreachable cells (none, for layouts produced by our
  placers — asserted in tests) and the extra channel length the wash
  network needs beyond the transport network.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.place.grid import Cell
from repro.route.router import RoutingResult
from repro.units import Millimetres

__all__ = ["WashAccessReport", "plan_wash_access"]


@dataclass(frozen=True)
class WashAccess:
    """Buffer path serving one dirty cell."""

    cell: Cell
    path: tuple[Cell, ...]  # inlet ... cell ... outlet

    @property
    def length_cells(self) -> int:
        return len(self.path)


@dataclass
class WashAccessReport:
    """Wash-flow coverage of a routed layout."""

    inlet: Cell
    outlet: Cell
    accesses: list[WashAccess] = field(default_factory=list)
    unreachable: list[Cell] = field(default_factory=list)

    @property
    def full_coverage(self) -> bool:
        """Whether every dirty cell can be flushed."""
        return not self.unreachable

    def extra_network_cells(self, routing: RoutingResult) -> int:
        """Cells the wash network uses beyond the transport network."""
        used = routing.grid.used_cells() if routing.grid else set()
        wash_cells = {
            cell for access in self.accesses for cell in access.path
        }
        return len(wash_cells - used)

    def extra_network_mm(self, routing: RoutingResult) -> Millimetres:
        assert routing.grid is not None
        return routing.grid.grid.length_mm(self.extra_network_cells(routing))


def _bfs_tree(
    start: Cell, passable, grid
) -> dict[Cell, Cell | None]:
    """Parent map of a BFS from *start* over passable on-grid cells."""
    parents: dict[Cell, Cell | None] = {start: None}
    queue = deque([start])
    while queue:
        cell = queue.popleft()
        for neighbour in cell.neighbours():
            if neighbour in parents:
                continue
            if not grid.contains(neighbour) or not passable(neighbour):
                continue
            parents[neighbour] = cell
            queue.append(neighbour)
    return parents


def _walk(parents: dict[Cell, Cell | None], cell: Cell) -> list[Cell]:
    path = [cell]
    while parents[path[-1]] is not None:
        path.append(parents[path[-1]])  # type: ignore[arg-type]
    path.reverse()
    return path


def plan_wash_access(
    routing: RoutingResult,
    inlet: Cell | None = None,
    outlet: Cell | None = None,
) -> WashAccessReport:
    """Plan buffer flows flushing every dirty (used) channel cell.

    *inlet* defaults to the top-left free boundary cell and *outlet* to
    the bottom-right one.  Raises :class:`ValueError` when no free
    boundary cell exists (a fully walled chip cannot be washed at all).
    """
    assert routing.grid is not None
    grid = routing.grid.grid
    obstacles = routing.placement.occupied_cells()

    def passable(cell: Cell) -> bool:
        return cell not in obstacles

    boundary = [
        cell
        for cell in grid.cells()
        if (
            cell.x in (0, grid.width - 1) or cell.y in (0, grid.height - 1)
        )
        and passable(cell)
    ]
    if not boundary:
        raise ValueError("no free boundary cell: the chip cannot be washed")
    if inlet is None:
        inlet = boundary[0]
    if outlet is None:
        outlet = boundary[-1]

    from_inlet = _bfs_tree(inlet, passable, grid)
    from_outlet = _bfs_tree(outlet, passable, grid)

    report = WashAccessReport(inlet=inlet, outlet=outlet)
    for cell in sorted(routing.grid.used_cells()):
        if cell not in from_inlet or cell not in from_outlet:
            report.unreachable.append(cell)
            continue
        inbound = _walk(from_inlet, cell)
        outbound = _walk(from_outlet, cell)
        outbound.reverse()  # cell ... outlet
        path = tuple(inbound + outbound[1:])
        report.accesses.append(WashAccess(cell=cell, path=path))
    return report

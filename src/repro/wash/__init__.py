"""Wash-time modelling and channel wash planning (Section II-B)."""

from repro.wash.model import DEFAULT_WASH_MODEL, WashModel
from repro.wash.optimizer import WashEvent, WashPlan, plan_channel_washes
from repro.wash.routing import WashAccessReport, plan_wash_access

__all__ = [
    "DEFAULT_WASH_MODEL",
    "WashAccessReport",
    "WashEvent",
    "WashModel",
    "WashPlan",
    "plan_channel_washes",
    "plan_wash_access",
]

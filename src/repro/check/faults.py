"""Deterministic fault injection against valid synthesis results.

The checker in :mod:`repro.check` is only trustworthy if every rule in
its catalogue demonstrably *fires* on a broken solution and stays silent
otherwise.  This module perturbs a valid
:class:`~repro.core.solution.SynthesisResult` in targeted ways — shift a
departure, overlap two blocks, reroute through an occupied cell, corrupt
a reported metric, drop a wash gap — and :func:`inject` returns a
corrupted copy on which exactly the requested rule fires.

Each rule has a *candidate generator* yielding deterministic corruption
attempts (one seeded defect per candidate).  ``inject`` audits each
candidate with :func:`~repro.check.check_result` and returns the first
whose fired rule set is exactly ``{rule_id}``; candidates whose defect
happens to cascade into a second rule on this particular solution are
discarded, and if no surgical candidate exists a
:class:`FaultInjectionError` is raised — which fails the fault-matrix
test, so checker *sensitivity* is never silently lost.

Corruptions are applied to deep copies.  Frozen models are bypassed
deliberately (``object.__setattr__``, constructing
:class:`~repro.route.paths.RoutedPath` without its connectivity
validation, rebuilding time-slot sets around their overlap guard):
faults must be able to represent exactly the illegal states the
constructors refuse, otherwise the checker could never be exercised on
them.  After corrupting schedule or routing artefacts the reported
metrics are *re-derived the way the pipeline derives them* ("laundered"),
so the metrics checker — which recomputes from the same artefacts —
stays silent and the seeded rule alone identifies the defect.

Input-rule faults (``INP-*``) corrupt the *problem* rather than a
solution: :data:`INPUT_FAULT_BUILDERS` builds small assay/allocation
pairs violating one input rule each, audited via
:func:`~repro.assay.validation.validate_assay`.
"""

from __future__ import annotations

import copy
from dataclasses import replace
from typing import Callable, Iterator

from repro.assay.graph import Operation, OperationType, SequencingGraph
from repro.check import check_result
from repro.check.report import Severity
from repro.components.allocation import Allocation
from repro.core.metrics import compute_metrics
from repro.core.solution import SynthesisResult
from repro.errors import ReproError
from repro.place.grid import Cell, ChipGrid
from repro.place.placement import PlacedComponent
from repro.route.grid_graph import CellUsage, RoutingGrid
from repro.route.paths import RoutedPath
from repro.route.timeslots import TimeSlot, TimeSlotSet
from repro.schedule.schedule import Schedule, ScheduledOperation

__all__ = [
    "FaultInjectionError",
    "inject",
    "fired_error_rules",
    "solution_fault_rules",
    "input_fault_rules",
    "build_input_fault",
    "INPUT_FAULT_BUILDERS",
]

#: Margin used when a corruption must clear the checker's epsilon.
_MARGIN = 1e-3


class FaultInjectionError(ReproError):
    """No candidate corruption made exactly the requested rule fire."""


# ----------------------------------------------------------------------
# Low-level corruption helpers
# ----------------------------------------------------------------------
def _set(obj, **fields) -> None:
    """Overwrite fields of a frozen instance in place."""
    for key, value in fields.items():
        object.__setattr__(obj, key, value)


def _fresh(result: SynthesisResult) -> SynthesisResult:
    return copy.deepcopy(result)


def _launder(result: SynthesisResult) -> SynthesisResult:
    """Re-derive the reported metrics from the (corrupted) artefacts.

    Mirrors what the pipeline would report for these artefacts, so the
    metrics checker's recomputation agrees and only the seeded rule
    fires.  When the corruption breaks metric derivation itself the old
    report is kept — the rule owning the corruption fires either way.
    """
    try:
        metrics = compute_metrics(
            result.schedule, result.routing, cpu_time=result.metrics.cpu_time
        )
    except Exception:
        return result
    _set(result, metrics=metrics)
    return result


def _raw_path(
    task, cells, slot: TimeSlot, postponement: float
) -> RoutedPath:
    """A RoutedPath that skips the constructor's connectivity checks."""
    path = object.__new__(RoutedPath)
    object.__setattr__(path, "task", task)
    object.__setattr__(path, "cells", tuple(cells))
    object.__setattr__(path, "slot", slot)
    object.__setattr__(path, "postponement", postponement)
    return path


def _set_cell_slots(
    grid: RoutingGrid, cell: Cell, slots: list[TimeSlot]
) -> None:
    """Install a slot list verbatim, bypassing the overlap guard."""
    if not slots:
        grid._slots.pop(cell, None)
        return
    ordered = sorted(slots, key=lambda slot: (slot.start, slot.end))
    slot_set = TimeSlotSet()
    slot_set._starts = [slot.start for slot in ordered]
    slot_set._slots = list(ordered)
    grid._slots[cell] = slot_set


def _scrub_cell(grid: RoutingGrid, cell: Cell, task_id: str) -> None:
    """Remove one task's occupation bookkeeping from one cell."""
    events = grid._usage.get(cell, [])
    kept = [event for event in events if event.task_id != task_id]
    removed = [event for event in events if event.task_id == task_id]
    if kept:
        grid._usage[cell] = kept
    else:
        grid._usage.pop(cell, None)
    slot_set = grid._slots.get(cell)
    if slot_set is not None:
        slots = list(slot_set._slots)
        for event in removed:
            if event.slot in slots:
                slots.remove(event.slot)
        _set_cell_slots(grid, cell, slots)


def _add_usage(grid: RoutingGrid, cell: Cell, event: CellUsage) -> None:
    grid._usage.setdefault(cell, []).append(event)
    existing = grid._slots.get(cell)
    slots = list(existing._slots) if existing is not None else []
    _set_cell_slots(grid, cell, slots + [event.slot])


def _records_by_component(schedule: Schedule) -> dict[str, list]:
    grouped: dict[str, list] = {}
    for record in schedule.operations.values():
        grouped.setdefault(record.component_id, []).append(record)
    for records in grouped.values():
        records.sort(key=lambda rec: (rec.start, rec.op_id))
    return grouped


def _path_cells(result: SynthesisResult) -> set[Cell]:
    return {cell for path in result.routing.paths for cell in path.cells}


def _rebind(schedule: Schedule, op_id: str, cid: str) -> None:
    """Rebind one operation and keep its movements' endpoints matching."""
    record = schedule.operations[op_id]
    schedule.operations[op_id] = ScheduledOperation(
        op_id=op_id, component_id=cid, start=record.start, end=record.end
    )
    for index, movement in enumerate(schedule.movements):
        fields = {}
        if movement.producer == op_id:
            fields["src_component"] = cid
        if movement.consumer == op_id:
            fields["dst_component"] = cid
        if fields:
            schedule.movements[index] = replace(movement, **fields)


def _has_in_place_movement(schedule: Schedule, op_id: str) -> bool:
    return any(
        m.in_place and (m.producer == op_id or m.consumer == op_id)
        for m in schedule.movements
    )


# ----------------------------------------------------------------------
# Candidate-generator registry
# ----------------------------------------------------------------------
Generator = Callable[[SynthesisResult], Iterator[SynthesisResult]]
_SOLUTION_FAULTS: dict[str, Generator] = {}


def _solution_fault(rule_id: str):
    def register(fn: Generator) -> Generator:
        _SOLUTION_FAULTS[rule_id] = fn
        return fn

    return register


def solution_fault_rules() -> list[str]:
    """Rule ids with a registered solution-corruption generator."""
    return sorted(_SOLUTION_FAULTS)


def fired_error_rules(report) -> set[str]:
    """Error-severity rule ids that fired in *report* (warnings — e.g.
    ``INP-DURATION`` — do not disturb surgical-fault verification)."""
    return {
        v.rule_id for v in report.violations if v.severity is Severity.ERROR
    }


def inject(result: SynthesisResult, rule_id: str) -> SynthesisResult:
    """A corrupted deep copy of *result* on which exactly *rule_id* fires.

    Raises :class:`FaultInjectionError` when the rule has no generator or
    no candidate corruption is surgical on this particular solution.
    """
    generator = _SOLUTION_FAULTS.get(rule_id)
    if generator is None:
        raise FaultInjectionError(
            f"no fault generator registered for rule {rule_id!r}"
        )
    tried = 0
    seen: set[str] = set()
    for candidate in generator(result):
        tried += 1
        fired = fired_error_rules(check_result(candidate))
        if fired == {rule_id}:
            return candidate
        seen.update(fired)
    raise FaultInjectionError(
        f"no surgical corruption for {rule_id!r} on this solution "
        f"({tried} candidates tried, rules seen: {sorted(seen)})"
    )


# ----------------------------------------------------------------------
# Schedule faults
# ----------------------------------------------------------------------
@_solution_fault("SCH-COVERAGE")
def _drop_operation(result: SynthesisResult) -> Iterator[SynthesisResult]:
    for op_id in sorted(result.schedule.operations):
        candidate = _fresh(result)
        del candidate.schedule.operations[op_id]
        yield _launder(candidate)


@_solution_fault("SCH-BINDING")
def _bind_wrong_type(result: SynthesisResult) -> Iterator[SynthesisResult]:
    types = dict(result.problem.allocation.iter_components())
    schedule = result.schedule
    for op_id in sorted(schedule.operations):
        if _has_in_place_movement(schedule, op_id):
            continue
        record = schedule.operations[op_id]
        op_type = types.get(record.component_id)
        for cid in sorted(types):
            if types[cid] is op_type:
                continue
            candidate = _fresh(result)
            _rebind(candidate.schedule, op_id, cid)
            yield _launder(candidate)


@_solution_fault("SCH-DURATION")
def _stretch_final_operation(
    result: SynthesisResult,
) -> Iterator[SynthesisResult]:
    schedule = result.schedule
    grouped = _records_by_component(schedule)
    for op_id in sorted(schedule.operations):
        record = schedule.operations[op_id]
        if schedule.assay.children(op_id):
            continue  # a stretched producer would also fire SCH-PRECEDENCE
        if grouped[record.component_id][-1] is not record:
            continue  # stretching a non-final record would hit exclusivity
        candidate = _fresh(result)
        candidate.schedule.operations[op_id] = ScheduledOperation(
            op_id=op_id,
            component_id=record.component_id,
            start=record.start,
            end=record.end + 7.5,
        )
        yield _launder(candidate)


@_solution_fault("SCH-PRECEDENCE")
def _depart_before_producer(
    result: SynthesisResult,
) -> Iterator[SynthesisResult]:
    schedule = result.schedule
    for index, movement in enumerate(schedule.movements):
        if movement.in_place:
            continue
        producer = schedule.operations.get(movement.producer)
        if producer is None:
            continue
        new_depart = producer.end - 0.6
        shift = movement.depart - new_depart
        if shift <= _MARGIN:
            continue
        candidate = _fresh(result)
        target = candidate.schedule.movements[index]
        candidate.schedule.movements[index] = replace(
            target, depart=new_depart, arrive=target.arrive - shift
        )
        yield _launder(candidate)


@_solution_fault("SCH-EXCLUSIVITY")
def _double_book_component(
    result: SynthesisResult,
) -> Iterator[SynthesisResult]:
    types = dict(result.problem.allocation.iter_components())
    schedule = result.schedule
    for op_id in sorted(schedule.operations):
        if _has_in_place_movement(schedule, op_id):
            continue
        record = schedule.operations[op_id]
        op_type = types.get(record.component_id)
        for cid in sorted(types):
            if cid == record.component_id or types[cid] is not op_type:
                continue
            overlapping = any(
                other.component_id == cid
                and other.start < record.end - _MARGIN
                and record.start < other.end - _MARGIN
                for other in schedule.operations.values()
            )
            if not overlapping:
                continue
            candidate = _fresh(result)
            _rebind(candidate.schedule, op_id, cid)
            yield _launder(candidate)


@_solution_fault("SCH-MOVEMENT")
def _wrong_source_component(
    result: SynthesisResult,
) -> Iterator[SynthesisResult]:
    schedule = result.schedule
    cids = sorted(
        cid for cid, _ in result.problem.allocation.iter_components()
    )
    for index, movement in enumerate(schedule.movements):
        if movement.in_place:
            continue
        producer = schedule.operations.get(movement.producer)
        if producer is None:
            continue
        for cid in cids:
            if cid == producer.component_id:
                continue
            candidate = _fresh(result)
            target = candidate.schedule.movements[index]
            candidate.schedule.movements[index] = replace(
                target, src_component=cid
            )
            yield _launder(candidate)


@_solution_fault("SCH-STORAGE")
def _short_transport(result: SynthesisResult) -> Iterator[SynthesisResult]:
    schedule = result.schedule
    t_c = schedule.transport_time
    if t_c <= _MARGIN:
        return
    for index, movement in enumerate(schedule.movements):
        if movement.in_place:
            continue
        candidate = _fresh(result)
        target = candidate.schedule.movements[index]
        candidate.schedule.movements[index] = replace(
            target, arrive=target.depart + t_c / 2
        )
        yield _launder(candidate)


@_solution_fault("SCH-WASH")
def _late_departure_over_wash(
    result: SynthesisResult,
) -> Iterator[SynthesisResult]:
    schedule = result.schedule
    t_c = schedule.transport_time
    grouped = _records_by_component(schedule)
    for index, movement in enumerate(schedule.movements):
        if movement.in_place:
            continue
        producer = schedule.operations.get(movement.producer)
        if producer is None:
            continue
        wash = movement.fluid.wash_time
        if wash <= _MARGIN:
            continue
        records = grouped.get(producer.component_id, [])
        following = [
            rec
            for rec in records
            if (rec.start, rec.op_id) > (producer.start, producer.op_id)
        ]
        if not following:
            continue
        nxt = following[0]
        # Latest admissible departure: arrival must not pass consumption.
        new_depart = movement.consume - t_c
        if new_depart <= movement.depart + _MARGIN:
            continue  # cannot move later: the fluid was never cached
        if new_depart + wash <= nxt.start + _MARGIN:
            continue  # even the latest departure respects Eq. 2
        candidate = _fresh(result)
        target = candidate.schedule.movements[index]
        candidate.schedule.movements[index] = replace(
            target, depart=new_depart, arrive=new_depart + t_c
        )
        yield _launder(candidate)


# ----------------------------------------------------------------------
# Placement faults
# ----------------------------------------------------------------------
@_solution_fault("PLC-COVERAGE")
def _forget_block(result: SynthesisResult) -> Iterator[SynthesisResult]:
    for cid in result.placement.components():
        candidate = _fresh(result)
        del candidate.placement._blocks[cid]
        yield _launder(candidate)
    # Fallback: a ghost block on a clearance-respecting free cell.
    placement = result.placement
    grid = placement.grid
    blocked = placement.occupied_cells()
    paths = _path_cells(result)
    ghosts = 0
    for y in range(grid.height):
        for x in range(grid.width):
            cell = Cell(x, y)
            if cell in paths:
                continue
            near_block = any(
                Cell(x + dx, y + dy) in blocked
                for dx in (-1, 0, 1)
                for dy in (-1, 0, 1)
            )
            if near_block:
                continue
            candidate = _fresh(result)
            candidate.placement._blocks["Ghost1"] = PlacedComponent(
                "Ghost1", x, y, 1, 1
            )
            yield _launder(candidate)
            ghosts += 1
            if ghosts >= 5:
                return


@_solution_fault("PLC-FOOTPRINT")
def _resize_block(result: SynthesisResult) -> Iterator[SynthesisResult]:
    for cid in result.placement.components():
        block = result.placement.block(cid)
        variants = [
            (block.width + 1, block.height),
            (block.width, block.height + 1),
        ]
        if block.width > 1:
            variants.append((block.width - 1, block.height))
        if block.height > 1:
            variants.append((block.width, block.height - 1))
        for width, height in variants:
            candidate = _fresh(result)
            candidate.placement._blocks[cid] = PlacedComponent(
                cid, block.x, block.y, width, height
            )
            yield _launder(candidate)


@_solution_fault("PLC-BOUNDS")
def _leave_the_chip(result: SynthesisResult) -> Iterator[SynthesisResult]:
    placement = result.placement
    grid = placement.grid
    for cid in placement.components():
        block = placement.block(cid)
        shifts = []
        if block.x == 0:
            shifts.append((-1, 0))
        if block.y == 0:
            shifts.append((0, -1))
        if block.x + block.width == grid.width:
            shifts.append((1, 0))
        if block.y + block.height == grid.height:
            shifts.append((0, 1))
        for dx, dy in shifts:
            candidate = _fresh(result)
            candidate.placement._blocks[cid] = PlacedComponent(
                cid, block.x + dx, block.y + dy, block.width, block.height
            )
            yield _launder(candidate)
    # Fallback: shrink the problem's chip under the placement.
    candidate = _fresh(result)
    smaller = ChipGrid(
        width=max(1, grid.width - 1),
        height=max(1, grid.height - 1),
        pitch_mm=grid.pitch_mm,
    )
    _set(candidate.problem, grid=smaller)
    yield candidate


@_solution_fault("PLC-SPACING")
def _press_blocks_together(
    result: SynthesisResult,
) -> Iterator[SynthesisResult]:
    placement = result.placement
    grid = placement.grid
    blocks = placement.blocks()
    paths = _path_cells(result)
    for block in blocks:
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            moved = PlacedComponent(
                block.cid, block.x + dx, block.y + dy, block.width, block.height
            )
            if (
                moved.x < 0
                or moved.y < 0
                or moved.x + moved.width > grid.width
                or moved.y + moved.height > grid.height
            ):
                continue
            if not any(
                moved.overlaps(other, spacing=1)
                for other in blocks
                if other.cid != block.cid
            ):
                continue
            freshly_covered = set(moved.cells()) - set(block.cells())
            if freshly_covered & paths:
                continue  # would also fire RTE-OBSTACLE
            candidate = _fresh(result)
            candidate.placement._blocks[block.cid] = moved
            yield _launder(candidate)


# ----------------------------------------------------------------------
# Routing faults
# ----------------------------------------------------------------------
@_solution_fault("RTE-COVERAGE")
def _lose_a_path(result: SynthesisResult) -> Iterator[SynthesisResult]:
    for index in range(len(result.routing.paths)):
        candidate = _fresh(result)
        path = candidate.routing.paths.pop(index)
        grid = candidate.routing.grid
        if grid is not None:
            for cell in set(path.cells):
                _scrub_cell(grid, cell, path.task.task_id)
        yield _launder(candidate)


@_solution_fault("RTE-CONNECTIVITY")
def _tear_a_path(result: SynthesisResult) -> Iterator[SynthesisResult]:
    for index, path in enumerate(result.routing.paths):
        if len(path.cells) < 3:
            continue
        for middle in range(1, len(path.cells) - 1):
            candidate = _fresh(result)
            cpath = candidate.routing.paths[index]
            removed = cpath.cells[middle]
            cells = cpath.cells[:middle] + cpath.cells[middle + 1:]
            grid = candidate.routing.grid
            if grid is not None:
                _scrub_cell(grid, removed, cpath.task.task_id)
            candidate.routing.paths[index] = _raw_path(
                cpath.task, cells, cpath.slot, cpath.postponement
            )
            yield _launder(candidate)


@_solution_fault("RTE-OBSTACLE")
def _cut_through_a_block(
    result: SynthesisResult,
) -> Iterator[SynthesisResult]:
    occupied: set[Cell] = result.placement.occupied_cells()
    for index, path in enumerate(result.routing.paths):
        cells = path.cells
        for i in range(len(cells) - 2):
            a, b, c = cells[i], cells[i + 1], cells[i + 2]
            if a.x == c.x or a.y == c.y:
                continue  # straight segment: no alternative corner
            detour = Cell(a.x + c.x - b.x, a.y + c.y - b.y)
            if detour not in occupied or detour in cells:
                continue
            candidate = _fresh(result)
            cpath = candidate.routing.paths[index]
            grid = candidate.routing.grid
            if grid is None:
                continue
            events = [
                event
                for event in grid._usage.get(b, [])
                if event.task_id == cpath.task.task_id
            ]
            if not events:
                continue
            slot = events[0].slot
            _scrub_cell(grid, b, cpath.task.task_id)
            _add_usage(
                grid,
                detour,
                CellUsage(
                    task_id=cpath.task.task_id,
                    fluid=cpath.task.fluid,
                    slot=slot,
                ),
            )
            new_cells = cells[: i + 1] + (detour,) + cells[i + 2:]
            candidate.routing.paths[index] = _raw_path(
                cpath.task, new_cells, cpath.slot, cpath.postponement
            )
            yield _launder(candidate)


@_solution_fault("RTE-ENDPOINTS")
def _detach_endpoints(result: SynthesisResult) -> Iterator[SynthesisResult]:
    placement = result.placement
    occupied = placement.occupied_cells()
    for index, path in enumerate(result.routing.paths):
        task = path.task
        if task.src_component == task.dst_component:
            # Relocate the self-loop cache cell far from its component.
            try:
                home = set(placement.block(task.src_component).cells())
            except Exception:
                continue
            grid = result.routing.grid
            if grid is None or len(path.cells) != 1:
                continue
            relocations = 0
            for y in range(placement.grid.height):
                for x in range(placement.grid.width):
                    cell = Cell(x, y)
                    if cell in occupied or cell in grid._usage:
                        continue
                    distance = min(
                        abs(cell.x - h.x) + abs(cell.y - h.y) for h in home
                    )
                    if distance <= 2:
                        continue
                    candidate = _fresh(result)
                    cgrid = candidate.routing.grid
                    cpath = candidate.routing.paths[index]
                    old = cpath.cells[0]
                    events = [
                        event
                        for event in cgrid._usage.get(old, [])
                        if event.task_id == task.task_id
                    ]
                    if not events:
                        break
                    _scrub_cell(cgrid, old, task.task_id)
                    _add_usage(
                        cgrid,
                        cell,
                        CellUsage(
                            task_id=task.task_id,
                            fluid=task.fluid,
                            slot=events[0].slot,
                        ),
                    )
                    candidate.routing.paths[index] = _raw_path(
                        task, (cell,), cpath.slot, cpath.postponement
                    )
                    yield _launder(candidate)
                    relocations += 1
                    if relocations >= 3:
                        break
                if relocations >= 3:
                    break
        else:
            if len(path.cells) < 2:
                continue
            for chop_first in (True, False):
                candidate = _fresh(result)
                cpath = candidate.routing.paths[index]
                removed = cpath.cells[0] if chop_first else cpath.cells[-1]
                cells = cpath.cells[1:] if chop_first else cpath.cells[:-1]
                grid = candidate.routing.grid
                if grid is not None:
                    _scrub_cell(grid, removed, task.task_id)
                candidate.routing.paths[index] = _raw_path(
                    task, cells, cpath.slot, cpath.postponement
                )
                yield _launder(candidate)


@_solution_fault("RTE-CONFLICT")
def _overlap_occupations(
    result: SynthesisResult,
) -> Iterator[SynthesisResult]:
    grid = result.routing.grid
    if grid is None:
        return
    paths_by_task = {p.task.task_id: p for p in result.routing.paths}
    for cell in sorted(grid._usage):
        events = grid._usage[cell]
        if len(events) < 2:
            continue
        for i, anchor in enumerate(events):
            for j, victim in enumerate(events):
                if i == j:
                    continue
                path = paths_by_task.get(victim.task_id)
                if path is None:
                    continue
                window_start = path.task.depart + path.postponement
                window_end = path.task.consume + path.postponement
                lo = max(anchor.slot.start, window_start)
                hi = min(anchor.slot.end, window_end)
                if hi - lo <= 10 * _MARGIN:
                    continue  # no solid overlap fits the victim's window
                candidate = _fresh(result)
                cgrid = candidate.routing.grid
                cevents = cgrid._usage[cell]
                new_events = []
                replaced = False
                for event in cevents:
                    if (
                        not replaced
                        and event.task_id == victim.task_id
                        and event.slot == victim.slot
                    ):
                        new_events.append(
                            CellUsage(
                                task_id=event.task_id,
                                fluid=event.fluid,
                                slot=TimeSlot(lo, hi),
                            )
                        )
                        replaced = True
                    else:
                        new_events.append(event)
                cgrid._usage[cell] = new_events
                _set_cell_slots(
                    cgrid, cell, [event.slot for event in new_events]
                )
                yield _launder(candidate)


@_solution_fault("RTE-COMMIT")
def _forget_a_commit(result: SynthesisResult) -> Iterator[SynthesisResult]:
    grid = result.routing.grid
    if grid is None:
        return
    routed = {path.task.task_id for path in result.routing.paths}
    for cell in sorted(grid._usage):
        events = grid._usage[cell]
        if len(events) < 2:
            continue  # a sole event's removal would also change the
            # channel footprint and fire MET-LENGTH
        for victim in events:
            if victim.task_id not in routed:
                continue
            candidate = _fresh(result)
            cgrid = candidate.routing.grid
            cevents = cgrid._usage[cell]
            for position, event in enumerate(cevents):
                if (
                    event.task_id == victim.task_id
                    and event.slot == victim.slot
                ):
                    kept = cevents[:position] + cevents[position + 1:]
                    break
            else:
                continue
            cgrid._usage[cell] = kept
            _set_cell_slots(cgrid, cell, [event.slot for event in kept])
            yield _launder(candidate)


# ----------------------------------------------------------------------
# Metrics faults (the report lies about the artefacts)
# ----------------------------------------------------------------------
def _metric_fault(rule_id: str, mutations):
    @_solution_fault(rule_id)
    def corrupt(result: SynthesisResult) -> Iterator[SynthesisResult]:
        for mutate in mutations:
            candidate = _fresh(result)
            _set(candidate, metrics=mutate(candidate))
            yield candidate

    corrupt.__name__ = f"_corrupt_{rule_id.lower().replace('-', '_')}"
    return corrupt


_metric_fault(
    "MET-EXEC",
    [lambda r: replace(r.metrics, execution_time=r.metrics.execution_time + 11.0)],
)
_metric_fault(
    "MET-UTIL",
    [
        lambda r: replace(
            r.metrics,
            resource_utilisation=r.metrics.resource_utilisation + 0.07,
        )
    ],
)
_metric_fault(
    "MET-LENGTH",
    [
        lambda r: replace(
            r.metrics,
            total_channel_length_mm=r.metrics.total_channel_length_mm
            + r.placement.grid.pitch_mm,
        )
    ],
)
_metric_fault(
    "MET-CACHE",
    [lambda r: replace(r.metrics, total_cache_time=r.metrics.total_cache_time + 3.0)],
)
_metric_fault(
    "MET-WASH",
    [
        lambda r: replace(
            r.metrics,
            total_channel_wash_time=r.metrics.total_channel_wash_time + 5.0,
        ),
        lambda r: replace(
            r.metrics,
            total_component_wash_time=r.metrics.total_component_wash_time + 5.0,
        ),
    ],
)
_metric_fault(
    "MET-COUNT",
    [
        lambda r: replace(
            r.metrics, transport_count=r.metrics.transport_count + 1
        ),
        lambda r: replace(
            r.metrics, total_postponement=r.metrics.total_postponement + 1.5
        ),
    ],
)


# ----------------------------------------------------------------------
# Input faults (corrupted problems, audited via validate_assay)
# ----------------------------------------------------------------------
def _op(op_id: str, op_type: OperationType, duration: float = 2.0) -> Operation:
    return Operation(op_id=op_id, op_type=op_type, duration=duration)


def _capacity_fault() -> tuple[SequencingGraph, Allocation]:
    assay = SequencingGraph(
        "inp-capacity",
        [_op("m1", OperationType.MIX), _op("h1", OperationType.HEAT)],
        [("m1", "h1")],
    )
    return assay, Allocation(mixers=1)  # the heater is missing


def _fanin_fault() -> tuple[SequencingGraph, Allocation]:
    assay = SequencingGraph(
        "inp-fanin",
        [
            _op("m1", OperationType.MIX),
            _op("m2", OperationType.MIX),
            _op("m3", OperationType.MIX),
            _op("mx", OperationType.MIX),
        ],
        [("m1", "mx"), ("m2", "mx"), ("m3", "mx")],  # fan-in 3 > 2
    )
    return assay, Allocation(mixers=4)


def _duration_fault() -> tuple[SequencingGraph, Allocation]:
    assay = SequencingGraph(
        "inp-duration",
        [_op("m1", OperationType.MIX, duration=0.0), _op("m2", OperationType.MIX)],
        [("m1", "m2")],
    )
    return assay, Allocation(mixers=2)


class _SinklessView(SequencingGraph):
    """A graph variant whose sink query lies — the only way to exercise
    the INP-SINK guard, which is unreachable for honest DAGs."""

    def sinks(self) -> list[str]:
        return []


def _sink_fault() -> tuple[SequencingGraph, Allocation]:
    assay = _SinklessView(
        "inp-sink",
        [_op("m1", OperationType.MIX), _op("m2", OperationType.MIX)],
        [("m1", "m2")],
    )
    return assay, Allocation(mixers=2)


INPUT_FAULT_BUILDERS: dict[
    str, Callable[[], tuple[SequencingGraph, Allocation]]
] = {
    "INP-CAPACITY": _capacity_fault,
    "INP-FANIN": _fanin_fault,
    "INP-DURATION": _duration_fault,
    "INP-SINK": _sink_fault,
}


def input_fault_rules() -> list[str]:
    """Rule ids with a registered corrupted-problem builder."""
    return sorted(INPUT_FAULT_BUILDERS)


def build_input_fault(rule_id: str) -> tuple[SequencingGraph, Allocation]:
    """The corrupted assay/allocation pair violating exactly *rule_id*."""
    try:
        return INPUT_FAULT_BUILDERS[rule_id]()
    except KeyError:
        raise FaultInjectionError(
            f"no input fault registered for rule {rule_id!r}"
        ) from None
